//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), range and
//! [`any::<bool>()`] strategies, and the [`prop_assert!`] /
//! [`prop_assert_eq!`] assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a deterministic SplitMix64 stream seeded from the
//!   test function's name, so every run explores the same inputs — there is
//!   no persistence file and no flakiness;
//! * there is no shrinking: a failing case reports the generated inputs
//!   directly (the workspace's strategies are small scalars, so the raw
//!   values are already readable).

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by the `proptest_config` header.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case; produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// The deterministic generator driving each property case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of input values for a property.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Marker strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!("{} = {:?}, ", stringify!($arg), $arg));)+
                    s
                };
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} with inputs [{}]\n{}",
                        stringify!($name), case, config.cases, inputs, e.message,
                    );
                }
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*),
            )));
        }
    }};
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges produce in-bounds values.
        #[test]
        fn in_bounds(a in 3usize..9, b in 1u64..=4, f in 0.5f64..1.5, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
            let copied = flag;
            prop_assert_eq!(flag, copied);
        }
    }

    proptest! {
        /// The default config applies when no header is given.
        #[test]
        fn default_config_runs(x in 0u8..10) {
            prop_assert!(x < 10, "x = {}", x);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u8..2) {
                prop_assert_eq!(x, 99, "x can never be 99");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("p", 3);
        let mut b = TestRng::for_case("p", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("p", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
