//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements exactly the deterministic subset of the `rand 0.8` API that
//! the workspace uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! the [`Rng`] methods `gen_range` (half-open and inclusive integer ranges,
//! half-open `f64` ranges) and `gen_bool`.
//!
//! [`rngs::StdRng`] is a SplitMix64 generator: tiny, fast, passes the
//! statistical bar the workloads need (they only require well-spread,
//! reproducible streams, not cryptographic quality).  Streams are stable
//! across runs and platforms, which is what the seeded tests and benchmark
//! workloads rely on.

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing randomness methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`; panics on an empty range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps a `u64` to a `f64` uniform in `[0, 1)` (53 mantissa bits).
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: the stand-in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let ratio = hits as f64 / n as f64;
        assert!((0.25..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn works_through_mut_references_and_generics() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!(v < 100);
    }
}
