//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the benchmark-definition API the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`]) on top of a simple wall-clock sampling loop.
//!
//! Each benchmark warms up for (a quarter of) the configured warm-up time,
//! estimates the per-iteration cost, then takes `sample_size` samples whose
//! combined duration approximates `measurement_time`, and prints
//! `mean / min / max` per-iteration times.  No plots, no statistics beyond
//! that — but the relative numbers the workspace's benches exist to show
//! (exponential vs. polynomial scaling, cached vs. uncached evaluation)
//! survive intact.
//!
//! Passing `--test` on the command line (as in real criterion, e.g.
//! `cargo bench -- --test`) switches to smoke mode: every measured routine
//! runs exactly once, so CI can prove benches still compile *and run*
//! without paying for sampling.
//!
//! Passing `--json <path>` (the stand-in's analogue of criterion's
//! `--save-baseline`) — or setting `CRITERION_JSON=<path>`, which survives
//! `cargo bench --workspace` runs where extra CLI flags would also reach
//! libtest-harness targets — additionally appends one JSON line per
//! benchmark to `<path>`: `{"name":...,"median_ns":...,...}`.  A whole
//! workspace bench run thereby accumulates a machine-readable result set
//! that CI turns into `BENCH_results.json` and gates against a committed
//! baseline (see the `bench_gate` tool in `crates/bench`).

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id with only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement settings shared by a group.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Test mode (`--test` on the command line, as in real criterion): run
    /// every measured routine exactly once to prove it still works, without
    /// spending wall-clock on sampling.  This is what keeps benches from
    /// bit-rotting in CI.
    test_mode: bool,
    /// When set (`--json <path>`), every finished benchmark appends one
    /// JSON line with its timings to this file.
    json_path: Option<PathBuf>,
}

impl Criterion {
    /// Reads the supported command-line flags — `--test` enables test mode,
    /// `--json <path>` enables the JSON result emitter — plus the
    /// `CRITERION_JSON` environment variable, the flag's equivalent for
    /// `cargo bench --workspace` runs (where extra CLI flags would also
    /// reach libtest-harness bench targets that reject them).  Everything
    /// else is ignored.
    pub fn configure_from_args(mut self) -> Self {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                self.json_path = Some(PathBuf::from(path));
            }
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => self.test_mode = true,
                // `--json` whose value is absent or looks like another flag
                // (cargo appends a trailing `--bench` to every bench binary)
                // must not clobber a path configured through the
                // environment — and must never create a file named like a
                // flag.
                "--json" => match args.get(i + 1) {
                    Some(path) if !path.starts_with("--") => {
                        self.json_path = Some(PathBuf::from(path));
                        i += 1;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        self
    }

    /// Runs each benchmark body exactly once (smoke mode) instead of
    /// sampling it.
    pub fn with_test_mode(mut self, test_mode: bool) -> Self {
        self.test_mode = test_mode;
        self
    }

    /// Appends one JSON line per finished benchmark to `path`.
    pub fn with_json_output(mut self, path: impl Into<PathBuf>) -> Self {
        self.json_path = Some(path.into());
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        let json_path = self.json_path.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
            throughput: None,
            test_mode,
            json_path,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        let id = id.into();
        group.bench_function(id, |b| f(b));
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    test_mode: bool,
    json_path: Option<PathBuf>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            settings: self.settings,
            report: None,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        self.print(&id, bencher.report);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            settings: self.settings,
            report: None,
            test_mode: self.test_mode,
        };
        f(&mut bencher, input);
        self.print(&id, bencher.report);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn print(&self, id: &BenchmarkId, report: Option<Report>) {
        let label = if self.name.is_empty() {
            format!("{id}")
        } else {
            format!("{}/{id}", self.name)
        };
        match report {
            None => println!("{label:<60} (no measurement: Bencher::iter never called)"),
            Some(r) => {
                let mut line = format!(
                    "{label:<60} time: [{} {} {}]",
                    fmt_time(r.min),
                    fmt_time(r.median),
                    fmt_time(r.max),
                );
                if let Some(t) = self.throughput {
                    let per_sec = match t {
                        Throughput::Elements(n) => n as f64 / r.mean,
                        Throughput::Bytes(n) => n as f64 / r.mean,
                    };
                    line.push_str(&format!("  thrpt: {per_sec:.0}/s"));
                }
                println!("{line}");
                if let Some(path) = &self.json_path {
                    if let Err(e) = append_json_line(path, &label, &r, self.test_mode) {
                        eprintln!("criterion: cannot write {}: {e}", path.display());
                    }
                }
            }
        }
    }
}

/// Appends one benchmark result as a JSON line (all times in nanoseconds).
fn append_json_line(
    path: &std::path::Path,
    label: &str,
    r: &Report,
    test_mode: bool,
) -> std::io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    let mode = if test_mode { "test" } else { "sample" };
    writeln!(
        f,
        r#"{{"name":"{}","median_ns":{:.1},"mean_ns":{:.1},"min_ns":{:.1},"max_ns":{:.1},"samples":{},"mode":"{}"}}"#,
        label.replace('\\', "\\\\").replace('"', "\\\""),
        r.median * 1e9,
        r.mean * 1e9,
        r.min * 1e9,
        r.max * 1e9,
        r.samples,
        mode,
    )
}

/// min/median/mean/max per-iteration seconds over the samples taken.
#[derive(Clone, Copy, Debug)]
struct Report {
    min: f64,
    median: f64,
    mean: f64,
    max: f64,
    samples: usize,
}

/// Runs and times the measured routine.
pub struct Bencher {
    settings: Settings,
    report: Option<Report>,
    test_mode: bool,
}

impl Bencher {
    /// Measures `f`, called repeatedly; its return value is black-boxed so
    /// the computation is not optimized away.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            // Smoke mode: a single execution proves the routine runs.
            let start = Instant::now();
            black_box(f());
            let t = start.elapsed().as_secs_f64();
            self.report = Some(Report {
                min: t,
                median: t,
                mean: t,
                max: t,
                samples: 1,
            });
            return;
        }
        // Warm-up and per-iteration cost estimate.
        let warmup_budget = self.settings.warm_up_time.min(Duration::from_millis(500)) / 2;
        let warmup_start = Instant::now();
        let mut warmup_iters: u32 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget || warmup_iters >= 10_000 {
                break;
            }
        }
        let est_iter = (warmup_start.elapsed().as_secs_f64() / warmup_iters as f64).max(1e-9);

        // Choose iterations per sample so all samples fit the budget.
        let budget = self.settings.measurement_time.min(Duration::from_secs(3));
        let samples = self.settings.sample_size;
        let per_sample = budget.as_secs_f64() / samples as f64;
        let iters = ((per_sample / est_iter).round() as u64).clamp(1, 1_000_000);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        self.report = Some(Report {
            min,
            median: median(&mut times),
            mean,
            max,
            samples,
        });
    }
}

/// Median of the samples (sorts in place; the midpoint pair is averaged for
/// even counts).
fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    let n = times.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        times[n / 2]
    } else {
        (times[n / 2 - 1] + times[n / 2]) / 2.0
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &p| {
            b.iter(|| {
                calls += 1;
                p * 2
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn json_emitter_appends_one_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion-json-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion::default()
            .with_test_mode(true)
            .with_json_output(&path);
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("two", 7), |b| b.iter(|| 2 + 2));
        group.finish();
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"name":"g/one","median_ns":"#));
        assert!(lines[1].contains(r#""name":"g/two/7""#));
        assert!(lines[0].ends_with(r#""samples":1,"mode":"test"}"#));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn test_mode_runs_each_bench_exactly_once() {
        let mut c = Criterion::default().with_test_mode(true);
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
