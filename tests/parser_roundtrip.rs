//! Property tests for the syntax layer: printing and re-parsing is the
//! identity, classification respects the Figure 1 inclusions, and the
//! normalization passes preserve semantics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::engine::DpEvaluator;
use xpeval::prelude::*;
use xpeval::syntax::normalize::{expand_iterated_predicates, push_negation_inward};
use xpeval::syntax::{classify, Fragment};
use xpeval::workloads::{
    random_core_query, random_pf_query, random_pwf_query, random_tree_document,
};

/// A generator of random query ASTs via the workload generators (three
/// different families to cover PF, Core XPath and pWF shapes).
fn random_query(seed: u64, family: u8) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    match family % 3 {
        0 => random_pf_query(&mut rng, 5, &["a", "b", "c"]),
        1 => random_core_query(&mut rng, 3, &["a", "b", "c", "d"]),
        _ => random_pwf_query(&mut rng, &["a", "b"]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// to_string ∘ parse_query is the identity on generated queries.
    #[test]
    fn display_parse_roundtrip(seed in 0u64..50_000, family in 0u8..3) {
        let query = random_query(seed, family);
        let printed = query.to_string();
        let reparsed = parse_query(&printed).unwrap();
        prop_assert_eq!(query, reparsed, "printed: {}", printed);
    }

    /// The least fragment is indeed a member, and memberships are upward
    /// closed along the chain the classifier reports.
    #[test]
    fn classification_is_consistent(seed in 0u64..50_000, family in 0u8..3) {
        let query = random_query(seed, family);
        let report = classify(&query);
        prop_assert!(report.memberships.contains(&report.fragment));
        prop_assert!(report.memberships.contains(&Fragment::XPath));
        // The least fragment is the minimum of the membership list.
        prop_assert_eq!(report.fragment, *report.memberships.iter().min().unwrap());
        // PF queries are members of every fragment.
        if report.fragment == Fragment::PF {
            prop_assert_eq!(report.memberships.len(), Fragment::ALL.len());
        }
    }

    /// Merging iterated predicates (Remark 5.2) preserves evaluation results
    /// whenever position()/last() are absent — checked semantically.
    #[test]
    fn iterated_predicate_merge_preserves_semantics(seed in 0u64..20_000, nodes in 5usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c"]);
        let query = random_core_query(&mut rng, 2, &["a", "b", "c"]);
        let merged = expand_iterated_predicates(&query);
        let before = DpEvaluator::new(&doc, &query).evaluate().unwrap();
        let after = DpEvaluator::new(&doc, &merged).evaluate().unwrap();
        prop_assert_eq!(before, after);
    }

    /// Pushing negation inward (Theorem 5.9's normalization) preserves
    /// evaluation results.
    #[test]
    fn negation_pushing_preserves_semantics(seed in 0u64..20_000, nodes in 5usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c", "d"]);
        let query = random_core_query(&mut rng, 3, &["a", "b", "c", "d"]);
        let pushed = push_negation_inward(&query);
        let before = DpEvaluator::new(&doc, &query).evaluate().unwrap();
        let after = DpEvaluator::new(&doc, &pushed).evaluate().unwrap();
        prop_assert_eq!(before, after);
    }

    /// XML serialization round-trips through the parser.
    #[test]
    fn xml_roundtrip(seed in 0u64..50_000, nodes in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c", "longer-tag"]);
        let text = xpeval::dom::serialize(&doc);
        let reparsed = parse_xml(&text).unwrap();
        prop_assert_eq!(xpeval::dom::serialize(&reparsed), text);
        prop_assert_eq!(reparsed.element_count(), doc.element_count());
    }
}

#[test]
fn paper_queries_parse_and_classify_as_stated() {
    // The concrete queries the paper uses as running examples.
    let cases = [
        ("/descendant::a/child::b", Fragment::PF),
        (
            "/descendant::a/child::b[descendant::c and not(following-sibling::d)]",
            Fragment::CoreXPath,
        ),
        ("child::a[position() + 1 = last()]", Fragment::PWF),
        (
            "child::*[child::a and child::b and child::c]",
            Fragment::PositiveCoreXPath,
        ),
    ];
    for (src, expected) in cases {
        let q = parse_query(src).unwrap();
        assert_eq!(classify(&q).fragment, expected, "{src}");
        // And they survive a display/parse round trip.
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
    }
}
