//! Integration tests for the compile-once pipeline: every workload query is
//! compiled exactly once and driven through all five evaluation strategies
//! via `CompiledQuery::run`, and the engine's plan cache is observably hit
//! on repeated query strings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::prelude::*;
use xpeval::workloads::{
    auction_site_document, core_xpath_query_corpus, pwf_query_corpus, random_tree_document,
};

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// Runs one compiled query under every strategy and checks that every
/// strategy that accepts the query's fragment agrees with the DP reference.
fn assert_strategies_agree(doc: &Document, name: &str, compiled: &CompiledQuery) {
    let reference = compiled
        .clone()
        .with_strategy(EvalStrategy::ContextValueTable)
        .run(doc)
        .unwrap_or_else(|e| panic!("{name}: DP reference failed: {e}"))
        .value;
    let mut agreeing = 0;
    for strategy in ALL_STRATEGIES {
        match compiled.clone().with_strategy(strategy).run(doc) {
            Ok(out) => {
                assert_eq!(out.value, reference, "{name} under {strategy:?}");
                assert_eq!(out.fragment, compiled.fragment(), "{name} fragment");
                agreeing += 1;
            }
            Err(EvalError::UnsupportedFragment { .. }) => {
                // The linear and Singleton-Success evaluators legitimately
                // reject queries outside their fragment.
            }
            Err(e) => panic!("{name} under {strategy:?}: unexpected error {e}"),
        }
    }
    assert!(
        agreeing >= 3,
        "{name}: only {agreeing} strategies accepted the query"
    );
}

#[test]
fn all_five_strategies_agree_on_the_core_corpus() {
    let mut rng = StdRng::seed_from_u64(77);
    let doc = random_tree_document(&mut rng, 40, &["a", "b", "c", "d", "root"]);
    for (name, query) in core_xpath_query_corpus() {
        // Compile once, from the canonical printed form, document-unseen.
        let compiled =
            CompiledQuery::compile(&query.to_string()).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Core corpus queries must be accepted by the *linear* evaluator in
        // particular: the auto-selected plan already is CoreXPathLinear.
        assert_eq!(compiled.strategy(), EvalStrategy::CoreXPathLinear, "{name}");
        assert_strategies_agree(&doc, name, &compiled);
    }
}

#[test]
fn strategies_agree_on_the_pwf_corpus() {
    let mut rng = StdRng::seed_from_u64(78);
    let doc = auction_site_document(&mut rng, 12);
    for (name, query) in pwf_query_corpus() {
        let compiled =
            CompiledQuery::compile(&query.to_string()).unwrap_or_else(|e| panic!("{name}: {e}"));
        // pWF/pXPath queries get the parallel plan.
        assert!(
            matches!(compiled.strategy(), EvalStrategy::Parallel { .. }),
            "{name}: {:?}",
            compiled.strategy()
        );
        assert_strategies_agree(&doc, name, &compiled);
    }
}

#[test]
fn one_compilation_serves_many_documents() {
    let compiled = CompiledQuery::compile("//a[child::b]").unwrap();
    let mut rng = StdRng::seed_from_u64(79);
    for nodes in [5, 20, 80] {
        let doc = random_tree_document(&mut rng, nodes, &["a", "b"]);
        let out = compiled.run(&doc).unwrap();
        let reference = Engine::new(EvalStrategy::ContextValueTable)
            .evaluate_str(&doc, "//a[child::b]")
            .unwrap();
        assert_eq!(out.value, reference, "{nodes} nodes");
    }
}

#[test]
fn repeated_evaluate_str_is_a_cache_hit() {
    let mut rng = StdRng::seed_from_u64(80);
    let doc = random_tree_document(&mut rng, 30, &["a", "b"]);
    let engine = Engine::builder().plan_cache_capacity(8).build();

    let first = engine.evaluate_str(&doc, "count(//a)").unwrap();
    let after_first = engine.cache_stats();
    assert_eq!(after_first.misses, 1);
    assert_eq!(after_first.hits, 0);
    assert_eq!(after_first.len, 1);

    // Second evaluation of the same string: answered from the plan cache —
    // no re-parse, no re-classification.
    let second = engine.evaluate_str(&doc, "count(//a)").unwrap();
    let after_second = engine.cache_stats();
    assert_eq!(second, first);
    assert_eq!(after_second.misses, 1, "second call must not recompile");
    assert_eq!(after_second.hits, 1);

    // A different string is a fresh miss.
    engine.evaluate_str(&doc, "count(//b)").unwrap();
    let after_third = engine.cache_stats();
    assert_eq!(after_third.misses, 2);
    assert_eq!(after_third.len, 2);
}

#[test]
fn plan_cache_respects_its_capacity() {
    let mut rng = StdRng::seed_from_u64(81);
    let doc = random_tree_document(&mut rng, 10, &["a", "b", "c"]);
    let engine = Engine::builder().plan_cache_capacity(2).build();
    for q in ["//a", "//b", "//c"] {
        engine.evaluate_str(&doc, q).unwrap();
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.capacity, 2);
    assert_eq!(stats.len, 2);
    assert_eq!(stats.evictions, 1);
}

#[test]
fn evaluate_many_over_every_element_context() {
    let mut rng = StdRng::seed_from_u64(82);
    let doc = random_tree_document(&mut rng, 40, &["a", "b"]);
    let engine = Engine::builder().build();
    let compiled = engine.compile("count(child::*)").unwrap();
    let contexts: Vec<Context> = doc.all_elements().map(|n| Context::new(n, 1, 1)).collect();
    let outs = engine.evaluate_many(&doc, &compiled, &contexts).unwrap();
    assert_eq!(outs.len(), contexts.len());
    // Spot-check against per-context one-shot evaluation.
    for (ctx, out) in contexts.iter().zip(&outs) {
        let one = compiled.run_with_context(&doc, *ctx).unwrap();
        assert_eq!(one.value, out.value);
    }
}

#[test]
fn evaluate_batch_runs_heterogeneous_plans() {
    let mut rng = StdRng::seed_from_u64(83);
    let doc = auction_site_document(&mut rng, 10);
    let engine = Engine::builder().threads(2).build();
    let plans: Vec<_> = [
        "//item/name",
        "//item[position() = last()]",
        "count(//item)",
    ]
    .iter()
    .map(|q| engine.compile(q).unwrap())
    .collect();
    let refs: Vec<&CompiledQuery> = plans.iter().map(|p| p.as_ref()).collect();
    let results = engine.evaluate_batch(&doc, &refs);
    assert_eq!(results.len(), 3);
    for (plan, result) in plans.iter().zip(&results) {
        let out = result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", plan.source()));
        assert_eq!(out.fragment, plan.fragment());
    }
    assert_eq!(results[2].as_ref().unwrap().value, Value::Number(10.0));
}

#[test]
fn compile_errors_carry_parse_positions() {
    let err = CompiledQuery::compile("//item[").unwrap_err();
    let EvalError::Parse { message, .. } = &err else {
        panic!("expected EvalError::Parse, got {err:?}");
    };
    assert!(!message.is_empty());

    let engine = Engine::builder().build();
    let err = engine.compile("//item[@a = ]").unwrap_err();
    assert!(matches!(err, EvalError::Parse { .. }), "{err:?}");
    // Failed compilations are not cached.
    assert_eq!(engine.cache_stats().len, 0);
}
