//! Link check over the repository's markdown documentation.
//!
//! Every relative link in `README.md` and `docs/*.md` must resolve to a
//! file that exists in the repository — a renamed crate or a moved manual
//! breaks this test instead of rotting silently. External (`http*`,
//! `mailto:`) and in-page (`#anchor`) targets are out of scope: the
//! build is offline and anchors are renderer-specific.

use std::fs;
use std::path::{Path, PathBuf};

/// The documentation files under the link check. `docs/` is globbed so a
/// new manual is covered the day it lands.
fn documentation_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    if let Ok(entries) = fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files
}

/// Strips fenced code blocks: `[k]` indexing and `[dependencies]` table
/// headers inside ``` fences are code, not links.
fn without_code_fences(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Extracts link targets: inline `[text](target)` and reference
/// definitions `[label]: target`.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    // Inline links.
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    // Reference-style definitions at line start.
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(close) = rest.find("]:") {
                let target = rest[close + 2..].trim();
                if !target.is_empty() {
                    targets.push(target.split_whitespace().next().unwrap().to_string());
                }
            }
        }
    }
    targets
}

#[test]
fn relative_links_in_documentation_resolve() {
    let files = documentation_files();
    assert!(
        files.iter().any(|f| f.ends_with("docs/fragments.md")),
        "the fragment manual must be under the link check"
    );
    let mut broken = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file).unwrap();
        let dir = file.parent().unwrap();
        for target in link_targets(&without_code_fences(&text)) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            // Drop an in-page anchor suffix before resolving.
            let path_part = target.split('#').next().unwrap();
            if path_part.is_empty() {
                continue;
            }
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn readme_links_the_fragment_manual() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = fs::read_to_string(root.join("README.md")).unwrap();
    assert!(
        readme.contains("docs/fragments.md"),
        "README must link the fragment-complexity manual"
    );
}
