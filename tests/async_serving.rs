//! Integration tests for the async serving layer: bounded-queue
//! backpressure, blocking-submit wakeup, graceful shutdown, panic
//! isolation — and the headline property that async results are exactly
//! the synchronous `evaluate_batch` results, across all five strategies
//! and the workload corpora.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use xpeval::prelude::*;
use xpeval::workloads::{
    auction_site_document, core_xpath_query_corpus, pwf_query_corpus, random_tree_document,
};

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// A pool whose single worker is held at a gate, so queue contents are
/// fully deterministic: nothing drains until the gate opens.
fn gated_pool(queue_capacity: usize) -> (AsyncEngine, mpsc::Sender<()>, QueryFuture<()>) {
    let pool = AsyncEngine::builder()
        .workers(1)
        .queue_capacity(queue_capacity)
        .build();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let blocker = pool
        .submit_task(move |_| {
            gate_rx.recv().ok();
        })
        .expect("an empty pool accepts the blocker");
    // Let the worker actually pick the blocker up before the caller counts
    // queue slots.
    while pool.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    (pool, gate_tx, blocker)
}

#[test]
fn bounded_queue_rejects_when_full() {
    let (pool, gate, blocker) = gated_pool(2);

    // Fill the two queue slots behind the busy worker.
    let accepted: Vec<_> = (0..2)
        .map(|i| pool.try_submit_task(move |_| i).unwrap())
        .collect();
    // The third is backpressure, observably.
    assert_eq!(
        pool.try_submit_task(|_| 99usize).unwrap_err(),
        TrySubmitError::Full
    );
    let stats = pool.stats();
    assert_eq!(stats.queue_depth, 2);
    assert_eq!(stats.queue_high_watermark, 2);
    assert_eq!(stats.rejected_full, 1);

    gate.send(()).unwrap();
    for (i, fut) in accepted.into_iter().enumerate() {
        assert_eq!(fut.wait(), Ok(i));
    }
    assert_eq!(blocker.wait(), Ok(()));

    let stats = pool.shutdown();
    assert_eq!(stats.submitted, 3); // blocker + 2 accepted
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected_full, 1);
    assert_eq!(stats.panicked, 0);
}

#[test]
fn blocking_submit_wakes_when_the_queue_drains() {
    let (pool, gate, _blocker) = gated_pool(1);
    let _filler = pool.try_submit_task(|_| ()).unwrap();

    let submitted = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(pool);
    let handle = {
        let pool = Arc::clone(&pool);
        let submitted = Arc::clone(&submitted);
        std::thread::spawn(move || {
            let fut = pool.submit_task(|_| 42u64).unwrap();
            submitted.store(true, Ordering::SeqCst);
            fut.wait()
        })
    };

    // The submitter must be parked on the full queue, not failing.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !submitted.load(Ordering::SeqCst),
        "submit must block while the queue is full"
    );

    // Opening the gate drains the queue; the blocked submit completes.
    gate.send(()).unwrap();
    assert_eq!(handle.join().unwrap(), Ok(42));
    assert!(submitted.load(Ordering::SeqCst));
}

#[test]
fn shutdown_completes_accepted_work_and_rejects_late_submissions() {
    let mut rng = StdRng::seed_from_u64(7);
    let doc = Arc::new(auction_site_document(&mut rng, 30));
    let engine = Engine::builder().build();
    let prepared = engine.prepare_keyed(1, &doc);
    let pool = AsyncEngine::builder()
        .engine(engine)
        .workers(2)
        .queue_capacity(64)
        .build();

    let futures: Vec<_> = (0..24)
        .map(|_| pool.submit(&prepared, "count(//item)").unwrap())
        .collect();

    pool.begin_shutdown();
    assert!(pool.is_shutting_down());

    // Late submissions — blocking and non-blocking — are rejected.
    assert_eq!(
        pool.submit(&prepared, "count(//item)").unwrap_err(),
        TrySubmitError::ShutDown
    );
    assert_eq!(
        pool.try_submit(&prepared, "count(//item)").unwrap_err(),
        TrySubmitError::ShutDown
    );

    // Every accepted query still completes with a real result.
    for fut in futures {
        let output = fut.wait().expect("accepted work survives shutdown");
        assert_eq!(output.unwrap().value, Value::Number(30.0));
    }

    let stats = pool.shutdown();
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.rejected_shutdown, 2);
    assert_eq!(stats.queue_depth, 0, "shutdown drains the queue");
}

#[test]
fn a_panicking_job_is_contained_and_counted() {
    let pool = AsyncEngine::builder().workers(1).queue_capacity(8).build();
    let boom = pool
        .submit_task(|_| -> usize { panic!("job panic") })
        .unwrap();
    assert_eq!(boom.wait(), Err(JobLost));

    // The worker survived: the pool still serves.
    let after = pool.submit_task(|_| 5usize).unwrap();
    assert_eq!(after.wait(), Ok(5));

    let stats = pool.shutdown();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.per_worker[0].panicked, 1);
}

#[test]
fn queue_latency_counters_cover_every_dequeued_job() {
    let (pool, gate, _blocker) = gated_pool(8);
    let futures: Vec<_> = (0..5)
        .map(|i| pool.submit_task(move |_| i).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    gate.send(()).unwrap();
    for fut in futures {
        fut.wait().unwrap();
    }
    let stats = pool.shutdown();
    // blocker + 5 jobs were dequeued, each with a measured wait — and each
    // lifecycle histogram saw every one of them.
    assert_eq!(stats.queue_wait.count, 6);
    assert_eq!(stats.execution.count, 6);
    assert_eq!(stats.end_to_end.count, 6);
    assert!(stats.queue_wait.max >= 20_000_000, "{stats:?}");
    assert!(stats.mean_queue_wait() <= stats.max_queue_wait());
    // A job's end-to-end time includes its queue wait, so the tails are
    // ordered: max(e2e) >= max(wait), and the p99 bound follows the max.
    assert!(stats.end_to_end.max >= stats.queue_wait.max, "{stats:?}");
    assert!(stats.end_to_end.p99() <= stats.end_to_end.max);
    assert_eq!(stats.queue_high_watermark, 5);
}

#[test]
fn deadline_jobs_still_queued_past_their_deadline_expire_unrun() {
    let (pool, gate, blocker) = gated_pool(8);
    let doc = Arc::new(PreparedDocument::new(parse_xml("<r><a/><a/></r>").unwrap()));

    // Behind the busy worker: two submissions whose deadline passes while
    // they wait, and one with plenty of headroom.
    let soon = std::time::Instant::now() + Duration::from_millis(5);
    let doomed_blocking = pool.submit_with_deadline(&doc, "count(//a)", soon).unwrap();
    let doomed_fast = pool
        .try_submit_with_deadline(&doc, "count(//a)", soon)
        .unwrap();
    let alive = pool
        .submit_with_deadline(
            &doc,
            "count(//a)",
            std::time::Instant::now() + Duration::from_secs(300),
        )
        .unwrap();
    // Let the short deadline pass while everything is still queued, then
    // release the worker.
    std::thread::sleep(Duration::from_millis(20));
    gate.send(()).unwrap();
    blocker.wait().unwrap();

    // The expired jobs resolve JobExpired without ever running...
    assert_eq!(doomed_blocking.wait().unwrap(), Err(JobExpired));
    assert_eq!(doomed_fast.wait().unwrap(), Err(JobExpired));
    // ...the live one runs normally.
    let out = alive
        .wait()
        .unwrap()
        .expect("not expired")
        .expect("evaluates");
    assert_eq!(out.value, Value::Number(2.0));

    let stats = pool.shutdown();
    assert_eq!(stats.expired, 2, "{stats}");
    // Expired jobs were accepted (submitted) but never completed by a
    // worker; completed = blocker + the live query.
    assert_eq!(stats.submitted, 4, "{stats}");
    assert_eq!(stats.completed, 2, "{stats}");
    assert!(stats.to_string().contains("expired 2"), "{stats}");
}

#[test]
fn a_deadline_met_in_time_changes_nothing() {
    let doc = Arc::new(PreparedDocument::new(parse_xml("<r><a/></r>").unwrap()));
    let pool = AsyncEngine::builder().workers(2).queue_capacity(8).build();
    let deadline = std::time::Instant::now() + Duration::from_secs(300);
    let futures: Vec<_> = (0..6)
        .map(|_| {
            pool.submit_with_deadline(&doc, "count(//a)", deadline)
                .unwrap()
        })
        .collect();
    for fut in futures {
        let out = fut.wait().unwrap().expect("met the deadline").unwrap();
        assert_eq!(out.value, Value::Number(1.0));
    }
    let stats = pool.shutdown();
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.completed, 6);
}

#[test]
fn named_submissions_resolve_through_the_catalog_at_run_time() {
    let catalog = Catalog::new();
    catalog
        .insert_xml("books", "<lib><book/><book/></lib>")
        .unwrap();
    // Share the catalog's engine so plans compiled either way hit one
    // plan cache.
    let pool = AsyncEngine::builder()
        .engine(catalog.engine().clone())
        .workers(2)
        .build();

    let out = pool
        .submit_named(&catalog, "books", "count(//book)")
        .unwrap()
        .wait()
        .unwrap()
        .expect("known name evaluates");
    assert_eq!(out.value, Value::Number(2.0));

    // An unknown name is a per-job result, not a submission failure.
    let missing = pool
        .try_submit_named(&catalog, "nope", "count(//book)")
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(missing, Err(CatalogError::UnknownDocument { .. })));
    pool.shutdown();
}

#[test]
fn templated_tenants_share_one_artifact_across_the_pool() {
    // The content-hash keyed artifact cache makes templated-tenant
    // fan-out cheap: identical per-tenant documents share one
    // (query × content) artifact, so only the first evaluation builds.
    let catalog = Catalog::new();
    let template = "<tenant><user role='admin'/><user role='guest'/></tenant>";
    for i in 0..8 {
        catalog
            .insert_xml(&format!("tenant-{i}"), template)
            .unwrap();
    }
    // Warm the artifact once, synchronously, so the pooled fan-out below
    // is deterministic (no two workers racing to build the first one).
    catalog.evaluate_on("tenant-0", "//user").unwrap();

    let pool = AsyncEngine::builder()
        .engine(catalog.engine().clone())
        .workers(4)
        .build();
    let futures: Vec<_> = (1..8)
        .map(|i| {
            pool.submit_named(&catalog, &format!("tenant-{i}"), "//user")
                .unwrap()
        })
        .collect();
    for f in futures {
        let out = f.wait().unwrap().expect("tenant evaluates");
        assert_eq!(out.value.expect_nodes().len(), 2);
    }
    pool.shutdown();

    let s = catalog.stats();
    assert_eq!(s.artifact_misses, 1, "{s}");
    assert_eq!(s.artifact_hits, 7, "{s}");
    assert_eq!(s.artifact_cross_doc_hits, 7, "{s}");
    assert_eq!(s.artifact_len, 1, "{s}");
}

#[test]
fn mutation_submissions_edit_through_the_pool() {
    let catalog = Catalog::new();
    catalog.insert_xml("d", "<r><a/></r>").unwrap();
    let pool = AsyncEngine::builder()
        .engine(catalog.engine().clone())
        .workers(2)
        .build();

    let frag = parse_xml("<a/>").unwrap();
    let outcome = pool
        .submit_mutation_named(&catalog, "d", move |live| {
            let r = live.elements_named("r")[0];
            live.insert_subtree(r, 0, &frag).map(|o| o.inserted.len())
        })
        .unwrap()
        .wait()
        .unwrap()
        .expect("known name mutates");
    assert_eq!(outcome.value.unwrap(), 1);
    assert_eq!(outcome.revision, 1);
    assert_eq!(outcome.generation, 1, "an edit is not a replacement");
    assert_eq!(
        pool.submit_named(&catalog, "d", "count(//a)")
            .unwrap()
            .wait()
            .unwrap()
            .unwrap()
            .value,
        Value::Number(2.0)
    );

    // An unknown name is a per-job result, not a submission failure.
    let missing = pool
        .try_submit_mutation_named(&catalog, "nope", |_| ())
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(missing, Err(CatalogError::UnknownDocument { .. })));
    pool.shutdown();
}

#[test]
fn named_submissions_see_a_replacement_made_while_queued() {
    let (pool, gate, blocker) = gated_pool(8);
    let catalog = Catalog::new();
    catalog.insert_xml("d", "<r><a/></r>").unwrap();

    // Queued behind the busy worker, then the document is replaced: the
    // job resolves the *current* generation when it finally runs.
    let queued = pool.submit_named(&catalog, "d", "count(//a)").unwrap();
    catalog.insert_xml("d", "<r><a/><a/><a/></r>").unwrap();
    gate.send(()).unwrap();
    blocker.wait().unwrap();
    let out = queued.wait().unwrap().unwrap();
    assert_eq!(out.value, Value::Number(3.0));
    assert_eq!(catalog.generation("d"), Some(2));
    pool.shutdown();
}

#[test]
fn named_deadline_submissions_compose() {
    let (pool, gate, blocker) = gated_pool(8);
    let catalog = Catalog::new();
    catalog.insert_xml("d", "<r><a/></r>").unwrap();
    let soon = std::time::Instant::now() + Duration::from_millis(5);
    let doomed = pool
        .submit_named_with_deadline(&catalog, "d", "count(//a)", soon)
        .unwrap();
    let doomed_fast = pool
        .try_submit_named_with_deadline(&catalog, "d", "count(//a)", soon)
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    gate.send(()).unwrap();
    blocker.wait().unwrap();
    assert_eq!(doomed.wait().unwrap(), Err(JobExpired));
    assert_eq!(doomed_fast.wait().unwrap(), Err(JobExpired));
    // Catalog untouched: the expired jobs never evaluated.
    assert_eq!(catalog.stats().evaluations, 0);
    let stats = pool.shutdown();
    assert_eq!(stats.expired, 2);
}

#[test]
fn submit_document_prepares_through_the_engine_cache() {
    let mut rng = StdRng::seed_from_u64(9);
    let doc = Arc::new(random_tree_document(&mut rng, 50, &["a", "b"]));
    let pool = AsyncEngine::builder().workers(2).build();

    let futures: Vec<_> = (0..6)
        .map(|_| pool.submit_document(&doc, "count(//a)").unwrap())
        .collect();
    let reference = pool.engine().evaluate_str(&doc, "count(//a)").unwrap();
    for fut in futures {
        assert_eq!(fut.wait().unwrap().unwrap().value, reference);
    }
    // Preparation is memoized, not paid per query.  Two workers racing on
    // the first sight of the document may legitimately both build (the
    // cache counts a miss per concurrent builder), so assert the shape,
    // not an exact interleaving: every job looked the document up, at
    // most one miss per worker, and one cached entry survives.
    let doc_stats = pool.engine().document_cache_stats();
    assert_eq!(doc_stats.hits + doc_stats.misses, 6, "{doc_stats:?}");
    assert!(
        (1..=2).contains(&doc_stats.misses),
        "at most one miss per worker: {doc_stats:?}"
    );
    assert_eq!(doc_stats.len, 1, "{doc_stats:?}");
}

#[test]
fn futures_are_awaitable_through_the_own_executor() {
    let mut rng = StdRng::seed_from_u64(8);
    let doc = Arc::new(random_tree_document(&mut rng, 60, &["a", "b", "c"]));
    let pool = AsyncEngine::builder().workers(2).build();
    let prepared = pool.engine().prepare_keyed(1, &doc);

    let value = block_on(async {
        let a = pool.submit(&prepared, "count(//a)").unwrap();
        let b = pool.submit(&prepared, "count(//b)").unwrap();
        let (a, b) = (a.await.unwrap().unwrap(), b.await.unwrap().unwrap());
        (a.value, b.value)
    });
    let sync_a = pool
        .engine()
        .evaluate_str_prepared(&prepared, "count(//a)")
        .unwrap();
    let sync_b = pool
        .engine()
        .evaluate_str_prepared(&prepared, "count(//b)")
        .unwrap();
    assert_eq!(value, (sync_a, sync_b));
}

/// The headline equivalence: for every strategy and both workload corpora,
/// submitting through the pool returns exactly what the synchronous
/// `evaluate_batch_prepared` returns — same values, same errors.
#[test]
fn async_results_equal_synchronous_evaluate_batch_across_strategies() {
    let mut rng = StdRng::seed_from_u64(2003);
    let corpora: Vec<(String, Arc<Document>)> = vec![
        (
            "auction".to_string(),
            Arc::new(auction_site_document(&mut rng, 25)),
        ),
        (
            "random-tree".to_string(),
            Arc::new(random_tree_document(&mut rng, 80, &["a", "b", "c", "d"])),
        ),
    ];
    let queries: Vec<String> = core_xpath_query_corpus()
        .into_iter()
        .chain(pwf_query_corpus())
        .map(|(_, expr)| expr.to_string())
        .collect();
    let query_refs: Vec<&str> = queries.iter().map(|q| q.as_str()).collect();

    for strategy in ALL_STRATEGIES {
        let engine = Engine::builder().strategy(strategy).build();
        let pool = AsyncEngine::builder()
            .engine(engine.clone())
            .workers(3)
            .queue_capacity(16)
            .build();
        for (corpus, doc) in &corpora {
            let prepared = engine.prepare(doc);

            // Synchronous reference, through the batch entry point.  Every
            // corpus query must compile — a silent filter here would
            // misalign the per-query zips below.
            let plans: Vec<_> = queries
                .iter()
                .map(|q| engine.compile(q).unwrap_or_else(|e| panic!("{q}: {e}")))
                .collect();
            let plan_refs: Vec<&CompiledQuery> = plans.iter().map(|p| p.as_ref()).collect();
            let sync = engine.evaluate_batch_prepared(&prepared, &plan_refs);
            assert_eq!(sync.len(), queries.len());

            // Async, one submission per query AND one batched submission.
            let futures: Vec<_> = queries
                .iter()
                .map(|q| pool.submit(&prepared, q).unwrap())
                .collect();
            let batched = pool.submit_batch(&prepared, &query_refs).unwrap();

            for ((query, fut), reference) in queries.iter().zip(futures).zip(&sync) {
                let got = fut.wait().unwrap();
                match (got, reference) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.value, b.value, "{corpus}/{strategy:?}/{query}")
                    }
                    (Err(_), Err(_)) => {}
                    (got, reference) => {
                        panic!("{corpus}/{strategy:?}/{query}: async {got:?} vs sync {reference:?}")
                    }
                }
            }
            for (got, reference) in batched.wait().unwrap().iter().zip(&sync) {
                match (got, reference) {
                    (Ok(a), Ok(b)) => assert_eq!(a.value, b.value, "{corpus}/{strategy:?}"),
                    (Err(_), Err(_)) => {}
                    (got, reference) => {
                        panic!("{corpus}/{strategy:?}: batch {got:?} vs sync {reference:?}")
                    }
                }
            }
        }
        let stats = pool.shutdown();
        assert_eq!(stats.panicked, 0, "{strategy:?}");
        assert_eq!(stats.submitted, stats.completed, "{strategy:?}");
    }
}

/// Clients hammering `try_submit` under real contention: accepted work all
/// completes, rejections are all explicit `Full`, and the counters add up.
#[test]
fn concurrent_try_submit_storm_accounts_for_every_request() {
    let mut rng = StdRng::seed_from_u64(11);
    let doc = Arc::new(auction_site_document(&mut rng, 20));
    let pool = AsyncEngine::builder().workers(2).queue_capacity(4).build();
    let prepared = pool.engine().prepare_keyed(1, &doc);

    let (accepted, rejected): (u64, u64) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = &pool;
            let prepared = Arc::clone(&prepared);
            handles.push(scope.spawn(move || {
                let mut ok = 0u64;
                let mut full = 0u64;
                for _ in 0..50 {
                    match pool.try_submit(&prepared, "count(//bid)") {
                        Ok(fut) => {
                            fut.wait().unwrap().unwrap();
                            ok += 1;
                        }
                        Err(TrySubmitError::Full) => full += 1,
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
                (ok, full)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(a, r), (ok, full)| (a + ok, r + full))
    });

    assert_eq!(accepted + rejected, 200);
    // Final counters, read after shutdown joined the workers (a client's
    // `wait` can return a beat before the worker bumps `completed`).
    let stats = pool.shutdown();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.rejected_full, rejected);
    assert_eq!(stats.completed, accepted);
    assert!(stats.queue_high_watermark <= 4);
}

/// The `tokio` feature's async submission: awaits a full queue instead of
/// failing, still subject to shutdown.
#[cfg(feature = "tokio")]
#[test]
fn submit_async_round_trip() {
    let mut rng = StdRng::seed_from_u64(12);
    let doc = Arc::new(auction_site_document(&mut rng, 15));
    let pool = AsyncEngine::builder().workers(2).queue_capacity(8).build();
    let prepared = pool.engine().prepare_keyed(1, &doc);

    let value = block_on(async {
        let accepted = pool.submit_async(&prepared, "count(//item)").await.unwrap();
        accepted.await.unwrap().unwrap().value
    });
    assert_eq!(value, Value::Number(15.0));
}

/// Bound submission: many in-flight parameterizations of one query share a
/// single compilation through the pool's plan cache.
#[test]
fn bound_submissions_share_one_compilation() {
    let pool = AsyncEngine::builder().workers(2).queue_capacity(32).build();
    let doc = Arc::new(PreparedDocument::new(
        parse_xml("<lib><book year='2001'/><book year='2003'/></lib>").unwrap(),
    ));
    let query = "count(//book[@year = $year])";
    let futures: Vec<_> = (0..16)
        .map(|i| {
            let b = Bindings::new().with_number("year", 2001.0 + (i % 2) as f64 * 2.0);
            pool.submit_bound(&doc, query, &b).unwrap()
        })
        .collect();
    for f in futures {
        assert_eq!(f.wait().unwrap().unwrap().value, Value::Number(1.0));
    }
    let cache = pool.engine().cache_stats();
    assert_eq!(cache.misses, 1, "{cache:?}");
    assert_eq!(cache.hits, 15, "{cache:?}");

    // A missing binding resolves to the eager unbound-variable error.
    let f = pool.submit_bound(&doc, query, &Bindings::new()).unwrap();
    let err = f.wait().unwrap().unwrap_err();
    assert!(matches!(err, EvalError::UnboundVariable { .. }), "{err:?}");
    pool.shutdown();
}
