//! The telemetry layer's cross-cutting invariants.
//!
//! Two families of guarantees are locked in here:
//!
//! * **Trace agreement** — all five evaluation strategies emit the *same*
//!   opcode span sequence for the same plan (spans are keyed to the plan's
//!   [`PlanIr`], not to strategy internals), and the candidate counts the
//!   spans carry are consistent with the query's actual result.
//! * **Zero-cost when disabled** — a plan with no telemetry attached, and
//!   a plan whose attached handle has sampling off, allocate exactly as
//!   much as each other on the run path.  The metered dispatch resolves
//!   its registry instruments once at attach time, so the steady state is
//!   atomics only; this test pins that with a counting global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use xpeval::prelude::*;
use xpeval::workloads::{core_xpath_query_corpus, random_tree_document};

/// Counts allocations made by the *current thread*, so parallel test
/// threads don't pollute each other's measurements.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_now() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// The per-strategy comparison key: each op span's (label, opcode index,
/// fragment), plus the query's result size.
type SpanSignature = (Vec<(String, Option<u32>, &'static str)>, usize);

fn strategy_trace(
    telemetry: &Telemetry,
    plan: &CompiledQuery,
    strategy: EvalStrategy,
    doc: &Document,
) -> (QueryTrace, usize) {
    let out = plan
        .clone()
        .with_strategy(strategy)
        .run(doc)
        .expect("corpus query evaluates");
    let nodes = match out.value {
        Value::NodeSet(ref ns) => ns.len(),
        _ => 0,
    };
    (
        telemetry.last_trace().expect("sampling 1 traces every run"),
        nodes,
    )
}

/// All five strategies emit identical opcode span sequences for every
/// query in the Core XPath corpus: same labels, same opcode indices, same
/// fragments, in the same (plan) order.  Where the strategies also agree
/// on the answer — which the agreement suite guarantees — the final op
/// span's candidate outflow equals the result size for *each* strategy.
#[test]
fn strategies_emit_identical_op_span_sequences() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let doc = random_tree_document(&mut rng, 400, &["a", "b", "c"]);
    let telemetry = Arc::new(Telemetry::with_sampling(1));

    for (name, query) in core_xpath_query_corpus() {
        let plan = CompiledQuery::from_expr(query).with_telemetry(Arc::clone(&telemetry));
        let mut reference: Option<SpanSignature> = None;
        for strategy in ALL_STRATEGIES {
            let (trace, nodes) = strategy_trace(&telemetry, &plan, strategy, &doc);
            assert_eq!(trace.strategy, format!("{strategy:?}"), "{name}");
            let spans: Vec<_> = trace
                .op_spans()
                .map(|s| (s.label.clone(), s.op, s.fragment))
                .collect();
            assert!(
                !spans.is_empty(),
                "{name} via {strategy:?} emitted no op spans"
            );
            let produced = trace
                .op_spans()
                .last()
                .map(|s| s.candidates_out as usize)
                .unwrap();
            assert_eq!(
                produced, nodes,
                "{name} via {strategy:?}: final span outflow vs result size"
            );
            match &reference {
                None => reference = Some((spans, nodes)),
                Some((expected_spans, expected_nodes)) => {
                    assert_eq!(&spans, expected_spans, "{name} via {strategy:?}");
                    assert_eq!(nodes, *expected_nodes, "{name} via {strategy:?}");
                }
            }
        }
    }
}

/// Sampled traces carry the full pipeline: a compile span, a lower span,
/// then one op span per [`PlanIr`] opcode — in that order — and every op
/// span records at least one call.
#[test]
fn sampled_traces_cover_compile_lower_and_every_opcode() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let doc = random_tree_document(&mut rng, 200, &["a", "b", "c"]);
    let telemetry = Arc::new(Telemetry::with_sampling(1));
    let plan = CompiledQuery::compile("//a[child::b]/c")
        .unwrap()
        .with_telemetry(Arc::clone(&telemetry));
    plan.run(&doc).unwrap();

    let trace = telemetry.last_trace().unwrap();
    assert_eq!(trace.query, "//a[child::b]/c");
    assert_eq!(trace.spans[0].label, "parse + classify");
    assert_eq!(trace.spans[1].label, "lower to PlanIr");
    let ops: Vec<_> = trace.op_spans().collect();
    assert_eq!(ops.len(), trace.spans.len() - 2);
    for (index, span) in ops.iter().enumerate() {
        assert_eq!(span.op, Some(index as u32), "op spans in plan order");
        assert!(span.calls >= 1, "opcode {index} was never entered");
    }
    // The profile table renders one row per span.
    let table = trace.profile_table();
    assert_eq!(
        table.lines().count(),
        trace.spans.len() + 3,
        "header + separator + one row per span:\n{table}"
    );
}

/// A handle with sampling off still counts queries into the registry but
/// keeps no traces and never reads the clock — the latency histogram only
/// fills on sampled runs.
#[test]
fn sampling_off_records_counters_but_keeps_no_traces() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let doc = random_tree_document(&mut rng, 200, &["a", "b", "c"]);
    let telemetry = Arc::new(Telemetry::new());
    let plan = CompiledQuery::compile("//a/b")
        .unwrap()
        .with_telemetry(Arc::clone(&telemetry));
    for _ in 0..5 {
        plan.run(&doc).unwrap();
    }
    assert_eq!(telemetry.trace_count(), 0);
    assert_eq!(telemetry.registry().counter("query_total").get(), 5);
    let latency = telemetry
        .registry()
        .histogram("query_latency_ns")
        .snapshot();
    assert_eq!(latency.count, 0, "latency is timed only on sampled runs");

    // Turning the sampler on makes the same plan start timing.
    telemetry.set_sample_every(1);
    plan.run(&doc).unwrap();
    assert_eq!(telemetry.trace_count(), 1);
    let latency = telemetry
        .registry()
        .histogram("query_latency_ns")
        .snapshot();
    assert_eq!(latency.count, 1);
}

/// The hot-path cost claim, pinned by the allocator: with telemetry
/// attached but sampling off, `run_prepared` performs *exactly* as many
/// allocations as it does with no telemetry at all.  (The dispatch
/// instruments are resolved at attach time; per-run metering on the
/// unsampled path is two atomic operations — no clock reads at all.)
#[test]
fn disabled_telemetry_allocates_nothing_on_the_run_path() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let prepared = random_tree_document(&mut rng, 300, &["a", "b", "c"]).prepare();

    let plain = CompiledQuery::compile("//a[child::b]/c")
        .unwrap()
        .with_strategy(EvalStrategy::ContextValueTable);
    let telemetry = Arc::new(Telemetry::new());
    let metered = plain.clone().with_telemetry(Arc::clone(&telemetry));

    let count_runs = |plan: &CompiledQuery| {
        // Warm-up settles one-time lazy state on either path.
        for _ in 0..3 {
            plan.run_prepared(&prepared).unwrap();
        }
        let before = allocations_now();
        for _ in 0..8 {
            plan.run_prepared(&prepared).unwrap();
        }
        allocations_now() - before
    };

    let bare = count_runs(&plain);
    let disabled = count_runs(&metered);
    assert_eq!(
        bare, disabled,
        "sampling-off telemetry must not allocate: {bare} allocations bare vs {disabled} metered"
    );
    assert_eq!(telemetry.trace_count(), 0);

    // Sanity: the instrumentation *did* run — the counter saw all 11 runs.
    assert_eq!(telemetry.registry().counter("query_total").get(), 11);
}
