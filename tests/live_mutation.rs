//! Live-document properties: a mutated `PreparedDocument`'s incremental
//! indexes must be indistinguishable from a full re-parse-and-prepare of
//! the same tree — for every evaluation strategy — and the catalog's
//! subtree-scoped artifact invalidation must kill exactly the artifacts
//! whose candidates the edit touched.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use xpeval::dom::serialize;
use xpeval::prelude::*;
use xpeval::workloads::random_tree_document;

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// Queries that exercise the indexes an edit must maintain: tag lists,
/// child/descendant axes, sibling order, positions, attributes and text.
const QUERIES: &[&str] = &[
    "//a",
    "//b",
    "//a[child::b]",
    "//a/b",
    "//b[not(child::c)]",
    "//a/following-sibling::b",
    "//c/parent::a",
    "//b[position() = 2]",
    "//a[@k]",
    "count(//c)",
    "//a[.//c]",
];

/// One scripted edit; raw indexes are reduced modulo the live counts at
/// application time, so every script stays applicable as the tree changes.
#[derive(Debug, Clone)]
enum Op {
    Insert { el: usize, at: usize, frag: usize },
    Remove { el: usize },
    Replace { el: usize, frag: usize },
    SetAttr { el: usize, name: usize, val: usize },
    SetText { t: usize, val: usize },
}

/// Draws a random edit script covering all five operations.
fn random_script(rng: &mut StdRng, len: usize) -> Vec<Op> {
    use rand::Rng;
    (0..len)
        .map(|_| match rng.gen_range(0..5) {
            0 => Op::Insert {
                el: rng.gen_range(0..64),
                at: rng.gen_range(0..8),
                frag: rng.gen_range(0..4),
            },
            1 => Op::Remove {
                el: rng.gen_range(0..64),
            },
            2 => Op::Replace {
                el: rng.gen_range(0..64),
                frag: rng.gen_range(0..4),
            },
            3 => Op::SetAttr {
                el: rng.gen_range(0..64),
                name: rng.gen_range(0..3),
                val: rng.gen_range(0..3),
            },
            _ => Op::SetText {
                t: rng.gen_range(0..64),
                val: rng.gen_range(0..3),
            },
        })
        .collect()
}

fn fragments() -> Vec<Document> {
    [
        "<a><b/><c/></a>",
        "<b k=\"9\">fresh</b>",
        "<c><a><b/></a></c>",
        "<a/>",
    ]
    .iter()
    .map(|x| parse_xml(x).unwrap())
    .collect()
}

/// Elements that are safe to remove or replace: everything except the
/// document element (removing it would allow a later insert to create a
/// second root, which a serialize → parse round-trip cannot represent).
fn inner_elements(live: &LiveDocument) -> Vec<NodeId> {
    let doc = live.document();
    doc.all_elements()
        .filter(|&e| doc.parent(e) != Some(doc.root()))
        .collect()
}

fn text_nodes(live: &LiveDocument) -> Vec<NodeId> {
    let doc = live.document();
    doc.all_nodes().filter(|&n| doc.kind(n).is_text()).collect()
}

/// Applies one op to the live document, reducing raw indexes to the
/// current tree; ops with no valid target are skipped.
fn apply(live: &mut LiveDocument, op: &Op, frags: &[Document]) {
    match *op {
        Op::Insert { el, at, frag } => {
            let els: Vec<NodeId> = live.document().all_elements().collect();
            if els.is_empty() {
                return;
            }
            let parent = els[el % els.len()];
            let at = at % (live.child_count(parent) + 1);
            live.insert_subtree(parent, at, &frags[frag % frags.len()])
                .expect("in-range insert succeeds");
        }
        Op::Remove { el } => {
            let els = inner_elements(live);
            if els.is_empty() {
                return;
            }
            live.remove_subtree(els[el % els.len()])
                .expect("attached element removal succeeds");
        }
        Op::Replace { el, frag } => {
            let els = inner_elements(live);
            if els.is_empty() {
                return;
            }
            live.replace_subtree(els[el % els.len()], &frags[frag % frags.len()])
                .expect("attached element replacement succeeds");
        }
        Op::SetAttr { el, name, val } => {
            let els: Vec<NodeId> = live.document().all_elements().collect();
            if els.is_empty() {
                return;
            }
            let names = ["k", "k2", "id"];
            live.set_attribute(
                els[el % els.len()],
                names[name % names.len()],
                &format!("v{val}"),
            )
            .expect("set_attribute on an element succeeds");
        }
        Op::SetText { t, val } => {
            let ts = text_nodes(live);
            if ts.is_empty() {
                return;
            }
            live.set_text(ts[t % ts.len()], &format!("text{val}"))
                .expect("set_text on a text node succeeds");
        }
    }
}

/// Canonical form of a query result that is comparable across two
/// different arenas holding the same tree: node sets become ranks in
/// document order, everything else is compared as-is.
#[derive(Debug, PartialEq)]
enum Canon {
    Nodes(Vec<usize>),
    Other(Value),
    Err(String),
}

fn rank_map(p: &PreparedDocument) -> HashMap<NodeId, usize> {
    let doc = p.document();
    let mut all: Vec<NodeId> = doc.all_nodes().collect();
    all.sort_by_key(|&n| doc.pre(n));
    all.into_iter().enumerate().map(|(i, n)| (n, i)).collect()
}

fn canon(result: Result<Value, EvalError>, ranks: &HashMap<NodeId, usize>) -> Canon {
    match result {
        Ok(Value::NodeSet(nodes)) => Canon::Nodes(
            nodes
                .into_iter()
                .map(|n| *ranks.get(&n).expect("result node is attached"))
                .collect(),
        ),
        Ok(v) => Canon::Other(v),
        Err(e) => Canon::Err(e.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline agreement property: after a random edit script, every
    /// strategy sees the same results on the incrementally-maintained
    /// indexes as on a document rebuilt from scratch (serialize → parse →
    /// prepare) — node sets compared as document-order ranks.
    #[test]
    fn mutated_indexes_agree_with_full_rebuild(
        seed in 0u64..10_000,
        nodes in 3usize..60,
        script_len in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c"]);
        let script = random_script(&mut rng, script_len);
        let frags = fragments();
        let mut live = LiveDocument::new(doc);
        for op in &script {
            apply(&mut live, op, &frags);
        }
        prop_assert_eq!(live.revision(), live.pending().map_or(0, |p| p.edits));

        let mutated = live.snapshot();
        let rebuilt = PreparedDocument::new(
            parse_xml(&serialize(mutated.shared_document())).expect("serialized tree re-parses"),
        );
        let mutated_ranks = rank_map(&mutated);
        let rebuilt_ranks = rank_map(&rebuilt);

        for strategy in ALL_STRATEGIES {
            let engine = Engine::builder().strategy(strategy).threads(2).build();
            for q in QUERIES {
                let run = |p: &PreparedDocument| {
                    engine
                        .compile(q)
                        .and_then(|plan| plan.run_prepared(p))
                        .map(|out| out.value)
                };
                prop_assert_eq!(
                    canon(run(&mutated), &mutated_ranks),
                    canon(run(&rebuilt), &rebuilt_ranks),
                    "{strategy:?} disagrees on {q} after {script:?}",
                );
            }
        }
    }
}

/// Invalidation precision, end to end: an edit kills exactly the
/// artifacts whose candidate elements intersect the dirty subtree — the
/// survivors keep answering as cache hits, with correct post-edit
/// results.
#[test]
fn scoped_invalidation_spares_disjoint_artifacts() {
    let catalog = Catalog::new();
    catalog
        .insert_xml(
            "d",
            "<r><left><a/><a/></left><right><b/><b/><b/></right></r>",
        )
        .unwrap();
    for q in ["//a", "//b", "//missing"] {
        catalog.evaluate_on("d", q).unwrap();
    }

    let fragment = parse_xml("<a fresh=\"1\"/>").unwrap();
    let outcome = catalog
        .mutate_named("d", |live| {
            let left = live.elements_named("left")[0];
            live.insert_subtree(left, 2, &fragment)
        })
        .unwrap();
    outcome.value.as_ref().unwrap();

    // //a intersects the edit; //b and the verified-empty //missing do not.
    assert_eq!(outcome.artifacts_killed, 1, "{outcome:?}");
    assert_eq!(outcome.artifacts_preserved, 2, "{outcome:?}");

    // Survivors answer without a rebuild, and answer correctly.
    let misses = catalog.stats().artifact_misses;
    let out = catalog.evaluate_on("d", "//b").unwrap();
    assert_eq!(out.value, {
        let p = catalog.get("d").unwrap();
        Value::NodeSet(p.elements_named("b").to_vec())
    });
    catalog.evaluate_on("d", "//missing").unwrap();
    assert_eq!(
        catalog.stats().artifact_misses,
        misses,
        "preserved artifacts must hit"
    );

    // The killed artifact rebuilds once and sees the inserted node.
    let out = catalog.evaluate_on("d", "//a").unwrap();
    match out.value {
        Value::NodeSet(ref nodes) => assert_eq!(nodes.len(), 3),
        ref v => panic!("unexpected value {v:?}"),
    }
    assert_eq!(catalog.stats().artifact_misses, misses + 1);

    let stats = catalog.stats();
    assert_eq!(stats.artifact_scope_killed, 1, "{stats}");
    assert_eq!(stats.artifact_scope_preserved, 2, "{stats}");
}

/// The pending-edit batch a catalog mutation drains must cover every
/// edit of the closure: dirty intervals union, counters add up.
#[test]
fn pending_batches_accumulate_across_a_closure() {
    let catalog = Catalog::new();
    catalog.insert_xml("d", "<r><a/><b/></r>").unwrap();
    let frag = parse_xml("<c/>").unwrap();
    let outcome = catalog
        .mutate_named("d", |live| {
            let a = live.elements_named("a")[0];
            live.insert_subtree(a, 0, &frag).unwrap();
            let b = live.elements_named("b")[0];
            live.remove_subtree(b).unwrap();
        })
        .unwrap();
    let edits = outcome.edits.expect("two edits published");
    assert_eq!(edits.edits, 2);
    assert_eq!(edits.inserted, 1);
    assert_eq!(edits.removed, 1);
    assert_eq!(outcome.revision, 2, "one revision per edit");
    assert!(edits.dirty.0 < edits.dirty.1, "dirty interval is non-empty");
}
