//! Streaming node-set results: `run_streaming` must yield exactly the
//! nodes of `run`, in document order, under every evaluation strategy and
//! over the workload corpora — and the decide-as-you-go modes must be
//! genuinely lazy (consuming a prefix of the matches examines only a
//! prefix of the candidates).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::prelude::*;
use xpeval::workloads::{
    auction_site_document, core_xpath_query_corpus, pwf_query_corpus, random_tree_document,
    wide_document,
};

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// For every strategy that accepts the query: `run_streaming` (plain and
/// prepared) yields exactly the node set of `run`, in document order.
fn assert_streaming_matches_run(
    doc: &Document,
    prepared: &PreparedDocument,
    name: &str,
    compiled: &CompiledQuery,
) {
    for strategy in ALL_STRATEGIES {
        let q = compiled.clone().with_strategy(strategy);
        let expected = match q.run(doc) {
            Ok(out) => match out.value {
                Value::NodeSet(nodes) => nodes,
                _ => continue, // scalar query: nothing to stream
            },
            Err(EvalError::UnsupportedFragment { .. }) => continue,
            Err(e) => panic!("{name} under {strategy:?}: {e}"),
        };
        let streamed = q
            .run_streaming(doc)
            .unwrap_or_else(|e| panic!("{name} under {strategy:?}: {e}"))
            .collect_nodes()
            .unwrap_or_else(|e| panic!("{name} under {strategy:?}: {e}"));
        assert_eq!(streamed, expected, "{name} under {strategy:?}");
        let streamed_prepared = q
            .run_streaming_prepared(prepared)
            .unwrap_or_else(|e| panic!("{name} under {strategy:?} (prepared): {e}"))
            .collect_nodes()
            .unwrap_or_else(|e| panic!("{name} under {strategy:?} (prepared): {e}"));
        assert_eq!(
            streamed_prepared, expected,
            "{name} under {strategy:?} (prepared)"
        );
    }
}

#[test]
fn streaming_agrees_on_the_core_corpus() {
    let mut rng = StdRng::seed_from_u64(90);
    let doc = random_tree_document(&mut rng, 50, &["a", "b", "c", "d", "root"]);
    let prepared = PreparedDocument::new(doc.clone());
    for (name, query) in core_xpath_query_corpus() {
        let compiled = CompiledQuery::compile(&query.to_string()).unwrap();
        assert_streaming_matches_run(&doc, &prepared, name, &compiled);
    }
}

#[test]
fn streaming_agrees_on_the_pwf_corpus() {
    let mut rng = StdRng::seed_from_u64(91);
    let doc = auction_site_document(&mut rng, 10);
    let prepared = PreparedDocument::new(doc.clone());
    for (name, query) in pwf_query_corpus() {
        let compiled = CompiledQuery::compile(&query.to_string()).unwrap();
        assert_streaming_matches_run(&doc, &prepared, name, &compiled);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// Random documents × a few representative queries × all strategies.
    #[test]
    fn streaming_agrees_on_random_trees(seed in 0u64..10_000, nodes in 2usize..60) {
        let doc = random_tree_document(
            &mut StdRng::seed_from_u64(seed),
            nodes,
            &["a", "b", "c"],
        );
        let prepared = PreparedDocument::new(doc.clone());
        for query in [
            "//a",
            "//a[child::b]",
            "/descendant::b/child::*",
            "//c/ancestor::a | //b",
            "//a[not(descendant::c)]",
        ] {
            let compiled = CompiledQuery::compile(query).unwrap();
            assert_streaming_matches_run(&doc, &prepared, query, &compiled);
        }
    }
}

#[test]
fn singleton_success_streams_lazily() {
    // A document with many matches: consuming only the first k matches must
    // examine only a prefix of the candidates — the witness that no full
    // result vector was materialized.
    let doc = wide_document(200, 2); // 601 elements + root
    let q = CompiledQuery::compile("//a | //b | //c | //d")
        .unwrap()
        .with_strategy(EvalStrategy::SingletonSuccess);

    let mut stream = q.run_streaming(&doc).unwrap();
    assert_eq!(stream.mode(), StreamMode::Decide);
    let first_five: Vec<NodeId> = stream.by_ref().take(5).map(Result::unwrap).collect();
    assert_eq!(first_five.len(), 5);
    assert!(
        stream.nodes_scanned() < doc.len() / 10,
        "scanned {} of {} candidates for 5 matches",
        stream.nodes_scanned(),
        doc.len()
    );

    // The prefix is a prefix of the full (materialized) result.
    let full = q.run(&doc).unwrap().value.into_nodes().unwrap();
    assert_eq!(&full[..5], first_five.as_slice());
}

#[test]
fn linear_plan_streams_from_the_bitset() {
    let doc = wide_document(100, 3);
    let prepared = PreparedDocument::new(doc.clone());
    let q = CompiledQuery::compile("/descendant::a").unwrap();
    assert_eq!(q.strategy(), EvalStrategy::CoreXPathLinear);
    let stream = q.run_streaming_prepared(&prepared).unwrap();
    // Set-at-a-time evaluation ends in a bitset; the stream walks it
    // without ever collecting a result vector.
    assert_eq!(stream.mode(), StreamMode::Bitset);
    let first: Vec<NodeId> = stream.take(3).map(Result::unwrap).collect();
    let full = q.run(&doc).unwrap().value.into_nodes().unwrap();
    assert_eq!(&full[..3], first.as_slice());
}

#[test]
fn visitor_api_supports_early_exit() {
    let doc = wide_document(50, 1);
    let prepared = PreparedDocument::new(doc.clone());
    let q = CompiledQuery::compile("//*").unwrap();
    let total = q.run(&doc).unwrap().value.expect_nodes().len();

    let mut seen = 0usize;
    let visited = q
        .run_visit(&doc, |_| {
            seen += 1;
            seen < 7
        })
        .unwrap();
    assert_eq!(visited, 7);

    let all = q.run_visit_prepared(&prepared, |_| true).unwrap();
    assert_eq!(all, total);
}
