//! Cross-evaluator agreement: every evaluation strategy implements the same
//! XPath semantics on the fragments it supports.
//!
//! This is the central integration invariant of the reproduction — the
//! complexity results only make sense if the linear Core XPath evaluator,
//! the context-value-table evaluator, the naive baseline, the
//! Singleton-Success checker and the parallel evaluator all agree.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::engine::{
    Context, CoreXPathEvaluator, DpEvaluator, NaiveEvaluator, ParallelEvaluator, SingletonSuccess,
};
use xpeval::prelude::*;
use xpeval::workloads::{
    auction_site_document, core_xpath_query_corpus, pwf_query_corpus, random_core_query,
    random_pf_query, random_tree_document, wide_document,
};

fn dp_nodes<S: AxisSource + ?Sized>(src: &S, query: &Expr) -> Vec<NodeId> {
    DpEvaluator::new(src, query)
        .evaluate()
        .unwrap()
        .into_nodes()
        .unwrap()
}

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// The pre-IR evaluation path: the public AST-walking evaluator behind each
/// strategy, invoked directly on the expression tree.
fn ast_walk(doc: &Document, query: &Expr, strategy: EvalStrategy) -> Result<Value, EvalError> {
    match strategy {
        EvalStrategy::ContextValueTable => DpEvaluator::new(doc, query).evaluate(),
        EvalStrategy::Naive => NaiveEvaluator::new(doc).evaluate(query),
        EvalStrategy::CoreXPathLinear => CoreXPathEvaluator::new(doc)
            .evaluate_query(query)
            .map(Value::NodeSet),
        EvalStrategy::Parallel { threads } => ParallelEvaluator::new(doc, threads).evaluate(query),
        EvalStrategy::SingletonSuccess => SingletonSuccess::new(doc, query)
            .and_then(|ss| ss.node_set(Context::root(doc)).map(Value::NodeSet)),
    }
}

/// Lowering must be semantics-preserving *per strategy*: for every query and
/// every strategy, the [`CompiledQuery`] path (lower to [`PlanIr`], execute
/// the flat program) and the AST walk either produce the same value or
/// reject the query in the same way (a strategy that refuses a fragment on
/// the AST must refuse its lowering too).
fn assert_ir_matches_ast_walk(doc: &Document, prepared: &PreparedDocument, query: &Expr) {
    for strategy in ALL_STRATEGIES {
        let compiled = CompiledQuery::from_expr(query.clone()).with_strategy(strategy);
        let via_ir = compiled.run(doc).map(|out| out.value);
        let via_prepared = compiled.run_prepared(prepared).map(|out| out.value);
        let ast = ast_walk(doc, query, strategy);
        match (via_ir, via_prepared, ast) {
            (Ok(ir), Ok(pir), Ok(ast)) => {
                assert_eq!(ir, ast, "{} via {strategy:?}", compiled.source());
                assert_eq!(pir, ast, "{} prepared via {strategy:?}", compiled.source());
            }
            (Err(_), Err(_), Err(_)) => {}
            (ir, pir, ast) => panic!(
                "lowering/AST divergence on {} via {strategy:?}: ir={ir:?} prepared={pir:?} ast={ast:?}",
                compiled.source()
            ),
        }
    }
}

/// Lowering→eval ≡ AST walk across all five strategies × both query
/// corpora, on the auction workload and a random tree (direct and prepared
/// sources both dispatch through the IR).
#[test]
fn lowered_ir_matches_ast_walk_on_both_corpora() {
    let docs = [
        auction_site_document(&mut StdRng::seed_from_u64(7), 20),
        random_tree_document(
            &mut StdRng::seed_from_u64(8),
            200,
            &["site", "item", "bid", "name", "a", "b"],
        ),
    ];
    let corpus: Vec<_> = core_xpath_query_corpus()
        .into_iter()
        .chain(pwf_query_corpus())
        .collect();
    for doc in &docs {
        let prepared = PreparedDocument::new(doc.clone());
        for (_, query) in &corpus {
            assert_ir_matches_ast_walk(doc, &prepared, query);
        }
    }
}

#[test]
fn corpus_agreement_on_core_xpath_queries() {
    let docs = vec![
        wide_document(40, 4),
        random_tree_document(
            &mut StdRng::seed_from_u64(1),
            300,
            &["a", "b", "c", "d", "root"],
        ),
    ];
    for doc in &docs {
        for (name, query) in core_xpath_query_corpus() {
            let dp = dp_nodes(doc, &query);
            let naive = NaiveEvaluator::new(doc)
                .evaluate(&query)
                .unwrap()
                .into_nodes()
                .unwrap();
            let linear = CoreXPathEvaluator::new(doc).evaluate_query(&query).unwrap();
            assert_eq!(dp, naive, "naive disagrees on {name}");
            assert_eq!(dp, linear, "linear evaluator disagrees on {name}");
        }
    }
}

#[test]
fn corpus_agreement_on_pwf_queries() {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(2), 40);
    let ctx = Context::root(&doc);
    for (name, query) in pwf_query_corpus() {
        let dp = dp_nodes(&doc, &query);
        let ss = SingletonSuccess::new(&doc, &query)
            .unwrap()
            .node_set(ctx)
            .unwrap();
        let par = ParallelEvaluator::new(&doc, 3)
            .evaluate(&query)
            .unwrap()
            .into_nodes()
            .unwrap();
        assert_eq!(dp, ss, "singleton-success disagrees on {name}");
        assert_eq!(dp, par, "parallel evaluator disagrees on {name}");
    }
}

#[test]
fn engine_facade_strategies_agree() {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(3), 25);
    let query = parse_query("//item[child::bid]/name").unwrap();
    let reference = Engine::new(EvalStrategy::ContextValueTable)
        .evaluate(&doc, &query)
        .unwrap();
    for strategy in [
        EvalStrategy::Naive,
        EvalStrategy::CoreXPathLinear,
        EvalStrategy::SingletonSuccess,
        EvalStrategy::Parallel { threads: 4 },
    ] {
        let got = Engine::new(strategy).evaluate(&doc, &query).unwrap();
        assert_eq!(got, reference, "{strategy:?}");
    }
}

/// Node-set operators (`union`/`intersect`/`except`) and node comparisons
/// (`is`/`<<`/`>>`) through every strategy: whoever accepts the query must
/// agree with the context-value-table reference, and node-set results come
/// back deduplicated in document order.
#[test]
fn set_operators_and_node_comparisons_agree() {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(11), 30);
    let prepared = PreparedDocument::new(doc.clone());
    for src in [
        "//name intersect //item/name",
        "//name except //item/name",
        "(//name | //bid) except //item/name",
        "//item[child::bid] intersect //item",
        "(//bid | //bid) | //bid",
        "//item << //item/name",
        "//name >> //item",
        "//item/name is //item/name",
        "//nosuch is //item",
    ] {
        let reference = CompiledQuery::compile(src)
            .unwrap()
            .with_strategy(EvalStrategy::ContextValueTable)
            .run(&doc)
            .unwrap()
            .value;
        if let Value::NodeSet(nodes) = &reference {
            assert!(
                nodes.windows(2).all(|w| w[0] < w[1]),
                "{src}: result not deduplicated in document order: {nodes:?}"
            );
        }
        let mut accepted = 1;
        for strategy in ALL_STRATEGIES {
            if strategy == EvalStrategy::ContextValueTable {
                continue;
            }
            let compiled = CompiledQuery::compile(src).unwrap().with_strategy(strategy);
            match (compiled.run(&doc), compiled.run_prepared(&prepared)) {
                (Ok(plain), Ok(fast)) => {
                    accepted += 1;
                    assert_eq!(plain.value, reference, "{src} via {strategy:?}");
                    assert_eq!(fast.value, reference, "{src} prepared via {strategy:?}");
                }
                (Err(_), Err(_)) => {} // a strategy may reject the fragment, consistently
                (plain, fast) => panic!(
                    "{src} via {strategy:?}: direct and prepared disagree on acceptance: {plain:?} vs {fast:?}"
                ),
            }
        }
        assert!(accepted >= 2, "{src}: only the reference strategy accepted");
    }
}

/// Registered functions through every strategy that admits them: a
/// core-safe registration must evaluate identically under the DP
/// reference, the naive baseline, Singleton-Success and the parallel
/// evaluator.
#[test]
fn registered_functions_agree_across_strategies() {
    use std::sync::Arc;

    let mut registry = FunctionRegistry::new();
    registry.register(
        FunctionSignature::new("double", 1, Some(1))
            .returns_number()
            .impact(FragmentImpact::CoreSafe),
        |args, _, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
    );
    let registry = Arc::new(registry);
    let doc = auction_site_document(&mut StdRng::seed_from_u64(12), 25);
    let prepared = PreparedDocument::new(doc.clone());
    for src in ["//bid[double(@increase) = 6]", "double(count(//bid))"] {
        let compiled = CompiledQuery::compile_with_registry(src, registry.clone()).unwrap();
        let reference = compiled
            .clone()
            .with_strategy(EvalStrategy::ContextValueTable)
            .run(&doc)
            .unwrap()
            .value;
        for strategy in [
            EvalStrategy::Naive,
            EvalStrategy::SingletonSuccess,
            EvalStrategy::Parallel { threads: 2 },
        ] {
            let q = compiled.clone().with_strategy(strategy);
            match (q.run(&doc), q.run_prepared(&prepared)) {
                (Ok(plain), Ok(fast)) => {
                    assert_eq!(plain.value, reference, "{src} via {strategy:?}");
                    assert_eq!(fast.value, reference, "{src} prepared via {strategy:?}");
                }
                (Err(_), Err(_)) => {}
                (plain, fast) => {
                    panic!("{src} via {strategy:?}: acceptance divergence: {plain:?} vs {fast:?}")
                }
            }
        }
    }
}

/// Bound variables through every strategy: one compilation, one binding
/// set, identical answers — and the eager unbound-variable error on every
/// bound entry point when a referenced name is missing.
#[test]
fn bound_variables_agree_across_strategies() {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(13), 25);
    let prepared = PreparedDocument::new(doc.clone());
    let compiled = CompiledQuery::compile("//bid[@increase = $inc]").unwrap();
    assert_eq!(compiled.variables(), ["inc".to_string()]);
    let bindings = Bindings::new().with_number("inc", 3.0);
    let reference = compiled
        .clone()
        .with_strategy(EvalStrategy::ContextValueTable)
        .run_bound(&doc, &bindings)
        .unwrap()
        .value;
    for strategy in ALL_STRATEGIES {
        let q = compiled.clone().with_strategy(strategy);
        match (
            q.run_bound(&doc, &bindings),
            q.run_prepared_bound(&prepared, &bindings),
        ) {
            (Ok(plain), Ok(fast)) => {
                assert_eq!(plain.value, reference, "bound via {strategy:?}");
                assert_eq!(fast.value, reference, "bound prepared via {strategy:?}");
            }
            (Err(_), Err(_)) => {}
            (plain, fast) => {
                panic!("bound via {strategy:?}: acceptance divergence: {plain:?} vs {fast:?}")
            }
        }
        // A missing binding is an eager, named error under every strategy.
        let err = q.run_bound(&doc, &Bindings::new()).unwrap_err();
        assert!(
            matches!(&err, EvalError::UnboundVariable { name } if name == "inc"),
            "{strategy:?}: {err:?}"
        );
    }
}

/// The compile-time gate: unknown functions and arity mismatches never
/// reach a document.
#[test]
fn compile_time_call_validation() {
    assert!(matches!(
        CompiledQuery::compile("frobnicate(//a)").unwrap_err(),
        EvalError::UnknownFunction { .. }
    ));
    for bad in ["count(//a, //b)", "substring('x')", "//a[count()]"] {
        assert!(
            matches!(
                CompiledQuery::compile(bad).unwrap_err(),
                EvalError::WrongArity { .. }
            ),
            "{bad}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random PF queries over random documents: naive, DP and the linear
    /// evaluator agree.
    #[test]
    fn random_pf_queries_agree(seed in 0u64..5000, len in 1usize..7, nodes in 5usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c"]);
        let query = random_pf_query(&mut rng, len, &["a", "b", "c"]);
        let dp = dp_nodes(&doc, &query);
        let naive = NaiveEvaluator::new(&doc).evaluate(&query).unwrap().into_nodes().unwrap();
        let linear = CoreXPathEvaluator::new(&doc).evaluate_query(&query).unwrap();
        prop_assert_eq!(&dp, &naive);
        prop_assert_eq!(&dp, &linear);
    }

    /// Random Core XPath queries (with negation): DP and the linear
    /// evaluator agree.
    #[test]
    fn random_core_queries_agree(seed in 0u64..5000, depth in 0usize..4, nodes in 5usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c", "d"]);
        let query = random_core_query(&mut rng, depth, &["a", "b", "c", "d"]);
        let dp = dp_nodes(&doc, &query);
        let linear = CoreXPathEvaluator::new(&doc).evaluate_query(&query).unwrap();
        prop_assert_eq!(&dp, &linear);
    }

    /// Random pWF queries: the Singleton-Success checker and the parallel
    /// evaluator agree with the DP evaluator.
    #[test]
    fn random_pwf_queries_agree(seed in 0u64..5000, nodes in 5usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b"]);
        let query = xpeval::workloads::random_pwf_query(&mut rng, &["a", "b"]);
        let dp = dp_nodes(&doc, &query);
        let ctx = Context::root(&doc);
        let ss = SingletonSuccess::new(&doc, &query).unwrap().node_set(ctx).unwrap();
        let par = ParallelEvaluator::new(&doc, 2).evaluate(&query).unwrap().into_nodes().unwrap();
        prop_assert_eq!(&dp, &ss);
        prop_assert_eq!(&dp, &par);
    }

    /// The naive evaluator and the DP evaluator agree on everything the
    /// naive evaluator can finish (they only differ in cost, never in the
    /// result).
    #[test]
    fn naive_agrees_when_it_terminates(seed in 0u64..5000, depth in 0usize..3, nodes in 5usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c"]);
        let query = random_core_query(&mut rng, depth, &["a", "b", "c"]);
        let dp = dp_nodes(&doc, &query);
        let naive = NaiveEvaluator::new(&doc).evaluate(&query).unwrap().into_nodes().unwrap();
        prop_assert_eq!(dp, naive);
    }

    /// Prepared-vs-unprepared agreement for the newly indexed axes
    /// (`child::tag`, `following`, `preceding`) across the evaluators that
    /// support them: each evaluator, fed the same query, must compute the
    /// same node set from a `PreparedDocument` (indexed fast paths) as from
    /// the bare `Document` (tree walks).
    #[test]
    fn prepared_axes_agree_across_evaluators(seed in 0u64..5000, nodes in 5usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c"]);
        let prepared = PreparedDocument::new(doc.clone());
        for src in [
            "/descendant::a/child::b",
            "//c/preceding::b",
            "//b/following::a",
            "//a/following::*",
            "//b/preceding::node()",
            "//a[following::b]/child::c",
            "//c[not(preceding::a)]",
        ] {
            let query = parse_query(src).unwrap();
            let reference = dp_nodes(&doc, &query);
            prop_assert_eq!(
                &dp_nodes(&prepared, &query), &reference, "dp prepared vs unprepared on {}", src
            );
            let linear_plain = CoreXPathEvaluator::new(&doc).evaluate_query(&query).unwrap();
            let linear_fast = CoreXPathEvaluator::new(&prepared).evaluate_query(&query).unwrap();
            prop_assert_eq!(&linear_plain, &reference, "linear vs dp on {}", src);
            prop_assert_eq!(&linear_fast, &reference, "linear prepared on {}", src);
            let naive = NaiveEvaluator::new(&prepared)
                .evaluate(&query)
                .unwrap()
                .into_nodes()
                .unwrap();
            prop_assert_eq!(&naive, &reference, "naive prepared on {}", src);
        }
    }

    /// Positional child predicates through the full pWF pipeline: the
    /// Singleton-Success checker and the parallel evaluator agree with the
    /// DP evaluator on prepared documents (candidate pruning + indexed
    /// steps must not change any answer).
    #[test]
    fn prepared_positional_and_pruning_agree(seed in 0u64..5000, nodes in 5usize..60, k in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b"]);
        let prepared = PreparedDocument::new(doc.clone());
        let ctx = Context::root(&doc);
        for src in [
            format!("//a/child::b[{k}]"),
            format!("//a[position() = {k}]"),
            "//b[position() = last()]".to_string(),
            "//a/child::node()[last()]".to_string(),
        ] {
            let query = parse_query(&src).unwrap();
            let reference = dp_nodes(&doc, &query);
            prop_assert_eq!(
                &dp_nodes(&prepared, &query), &reference, "dp prepared on {}", src
            );
            let ss = SingletonSuccess::new(&prepared, &query)
                .unwrap()
                .node_set(ctx)
                .unwrap();
            prop_assert_eq!(&ss, &reference, "singleton-success prepared on {}", src);
            let par = ParallelEvaluator::new(&prepared, 2)
                .evaluate(&query)
                .unwrap()
                .into_nodes()
                .unwrap();
            prop_assert_eq!(&par, &reference, "parallel prepared on {}", src);
        }
    }

    /// Random Core XPath and pWF queries through every strategy: the
    /// lowered-IR path and the AST walk agree (or reject identically) on
    /// direct and prepared sources alike.
    #[test]
    fn lowered_ir_matches_ast_walk_on_random_queries(
        seed in 0u64..5000, depth in 0usize..4, nodes in 5usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tags = ["a", "b", "c"];
        let doc = random_tree_document(&mut rng, nodes, &tags);
        let prepared = PreparedDocument::new(doc.clone());
        let queries = [
            random_core_query(&mut rng, depth, &tags),
            xpeval::workloads::random_pwf_query(&mut rng, &tags),
        ];
        for query in &queries {
            assert_ir_matches_ast_walk(&doc, &prepared, query);
        }
    }

    /// The workspace-global intern table hands out *stable* [`TagId`]s: the
    /// same name interned from racing threads resolves to one id, and two
    /// documents built over the same tag pool agree on the id of every tag
    /// they share — the property that lets specialized plans and artifacts
    /// transfer between documents.
    #[test]
    fn tag_ids_are_stable_across_threads_and_documents(
        seed in 0u64..5000, nodes in 5usize..80,
    ) {
        use xpeval::dom::intern;

        // Names fresh to this seed: the winning thread interns, the rest
        // must observe the identical id (and the reverse mapping).
        let names: Vec<String> = (0..8).map(|i| format!("p{seed}-t{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let mut order = names.clone();
                order.rotate_left(t * 2);
                std::thread::spawn(move || {
                    order
                        .into_iter()
                        .map(|n| { let id = intern::intern(&n); (n, id) })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut agreed = std::collections::HashMap::new();
        for handle in handles {
            for (name, id) in handle.join().unwrap() {
                let first = *agreed.entry(name.clone()).or_insert(id);
                prop_assert_eq!(first, id, "thread disagreement on {}", name);
                prop_assert_eq!(intern::tag_name(id), name.as_str());
                prop_assert_eq!(intern::lookup(&name), Some(id));
            }
        }

        // Two independent documents over one tag pool: every shared tag
        // resolves to the same workspace-global id in both.
        let mut rng = StdRng::seed_from_u64(seed);
        let tags = ["a", "b", "c"];
        let one = PreparedDocument::new(random_tree_document(&mut rng, nodes, &tags));
        let two = PreparedDocument::new(random_tree_document(&mut rng, nodes, &tags));
        for tag in tags {
            if let (Some(in_one), Some(in_two)) = (one.tag_id(tag), two.tag_id(tag)) {
                prop_assert_eq!(in_one, in_two, "documents disagree on {}", tag);
                prop_assert_eq!(intern::lookup(tag), Some(in_one));
                prop_assert_eq!(one.tag_name(in_one), two.tag_name(in_two));
            }
        }
    }
}

/// The per-strategy work-counter protocol of [`EvalStats`]: every strategy
/// fills the counters that are meaningful for it and leaves the rest at
/// zero, exactly as the table in `xpeval-core/src/stats.rs` documents.
/// This is what makes the paper's complexity separations *observable*
/// through `QueryOutput::stats` without wall-clock timing — so the IR
/// executor must never silently stop filling one of these.
#[test]
fn work_counters_follow_the_per_strategy_protocol() {
    let mut rng = StdRng::seed_from_u64(7);
    let doc = random_tree_document(&mut rng, 400, &["a", "b", "c"]);
    let plan = CompiledQuery::compile("//a[child::b]/c").unwrap();
    let stats_for = |strategy| {
        plan.clone()
            .with_strategy(strategy)
            .run(&doc)
            .unwrap()
            .stats
    };

    // Context-value table: computed entries and the final table size.
    let cvt = stats_for(EvalStrategy::ContextValueTable);
    assert!(cvt.evaluations > 0, "{cvt:?}");
    assert!(cvt.step_context_evaluations > 0, "{cvt:?}");
    assert!(cvt.table_entries > 0, "{cvt:?}");
    assert_eq!(cvt.max_intermediate_list, 0, "{cvt:?}");

    // Naive re-evaluation: the exploding intermediate list is its witness;
    // it owns no table.
    let naive = stats_for(EvalStrategy::Naive);
    assert!(naive.evaluations > 0, "{naive:?}");
    assert!(naive.step_context_evaluations > 0, "{naive:?}");
    assert!(naive.max_intermediate_list > 0, "{naive:?}");
    assert_eq!(naive.table_entries, 0, "{naive:?}");
    assert_eq!(naive.cache_hits, 0, "{naive:?}");

    // Linear Core XPath: set-at-a-time, so counters are per *step*, not
    // per (step, node) — small numbers, but never zero.
    let linear = stats_for(EvalStrategy::CoreXPathLinear);
    assert!(linear.evaluations > 0, "{linear:?}");
    assert!(linear.step_context_evaluations > 0, "{linear:?}");
    assert_eq!(linear.cache_hits, 0, "{linear:?}");
    assert_eq!(linear.table_entries, 0, "{linear:?}");
    assert_eq!(linear.max_intermediate_list, 0, "{linear:?}");

    // Singleton-Success and its parallel fan-out: decision counts plus
    // memo-table hits (the LOGCFL checker memoizes heavily).
    for strategy in [
        EvalStrategy::SingletonSuccess,
        EvalStrategy::Parallel { threads: 2 },
    ] {
        let ss = stats_for(strategy);
        assert!(ss.evaluations > 0, "{strategy:?}: {ss:?}");
        assert!(ss.step_context_evaluations > 0, "{strategy:?}: {ss:?}");
        assert!(ss.cache_hits > 0, "{strategy:?}: {ss:?}");
        assert_eq!(ss.table_entries, 0, "{strategy:?}: {ss:?}");
        assert_eq!(ss.max_intermediate_list, 0, "{strategy:?}: {ss:?}");
    }

    // Eager storage: no strategy reports lazy residency (that gauge is
    // owned by the catalog's lazy backend, not the executor).
    for strategy in ALL_STRATEGIES {
        assert_eq!(stats_for(strategy).nodes_materialized, 0, "{strategy:?}");
    }

    // The DP memo table pays off on overlapping contexts: an ancestor
    // query revisits (subexpression, context) pairs, so CVT reports hits
    // where naive reports re-evaluations and list growth instead.
    let doc = parse_xml("<r><a><b/></a><a><b/></a><a><b/></a></r>").unwrap();
    let plan = CompiledQuery::compile("//b/ancestor::*[child::b]").unwrap();
    let cvt = plan
        .clone()
        .with_strategy(EvalStrategy::ContextValueTable)
        .run(&doc)
        .unwrap()
        .stats;
    assert!(cvt.cache_hits > 0, "{cvt:?}");
    let naive = plan
        .with_strategy(EvalStrategy::Naive)
        .run(&doc)
        .unwrap()
        .stats;
    assert!(
        naive.evaluations > cvt.evaluations,
        "naive {naive:?} vs cvt {cvt:?}"
    );
}
