//! Backend agreement: the lazy, snapshot and JSON tree-provider backends
//! produce exactly the eager `PreparedDocument` results, across all five
//! evaluation strategies and both query corpora — plus the snapshot
//! format's rejection guarantees (corruption, truncation, version skew)
//! and the lazy backend's materialization economy, witnessed through
//! `EvalStats::nodes_materialized`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xpeval::backends::{SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use xpeval::dom::serialize;
use xpeval::engine::Engine as CoreEngine;
use xpeval::prelude::*;
use xpeval::syntax::Expr;
use xpeval::workloads::{
    auction_site_document, core_xpath_query_corpus, pwf_query_corpus, random_pf_query,
    random_tree_document,
};

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// A node-id-free projection of a query value, so results can be compared
/// across backings whose arenas number nodes differently (lazy waves
/// renumber; everything else happens to agree, but nothing should depend
/// on it).
#[derive(Debug, Clone, PartialEq)]
enum Projected {
    /// `(name, string-value)` per node, in document order.
    Nodes(Vec<(Option<String>, String)>),
    Scalar(Value),
}

fn project(doc: &PreparedDocument, value: &Value) -> Projected {
    match value {
        Value::NodeSet(nodes) => Projected::Nodes(
            nodes
                .iter()
                .map(|&n| (doc.name(n).map(str::to_string), doc.string_value(n)))
                .collect(),
        ),
        other => Projected::Scalar(other.clone()),
    }
}

/// Evaluates `query` with a pinned strategy, projected for comparison.
fn run(
    strategy: EvalStrategy,
    doc: &PreparedDocument,
    query: &Expr,
) -> Result<Projected, EvalError> {
    CoreEngine::new(strategy)
        .evaluate_prepared(doc, query)
        .map(|v| project(doc, &v))
}

/// Asserts `backend` answers every (corpus query × strategy) pair exactly
/// as `eager` does — same value on success, an error whenever the eager
/// path errors (some strategies reject fragments outside their scope;
/// backends must not change *that* answer either).
fn assert_agreement(
    label: &str,
    eager: &PreparedDocument,
    backend: &PreparedDocument,
    corpus: &[(&str, Expr)],
) {
    for (name, query) in corpus {
        for strategy in ALL_STRATEGIES {
            match (run(strategy, eager, query), run(strategy, backend, query)) {
                (Ok(expected), Ok(got)) => {
                    assert_eq!(got, expected, "{label}: {name} under {strategy:?}")
                }
                (Err(_), Err(_)) => {}
                (expected, got) => panic!(
                    "{label}: {name} under {strategy:?}: eager {expected:?} vs backend {got:?}"
                ),
            }
        }
    }
}

type Corpus = Vec<(&'static str, Expr)>;

fn corpora() -> Vec<(&'static str, Document, Corpus)> {
    vec![
        (
            "random-tree/core-corpus",
            random_tree_document(
                &mut StdRng::seed_from_u64(7),
                400,
                &["a", "b", "c", "d", "root"],
            ),
            core_xpath_query_corpus(),
        ),
        (
            "auction/pwf-corpus",
            auction_site_document(&mut StdRng::seed_from_u64(11), 60),
            pwf_query_corpus(),
        ),
    ]
}

#[test]
fn lazy_backend_agrees_with_eager_on_both_corpora() {
    for (label, doc, corpus) in corpora() {
        let xml = serialize(&doc);
        let eager = PreparedDocument::new(doc);
        let lazy = LazyDocument::new(&xml).unwrap();
        // Fully materialized wave: same tree content, renumbered arena.
        let full = lazy.materialize_all().unwrap();
        assert_eq!(full.node_count(), lazy.total_nodes());
        assert_agreement(&format!("lazy/{label}"), &eager, &full, &corpus);
    }
}

#[test]
fn lazy_partial_waves_agree_on_the_queries_that_grew_them() {
    // A wave grown *for* a query answers that query exactly, even though
    // unrelated subtrees are still unmaterialized.
    let doc = auction_site_document(&mut StdRng::seed_from_u64(13), 80);
    let xml = serialize(&doc);
    let eager = PreparedDocument::new(doc);
    let lazy = LazyDocument::new(&xml).unwrap();
    for q in ["//person", "count(//bid)", "//item[child::bid]/name"] {
        let plan = CompiledQuery::compile(q).unwrap();
        let wave = lazy.materialize_for(plan.expr()).unwrap();
        assert!(
            wave.node_count() <= lazy.total_nodes(),
            "{q}: wave exceeds the document"
        );
        let got = project(&wave, &plan.run_prepared(&wave).unwrap().value);
        let expected = project(&eager, &plan.run_prepared(&eager).unwrap().value);
        assert_eq!(got, expected, "{q}");
    }
}

#[test]
fn snapshot_backend_agrees_with_eager_on_both_corpora() {
    for (label, doc, corpus) in corpora() {
        let eager = Arc::new(PreparedDocument::new(doc));
        let bytes = PreparedSnapshot::to_bytes(&eager);
        let snapshot = PreparedSnapshot::from_bytes(bytes).unwrap();
        let decoded = snapshot.document().unwrap();
        // The snapshot round-trip preserves node identity, so the raw
        // values (NodeIds included) must match, not just projections.
        for (name, query) in &corpus {
            let expected = CoreEngine::new(EvalStrategy::ContextValueTable)
                .evaluate_prepared(&eager, query)
                .unwrap();
            let got = CoreEngine::new(EvalStrategy::ContextValueTable)
                .evaluate_prepared(&decoded, query)
                .unwrap();
            assert_eq!(got, expected, "snapshot node identity: {name}");
        }
        assert_agreement(&format!("snapshot/{label}"), &eager, &decoded, &corpus);
    }
}

#[test]
fn json_backend_agrees_with_its_eager_xml_equivalent() {
    let json = r#"{
        "site": {
            "people": [
                {"name": "ann", "age": 34},
                {"name": "bob", "age": 27},
                {"name": "cyd"}
            ],
            "open": true,
            "items": [{"sku": "x1"}, {"sku": "x2"}]
        }
    }"#;
    let provided = JsonProvider::new(json).build_prepared().unwrap();
    // The eager equivalent: serialize the provided tree to XML and push it
    // through the ordinary parse + prepare pipeline.
    let eager = PreparedDocument::new(parse_xml(&serialize(&provided)).unwrap());
    let queries = [
        "count(//people)",
        "count(//name)",
        "//people[child::age]/name",
        "count(/descendant-or-self::*)",
        "//sku",
    ];
    let corpus: Vec<(&str, Expr)> = queries
        .iter()
        .map(|q| (*q, xpeval::syntax::parse_query(q).unwrap()))
        .collect();
    assert_agreement("json", &eager, &provided, &corpus);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random PF queries over random documents: the serialize → lazy and
    /// serialize → snapshot round trips answer exactly like the eager
    /// document they came from, under every strategy.
    #[test]
    fn random_queries_agree_across_backends(seed in 0u64..3000, len in 1usize..6, nodes in 5usize..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["a", "b", "c"]);
        let query = random_pf_query(&mut rng, len, &["a", "b", "c"]);
        let xml = serialize(&doc);
        let eager = PreparedDocument::new(doc);

        let lazy = LazyDocument::new(&xml).unwrap().materialize_all().unwrap();
        let snapshot = PreparedSnapshot::from_bytes(PreparedSnapshot::to_bytes(&eager))
            .unwrap()
            .document()
            .unwrap();

        for strategy in ALL_STRATEGIES {
            let expected = run(strategy, &eager, &query);
            let via_lazy = run(strategy, &lazy, &query);
            let via_snapshot = run(strategy, &snapshot, &query);
            match (&expected, &via_lazy, &via_snapshot) {
                (Ok(e), Ok(l), Ok(s)) => {
                    prop_assert_eq!(l, e, "lazy under {:?}", strategy);
                    prop_assert_eq!(s, e, "snapshot under {:?}", strategy);
                }
                (Err(_), Err(_), Err(_)) => {}
                other => prop_assert!(false, "split verdict under {:?}: {:?}", strategy, other),
            }
        }
    }

    /// Snapshot byte images survive the write → open round trip for any
    /// document shape, and a flipped byte anywhere in the payload is
    /// rejected at open.
    #[test]
    fn snapshot_roundtrip_and_corruption(seed in 0u64..2000, nodes in 2usize..80, victim in 0usize..1usize << 20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = random_tree_document(&mut rng, nodes, &["p", "q", "r"]);
        let eager = PreparedDocument::new(doc);
        let bytes = PreparedSnapshot::to_bytes(&eager);

        let reopened = PreparedSnapshot::from_bytes(bytes.clone()).unwrap();
        prop_assert_eq!(reopened.node_count(), eager.node_count());
        prop_assert_eq!(
            reopened.document().unwrap().elements_named("p").len(),
            eager.elements_named("p").len()
        );

        // Corrupt one payload byte; open must fail, never misread.
        let mut corrupt = bytes;
        let idx = SNAPSHOT_HEADER_LEN + victim % (corrupt.len() - SNAPSHOT_HEADER_LEN);
        corrupt[idx] ^= 0x40;
        prop_assert!(PreparedSnapshot::from_bytes(corrupt).is_err(), "flip at {}", idx);
    }
}

#[test]
fn snapshot_write_open_file_roundtrip() {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(17), 30);
    let eager = PreparedDocument::new(doc);
    let path =
        std::env::temp_dir().join(format!("xpeval-backends-test-{}.snap", std::process::id()));
    PreparedSnapshot::write(&eager, &path).unwrap();
    let snapshot = PreparedSnapshot::open(&path).unwrap();
    assert_eq!(snapshot.node_count(), eager.node_count());
    let plan = CompiledQuery::compile("count(//item)").unwrap();
    assert_eq!(
        plan.run_prepared(&snapshot.document().unwrap())
            .unwrap()
            .value,
        plan.run_prepared(&eager).unwrap().value,
    );
    std::fs::remove_file(&path).ok();
}

#[cfg(all(feature = "mmap", unix))]
#[test]
fn snapshot_mmap_open_agrees_with_read_open() {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(19), 30);
    let eager = PreparedDocument::new(doc);
    let path = std::env::temp_dir().join(format!(
        "xpeval-backends-mmap-test-{}.snap",
        std::process::id()
    ));
    PreparedSnapshot::write(&eager, &path).unwrap();
    let snapshot = PreparedSnapshot::open(&path).unwrap(); // maps under mmap
    let plan = CompiledQuery::compile("count(//person)").unwrap();
    assert_eq!(
        plan.run_prepared(&snapshot.document().unwrap())
            .unwrap()
            .value,
        plan.run_prepared(&eager).unwrap().value,
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_version_and_magic_skew_are_rejected() {
    let eager = PreparedDocument::new(parse_xml("<r><a/><b/></r>").unwrap());
    let bytes = PreparedSnapshot::to_bytes(&eager);

    // Version bump: a future-format image is refused with the version.
    let mut skewed = bytes.clone();
    skewed[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 9).to_le_bytes());
    match PreparedSnapshot::from_bytes(skewed) {
        Err(SnapshotError::UnsupportedVersion { found }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 9)
        }
        other => panic!("expected version rejection, got {other:?}"),
    }

    // Magic skew: not even recognized as a snapshot.
    let mut alien = bytes.clone();
    alien[..SNAPSHOT_MAGIC.len()].copy_from_slice(b"NOTASNAP");
    assert!(matches!(
        PreparedSnapshot::from_bytes(alien),
        Err(SnapshotError::BadMagic)
    ));

    // Truncation: every prefix shorter than the whole image is refused.
    for cut in [0, 7, SNAPSHOT_HEADER_LEN - 1, bytes.len() - 1] {
        assert!(
            PreparedSnapshot::from_bytes(bytes[..cut].to_vec()).is_err(),
            "truncation at {cut} accepted"
        );
    }
}

#[test]
fn lazy_targeted_query_materializes_under_half_the_document() {
    // The acceptance witness: on the ~9.6k-node auction document, the
    // first targeted query must materialize < 50% of the nodes, and the
    // catalog surfaces that number through EvalStats.
    let doc = auction_site_document(&mut StdRng::seed_from_u64(43), 600);
    let xml = serialize(&doc);
    let total = PreparedDocument::new(doc).node_count();

    let catalog = Catalog::new();
    catalog.insert_lazy("auction", &xml).unwrap();
    assert_eq!(catalog.backend_kind("auction"), Some(BackendKind::Lazy));

    let out = catalog.evaluate_on("auction", "count(//person)").unwrap();
    assert_eq!(out.value, Value::Number(600.0));
    let materialized = out.stats.nodes_materialized as usize;
    assert!(materialized > 0, "witness not stamped");
    assert!(
        materialized * 2 < total,
        "targeted query materialized {materialized} of {total} nodes"
    );

    // An eager entry never reports materialization.
    catalog.insert_xml("eager", &xml).unwrap();
    let out = catalog.evaluate_on("eager", "count(//person)").unwrap();
    assert_eq!(out.stats.nodes_materialized, 0);
}

#[test]
fn unsafe_audit_fast_and_portable_column_decodes_agree() {
    // The snapshot's only unsafe code is the aligned zero-copy u32 borrow
    // in `backends::bytes`.  Drive the fast path and the portable decode
    // over the same images — including deliberately misaligned views —
    // and require identical values; CI runs this under the unsafe-audit
    // job (or miri where available).
    use xpeval::backends::bytes::{as_u32s, decode_u32s, read_u32s};
    let mut rng = StdRng::seed_from_u64(23);
    for nodes in [2usize, 17, 120] {
        let doc = random_tree_document(&mut rng, nodes, &["a", "b"]);
        let image = PreparedSnapshot::to_bytes(&PreparedDocument::new(doc));
        let payload = &image[SNAPSHOT_HEADER_LEN..];
        let aligned = &payload[..payload.len() & !3];
        let portable = decode_u32s(aligned);
        assert_eq!(read_u32s(aligned), portable);
        if let Some(fast) = as_u32s(aligned) {
            assert_eq!(fast, portable.as_slice());
        }
        // A one-byte-shifted view must refuse the fast path or still
        // agree; either way the portable fallback is the meaning.
        let shifted = &payload[1..1 + ((payload.len() - 1) & !3)];
        if let Some(fast) = as_u32s(shifted) {
            assert_eq!(fast, decode_u32s(shifted).as_slice());
        }
    }
}
