//! The prepared-document index: interval-numbering invariants on random
//! trees, agreement of the indexed fast paths with the plain tree walks,
//! and the engine's prepared entry points.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xpeval::prelude::*;
use xpeval::workloads::{auction_site_document, random_tree_document};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Preorder interval invariants on random trees: each node's interval
    /// starts at its own preorder number, intervals nest exactly like the
    /// tree (disjoint or contained, never partially overlapping), and a
    /// child's interval lies strictly inside its parent's.
    #[test]
    fn interval_numbering_invariants(seed in 0u64..10_000, nodes in 2usize..80) {
        let doc = random_tree_document(
            &mut StdRng::seed_from_u64(seed),
            nodes,
            &["a", "b", "c"],
        );
        let p = PreparedDocument::new(doc);
        let all: Vec<NodeId> = p.document().all_nodes().collect();
        // Ordering keys are gapped (see KEY_STRIDE), not dense ranks: the
        // root's interval end bounds every other interval, the node count
        // does not.
        let (_, root_hi) = p.pre_interval(p.document().root());
        for &n in &all {
            let (lo, hi) = p.pre_interval(n);
            prop_assert_eq!(lo, p.document().pre(n));
            prop_assert!(lo < hi);
            prop_assert!(hi <= root_hi);
            if let Some(parent) = p.document().parent(n) {
                let (plo, phi) = p.pre_interval(parent);
                prop_assert!(plo < lo && hi <= phi, "child interval escapes parent");
            }
        }
        // Pre/post nesting: intervals of any two nodes are disjoint or
        // one contains the other, and containment matches ancestorship.
        for &a in &all {
            let (alo, ahi) = p.pre_interval(a);
            for &b in &all {
                if a == b {
                    continue;
                }
                let (blo, bhi) = p.pre_interval(b);
                let disjoint = ahi <= blo || bhi <= alo;
                let a_contains_b = alo < blo && bhi <= ahi;
                let b_contains_a = blo < alo && ahi <= bhi;
                prop_assert!(
                    disjoint || a_contains_b || b_contains_a,
                    "partial overlap between {:?} and {:?}", a, b
                );
                prop_assert_eq!(
                    a_contains_b,
                    p.document().is_ancestor_of(a, b),
                    "containment must equal ancestorship for {:?}/{:?}", a, b
                );
            }
        }
    }

    /// The indexed axis fast paths agree with the plain tree walks on
    /// random trees, for every node, every node test and every axis the
    /// index accelerates (descendant, child buckets, following/preceding
    /// interval complements).
    #[test]
    fn indexed_axis_steps_agree(seed in 0u64..10_000, nodes in 2usize..60) {
        let doc = random_tree_document(
            &mut StdRng::seed_from_u64(seed),
            nodes,
            &["a", "b", "c"],
        );
        let p = PreparedDocument::new(doc.clone());
        let tests = [
            NodeTest::name("a"),
            NodeTest::name("b"),
            NodeTest::name("c"),
            NodeTest::name("zzz"),
            NodeTest::Star,
            NodeTest::AnyNode,
            NodeTest::Text,
        ];
        for n in doc.all_nodes() {
            for test in &tests {
                for axis in [
                    Axis::Descendant,
                    Axis::DescendantOrSelf,
                    Axis::Child,
                    Axis::Following,
                    Axis::Preceding,
                ] {
                    prop_assert_eq!(
                        AxisSource::axis_step(&p, n, axis, test),
                        doc.axis_step(n, axis, test),
                        "{:?} {} {}", n, axis, test
                    );
                }
            }
        }
        // Name index vs full scan.
        for tag in ["a", "b", "c", "zzz"] {
            let scanned: Vec<NodeId> = doc
                .all_elements()
                .filter(|&n| doc.name(n) == Some(tag))
                .collect();
            prop_assert_eq!(p.elements_named(tag), scanned.as_slice());
        }
    }

    /// Positional child predicates (`[k]`, `[last()]` and the `position()`
    /// spellings) agree between the prepared fast path and the plain
    /// filtering semantics, on random trees and through full queries.
    #[test]
    fn positional_predicates_agree(
        seed in 0u64..10_000,
        nodes in 2usize..60,
        k in 1usize..5,
        tag_ix in 0usize..4,
    ) {
        let doc = random_tree_document(
            &mut StdRng::seed_from_u64(seed),
            nodes,
            &["a", "b", "c"],
        );
        let p = PreparedDocument::new(doc.clone());
        let test = ["a", "b", "*", "node()"][tag_ix];
        for pred in [
            format!("{k}"),
            "last()".to_string(),
            format!("position() = {k}"),
            "position() = last()".to_string(),
        ] {
            let src = format!("/descendant-or-self::node()/child::{test}[{pred}]");
            for strategy in [EvalStrategy::ContextValueTable, EvalStrategy::Naive] {
                let q = CompiledQuery::compile(&src).unwrap().with_strategy(strategy);
                let plain = q.run(&doc).unwrap().value;
                let fast = q.run_prepared(&p).unwrap().value;
                prop_assert_eq!(plain, fast, "{} with {:?}", src, strategy);
            }
        }
    }
}

#[test]
fn prepared_evaluation_agrees_across_strategies_on_a_real_workload() {
    let mut rng = StdRng::seed_from_u64(92);
    let doc = auction_site_document(&mut rng, 15);
    let prepared = PreparedDocument::new(doc.clone());
    for query in [
        "/descendant::item",
        "//item[child::bid]/name",
        "//seller",
        "/site/regions/europe/descendant::bid",
        "count(//person)",
        "//item[not(child::bid)]",
    ] {
        let q = CompiledQuery::compile(query).unwrap();
        let plain = q.run(&doc).unwrap().value;
        let fast = q.run_prepared(&prepared).unwrap().value;
        assert_eq!(plain, fast, "{query}");
    }
}

#[test]
fn engine_serves_prepared_documents_through_its_cache() {
    let mut rng = StdRng::seed_from_u64(93);
    let doc = Arc::new(auction_site_document(&mut rng, 8));
    let engine = Engine::builder().threads(2).build();

    let p1 = engine.prepare_keyed(93, &doc);
    let p2 = engine.prepare_keyed(93, &doc);
    assert!(Arc::ptr_eq(&p1, &p2), "preparation must be memoized");
    let stats = engine.document_cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));

    for query in ["//item", "count(//bid)", "//item[position() = 1]/name"] {
        let plain = engine.evaluate_str(&doc, query).unwrap();
        let fast = engine.evaluate_str_prepared(&p1, query).unwrap();
        assert_eq!(plain, fast, "{query}");
    }
}

#[test]
fn small_documents_get_the_sequential_plan_when_auto_selected() {
    let mut rng = StdRng::seed_from_u64(94);
    let doc = auction_site_document(&mut rng, 4); // far below PARALLEL_MIN_NODES
    let prepared = PreparedDocument::new(doc.clone());
    let q = CompiledQuery::compile("//item[position() = last()]").unwrap();
    assert!(matches!(q.strategy(), EvalStrategy::Parallel { .. }));
    assert_eq!(
        q.strategy_for(prepared.node_count()),
        EvalStrategy::SingletonSuccess,
        "document size must feed strategy selection"
    );
    // And the degraded plan still computes the same answer.
    assert_eq!(
        q.run_prepared(&prepared).unwrap().value,
        q.run(&doc).unwrap().value
    );
}
