//! Algebraic identities between the XPath axes, checked on random documents.
//!
//! The linear-time Core XPath evaluator and the reductions lean on these
//! identities (e.g. predicate evaluation through inverse axes, the
//! Corollary 3.3 replacement of `ancestor-or-self`), so they are verified
//! here independently of any evaluator, directly against the DOM axis
//! implementations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::dom::{Axis, Document, NodeId};
use xpeval::workloads::random_tree_document;

fn axis_set(doc: &Document, from: &[NodeId], axis: Axis) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = from.iter().flat_map(|&n| doc.axis_nodes(n, axis)).collect();
    doc.sort_document_order(&mut out);
    out
}

fn compose(doc: &Document, start: NodeId, axes: &[Axis]) -> Vec<NodeId> {
    let mut current = vec![start];
    for &axis in axes {
        current = axis_set(doc, &current, axis);
    }
    current
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// descendant = child / descendant-or-self.
    #[test]
    fn descendant_decomposition(seed in 0u64..10_000, nodes in 2usize..80) {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(seed), nodes, &["a", "b"]);
        for n in doc.all_nodes() {
            let direct = axis_set(&doc, &[n], Axis::Descendant);
            let composed = compose(&doc, n, &[Axis::Child, Axis::DescendantOrSelf]);
            prop_assert_eq!(direct, composed);
        }
    }

    /// ancestor = parent / ancestor-or-self.
    #[test]
    fn ancestor_decomposition(seed in 0u64..10_000, nodes in 2usize..80) {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(seed), nodes, &["a", "b"]);
        for n in doc.all_nodes() {
            let direct = axis_set(&doc, &[n], Axis::Ancestor);
            let composed = compose(&doc, n, &[Axis::Parent, Axis::AncestorOrSelf]);
            prop_assert_eq!(direct, composed);
        }
    }

    /// following = ancestor-or-self / following-sibling / descendant-or-self.
    #[test]
    fn following_decomposition(seed in 0u64..10_000, nodes in 2usize..80) {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(seed), nodes, &["a", "b", "c"]);
        for n in doc.all_nodes() {
            let direct = axis_set(&doc, &[n], Axis::Following);
            let composed = compose(
                &doc,
                n,
                &[Axis::AncestorOrSelf, Axis::FollowingSibling, Axis::DescendantOrSelf],
            );
            prop_assert_eq!(direct, composed);
        }
    }

    /// preceding = ancestor-or-self / preceding-sibling / descendant-or-self.
    #[test]
    fn preceding_decomposition(seed in 0u64..10_000, nodes in 2usize..80) {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(seed), nodes, &["a", "b", "c"]);
        for n in doc.all_nodes() {
            let direct = axis_set(&doc, &[n], Axis::Preceding);
            let composed = compose(
                &doc,
                n,
                &[Axis::AncestorOrSelf, Axis::PrecedingSibling, Axis::DescendantOrSelf],
            );
            prop_assert_eq!(direct, composed);
        }
    }

    /// The Corollary 3.3 identity restricted to the gate documents' shape is
    /// checked in the reductions crate; here the general inversion law
    /// m ∈ axis(n) ⇔ n ∈ axis⁻¹(m) is verified for every core axis.
    #[test]
    fn inverse_axes_are_converse_relations(seed in 0u64..10_000, nodes in 2usize..40) {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(seed), nodes, &["a", "b"]);
        let all: Vec<NodeId> = doc.all_nodes().collect();
        for axis in Axis::CORE {
            for &n in &all {
                for m in doc.axis_nodes(n, axis) {
                    prop_assert!(
                        doc.axis_nodes(m, axis.inverse()).contains(&n),
                        "axis {} not inverted at {:?}/{:?}", axis, n, m
                    );
                }
            }
        }
    }

    /// self ∪ ancestor ∪ descendant ∪ following ∪ preceding partitions the
    /// document (attribute nodes aside) — XPath 1.0 §2.2.
    #[test]
    fn five_way_partition(seed in 0u64..10_000, nodes in 2usize..60) {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(seed), nodes, &["a", "b", "c"]);
        for n in doc.all_nodes() {
            let mut parts: Vec<Vec<NodeId>> = vec![
                vec![n],
                doc.axis_nodes(n, Axis::Ancestor),
                doc.axis_nodes(n, Axis::Descendant),
                doc.axis_nodes(n, Axis::Following),
                doc.axis_nodes(n, Axis::Preceding),
            ];
            let mut union: Vec<NodeId> = parts.concat();
            doc.sort_document_order(&mut union);
            prop_assert_eq!(union.len(), doc.len(), "union misses nodes at {:?}", n);
            // Pairwise disjoint.
            let total: usize = parts.iter_mut().map(|p| p.len()).sum();
            prop_assert_eq!(total, doc.len(), "parts overlap at {:?}", n);
        }
    }
}
