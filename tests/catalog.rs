//! Integration tests for the document catalog: the 8-thread
//! insert/replace/evict/evaluate stress test (generation bumps must
//! invalidate stale artifacts, accounting must balance), and the headline
//! property that catalog fan-out results are exactly the per-document
//! `evaluate_prepared` results, across all five strategies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use xpeval::prelude::*;
use xpeval::workloads::{core_xpath_query_corpus, pwf_query_corpus, random_tree_document};

const ALL_STRATEGIES: [EvalStrategy; 5] = [
    EvalStrategy::ContextValueTable,
    EvalStrategy::Naive,
    EvalStrategy::CoreXPathLinear,
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::SingletonSuccess,
];

/// A document whose `count(//x)` is exactly `n` — the marker the stress
/// test uses to tie an observed result back to some inserted generation.
fn marked_xml(n: u64) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..n {
        xml.push_str("<x/>");
    }
    xml.push_str("</r>");
    xml
}

#[test]
fn concurrent_insert_replace_evict_evaluate_stress() {
    const THREADS: usize = 8;
    const ITERS: usize = 150;
    const NAMES: usize = 12;
    const CAPACITY: usize = 8; // < NAMES, so eviction is exercised

    let catalog = Catalog::builder()
        .capacity(CAPACITY)
        .artifact_capacity(64)
        .build();
    // Every count ever inserted under a name, logged *before* the insert:
    // any count an evaluation observes must already be in the log.
    let log: Mutex<HashMap<String, HashSet<u64>>> = Mutex::new(HashMap::new());
    let next_marker = AtomicU64::new(1);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let catalog = catalog.clone();
            let log = &log;
            let next_marker = &next_marker;
            scope.spawn(move || {
                for i in 0..ITERS {
                    let name = format!("doc-{}", (t * 7 + i) % NAMES);
                    match i % 5 {
                        // Insert or replace with a fresh marker.
                        0 | 1 => {
                            let marker = next_marker.fetch_add(1, Ordering::Relaxed);
                            log.lock()
                                .unwrap()
                                .entry(name.clone())
                                .or_default()
                                .insert(marker);
                            catalog.insert_xml(&name, &marked_xml(marker)).unwrap();
                        }
                        // Evaluate by name; the observed count must have
                        // been inserted under this name at some point.
                        2 | 3 => match catalog.evaluate_on(&name, "count(//x)") {
                            Ok(out) => {
                                let Value::Number(n) = out.value else {
                                    panic!("count() must be a number")
                                };
                                assert!(
                                    log.lock().unwrap()[&name].contains(&(n as u64)),
                                    "{name} returned count {n} that was never inserted"
                                );
                            }
                            Err(CatalogError::UnknownDocument { .. }) => {}
                            Err(e) => panic!("unexpected error: {e}"),
                        },
                        // Fan out / remove, occasionally.
                        _ => {
                            if i % 20 == 4 {
                                catalog.remove(&name);
                            } else {
                                for f in catalog.evaluate_matching("doc-*", "count(//x)") {
                                    let out = f.result.expect("fan-out over live entries");
                                    let Value::Number(n) = out.value else {
                                        panic!("count() must be a number")
                                    };
                                    assert!(
                                        log.lock().unwrap()[&f.name].contains(&(n as u64)),
                                        "{} returned count {n} never inserted",
                                        f.name
                                    );
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    // Accounting balances after the storm.
    let stats = catalog.stats();
    assert!(stats.documents <= CAPACITY, "{stats}");
    assert_eq!(
        stats.documents as u64,
        stats.inserts - stats.removals - stats.evictions,
        "{stats}"
    );
    assert_eq!(
        stats.evaluations,
        stats.artifact_hits + stats.artifact_misses,
        "every evaluation is exactly one artifact lookup: {stats}"
    );
    assert!(stats.replacements > 0, "{stats}");
    assert!(stats.evictions > 0, "{stats}");
    assert!(stats.artifact_invalidations > 0, "{stats}");
    assert!(stats.artifact_len <= 64, "{stats}");

    // And the store is still fully functional.
    catalog.insert_xml("after", &marked_xml(3)).unwrap();
    assert_eq!(
        catalog.evaluate_on("after", "count(//x)").unwrap().value,
        Value::Number(3.0)
    );
}

#[test]
fn generation_bump_invalidates_stale_artifacts_deterministically() {
    let catalog = Catalog::new();
    catalog.insert_xml("d", &marked_xml(2)).unwrap();
    catalog.insert_xml("other", &marked_xml(7)).unwrap();

    // Build and then hit the artifact for (count(//x), d, gen 1).
    for _ in 0..3 {
        assert_eq!(
            catalog.evaluate_on("d", "count(//x)").unwrap().value,
            Value::Number(2.0)
        );
    }
    let before = catalog.stats();
    assert_eq!(before.artifact_hits, 2, "{before}");

    // Replace: the very next evaluation must see the new generation —
    // a stale artifact would keep answering 2.
    catalog.insert_xml("d", &marked_xml(5)).unwrap();
    assert_eq!(catalog.generation("d"), Some(2));
    assert_eq!(
        catalog.evaluate_on("d", "count(//x)").unwrap().value,
        Value::Number(5.0)
    );
    let after = catalog.stats();
    assert!(
        after.artifact_invalidations > before.artifact_invalidations,
        "{after}"
    );

    // The untouched document's artifact survived: its next evaluation is
    // a hit, not a rebuild.
    catalog.evaluate_on("other", "count(//x)").unwrap();
    let misses_before = catalog.stats().artifact_misses;
    catalog.evaluate_on("other", "count(//x)").unwrap();
    assert_eq!(catalog.stats().artifact_misses, misses_before);
}

/// Catalog fan-out must agree with direct per-document evaluation, for
/// every strategy (including per-strategy errors: a query outside a
/// fixed strategy's fragment fails identically on both paths).
fn assert_fanout_matches_prepared(documents: &[(String, Document)], queries: &[String]) {
    for strategy in ALL_STRATEGIES {
        let engine = Engine::builder().strategy(strategy).threads(2).build();
        let catalog = Catalog::builder().engine(engine.clone()).build();
        let mut prepared: Vec<(String, PreparedDocument)> = Vec::new();
        for (name, doc) in documents {
            catalog.insert_document(name, doc.clone());
            prepared.push((name.clone(), PreparedDocument::new(doc.clone())));
        }
        prepared.sort_by(|a, b| a.0.cmp(&b.0));

        for source in queries {
            let reference: Vec<Result<Value, EvalError>> = prepared
                .iter()
                .map(|(_, p)| {
                    engine
                        .compile(source)
                        .and_then(|plan| plan.run_prepared(p))
                        .map(|out| out.value)
                })
                .collect();
            let fanned = catalog.evaluate_on_all(source);
            assert_eq!(fanned.len(), reference.len());
            for (f, r) in fanned.iter().zip(&reference) {
                match (&f.result, r) {
                    (Ok(out), Ok(value)) => {
                        assert_eq!(&out.value, value, "{source} on {} ({strategy:?})", f.name)
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{source} on {} ({strategy:?})", f.name)
                    }
                    (got, want) => panic!(
                        "{source} on {} ({strategy:?}): catalog {got:?} vs prepared {want:?}",
                        f.name
                    ),
                }
            }
        }
    }
}

#[test]
fn fanout_equals_prepared_on_the_corpora() {
    let mut rng = StdRng::seed_from_u64(2003);
    let documents: Vec<(String, Document)> = (0..4)
        .map(|i| {
            (
                format!("doc-{i}"),
                random_tree_document(&mut rng, 40 + 10 * i, &["a", "b", "c", "d"]),
            )
        })
        .collect();
    // The corpus pairs are (label, expr); the canonical printed form of
    // the expr is the query source the catalog compiles.
    let queries: Vec<String> = core_xpath_query_corpus()
        .into_iter()
        .chain(pwf_query_corpus())
        .map(|(_label, e)| e.to_string())
        .collect();
    assert_fanout_matches_prepared(&documents, &queries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random document populations × representative queries × all five
    /// strategies: fan-out ≡ per-document evaluate_prepared.
    #[test]
    fn fanout_equals_prepared_on_random_trees(seed in 0u64..10_000, docs in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let documents: Vec<(String, Document)> = (0..docs)
            .map(|i| {
                (
                    format!("doc-{i}"),
                    random_tree_document(&mut rng, 10 + 15 * i, &["a", "b", "c"]),
                )
            })
            .collect();
        let queries: Vec<String> = [
            "//a",
            "/r/a/b",
            "//a[child::b]/c",
            "//b[not(child::a)]",
            "count(//c)",
            "//a | //missing",
            "//missing",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_fanout_matches_prepared(&documents, &queries);
    }
}

#[test]
fn artifact_fast_path_agrees_on_absent_tags() {
    // The zero-candidate-bound shortcut must be invisible: same value,
    // same type, as the full evaluation.
    let catalog = Catalog::new();
    catalog.insert_xml("d", "<r><a/><a/></r>").unwrap();
    for query in ["//zzz", "//zzz | //a", "/r/zzz", "//a/zzz"] {
        let through_catalog = catalog.evaluate_on("d", query).unwrap().value;
        let direct = CompiledQuery::compile(query)
            .unwrap()
            .run_prepared(&catalog.get("d").unwrap())
            .unwrap()
            .value;
        assert_eq!(through_catalog, direct, "{query}");
    }
}

#[test]
fn concurrent_mutate_query_replace_storm() {
    // 8 threads: 4 mutators each owning a live document, 2 readers
    // hammering every name, 2 churners replacing (and re-querying) a
    // shared document.  Edits publish whole snapshots under the store
    // lock, so a reader must never see a torn document, and the count it
    // observes on a live document must be non-decreasing (only its owner
    // edits it, one <x/> per edit).
    const MUTATORS: usize = 4;
    const EDITS: usize = 100;

    let catalog = Catalog::builder()
        .capacity(32) // > all names: no eviction of live documents
        .artifact_capacity(128)
        .build();
    for t in 0..MUTATORS {
        catalog.insert_xml(&format!("live-{t}"), "<r></r>").unwrap();
    }
    catalog.insert_xml("churn", &marked_xml(0)).unwrap();
    let churn_log: Mutex<HashSet<u64>> = Mutex::new([0].into_iter().collect());
    let next_marker = AtomicU64::new(1);

    std::thread::scope(|scope| {
        for t in 0..MUTATORS {
            let catalog = catalog.clone();
            scope.spawn(move || {
                let name = format!("live-{t}");
                let frag = parse_xml("<x/>").unwrap();
                for i in 0..EDITS {
                    let outcome = catalog
                        .mutate_named(&name, |live| {
                            let r = live.elements_named("r")[0];
                            live.insert_subtree(r, 0, &frag)
                        })
                        .unwrap();
                    outcome.value.unwrap();
                    // Only this thread edits the document, so revisions
                    // march in lockstep with its own edit count.
                    assert_eq!(outcome.revision, i as u64 + 1, "{name}");
                }
            });
        }
        for _ in 0..2 {
            let catalog = catalog.clone();
            scope.spawn(move || {
                let mut last = [0f64; MUTATORS];
                for i in 0..400 {
                    let t = i % MUTATORS;
                    let out = catalog
                        .evaluate_on(&format!("live-{t}"), "count(//x)")
                        .unwrap();
                    let Value::Number(n) = out.value else {
                        panic!("count() must be a number")
                    };
                    assert!(
                        n >= last[t],
                        "live-{t} went backwards: {n} after {}",
                        last[t]
                    );
                    last[t] = n;
                }
            });
        }
        for _ in 0..2 {
            let catalog = catalog.clone();
            let churn_log = &churn_log;
            let next_marker = &next_marker;
            scope.spawn(move || {
                for _ in 0..EDITS {
                    let marker = next_marker.fetch_add(1, Ordering::Relaxed);
                    churn_log.lock().unwrap().insert(marker);
                    catalog.insert_xml("churn", &marked_xml(marker)).unwrap();
                    let out = catalog.evaluate_on("churn", "count(//x)").unwrap();
                    let Value::Number(n) = out.value else {
                        panic!("count() must be a number")
                    };
                    assert!(
                        churn_log.lock().unwrap().contains(&(n as u64)),
                        "churn returned count {n} that was never inserted"
                    );
                }
            });
        }
    });

    // Every mutator's edits landed exactly once.
    for t in 0..MUTATORS {
        let name = format!("live-{t}");
        assert_eq!(
            catalog.evaluate_on(&name, "count(//x)").unwrap().value,
            Value::Number(EDITS as f64)
        );
        assert_eq!(catalog.revision(&name), Some(EDITS as u64));
        assert_eq!(
            catalog.generation(&name),
            Some(1),
            "edits are not replacements"
        );
    }
    let stats = catalog.stats();
    assert_eq!(stats.mutations, (MUTATORS * EDITS) as u64, "{stats}");
    assert!(stats.replacements >= 2 * EDITS as u64, "{stats}");
    assert_eq!(
        stats.evaluations,
        stats.artifact_hits + stats.artifact_misses,
        "{stats}"
    );
}

/// Bound evaluation through the catalog: one query string, many `$name`
/// parameterizations — every re-binding is an artifact hit, never a
/// recompile, because artifact keys stay binding-independent.
#[test]
fn bound_evaluation_reuses_binding_independent_artifacts() {
    let catalog = Catalog::new();
    catalog
        .insert_xml("inv", "<inv><item n='1'/><item n='2'/><item n='3'/></inv>")
        .unwrap();
    let query = "count(//item[@n = $n])";
    for n in 1..=3 {
        let b = Bindings::new().with_number("n", n as f64);
        let out = catalog.evaluate_on_bound("inv", query, &b).unwrap();
        assert_eq!(out.value, Value::Number(1.0), "n = {n}");
    }
    let s = catalog.stats();
    assert_eq!(s.artifact_misses, 1, "{s}");
    assert_eq!(s.artifact_hits, 2, "{s}");

    // The unbound entry point reports the missing binding by name.
    let err = catalog.evaluate_on("inv", query).unwrap_err();
    assert!(
        matches!(&err, CatalogError::Eval(EvalError::UnboundVariable { name }) if name == "n"),
        "{err:?}"
    );

    // Fan-out shares one binding set across every matching document.
    catalog
        .insert_xml("inv2", "<inv><item n='2'/></inv>")
        .unwrap();
    let b = Bindings::new().with_number("n", 2.0);
    let outs = catalog.evaluate_matching_bound("inv*", query, &b);
    assert_eq!(outs.len(), 2);
    for fan in &outs {
        assert_eq!(
            fan.result.as_ref().unwrap().value,
            Value::Number(1.0),
            "{}",
            fan.name
        );
    }
}
