//! Property tests for the hardness reductions: the generated (document,
//! query) pairs answer exactly the source problem, for random instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use xpeval::circuits::{random_monotone_circuit, random_sac1_circuit};
use xpeval::engine::{CoreXPathEvaluator, DpEvaluator};
use xpeval::reductions::{
    circuit_to_core_xpath, circuit_to_iterated_pwf, reachability_to_pf, sac1_to_positive_core,
    DirectedGraph,
};
use xpeval::syntax::{classify, Fragment};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 3.2: query non-empty ⇔ monotone circuit evaluates to true.
    #[test]
    fn theorem_3_2(seed in 0u64..10_000, gates in 2usize..12, restricted in any::<bool>()) {
        let (circuit, inputs) = random_monotone_circuit(&mut StdRng::seed_from_u64(seed), 4, gates);
        let expected = circuit.evaluate(&inputs).unwrap();
        let red = circuit_to_core_xpath(&circuit, &inputs, restricted).unwrap();
        let result = CoreXPathEvaluator::new(&red.document).evaluate_query(&red.query).unwrap();
        prop_assert_eq!(!result.is_empty(), expected);
        // The query stays inside Core XPath and the tree stays shallow.
        prop_assert!(classify(&red.query).fragment <= Fragment::CoreXPath);
        prop_assert!(red.document.height() <= 4);
    }

    /// Theorem 4.2: the negation-free query answers the SAC¹ circuit value.
    #[test]
    fn theorem_4_2(seed in 0u64..10_000, gates in 2usize..7) {
        let (sac, inputs) = random_sac1_circuit(&mut StdRng::seed_from_u64(seed), 4, gates);
        let expected = sac.evaluate(&inputs).unwrap();
        let red = sac1_to_positive_core(&sac, &inputs).unwrap();
        let result = CoreXPathEvaluator::new(&red.document).evaluate_query(&red.query).unwrap();
        prop_assert_eq!(!result.is_empty(), expected);
        prop_assert!(classify(&red.query).fragment <= Fragment::PositiveCoreXPath);
    }

    /// Theorem 5.7: the iterated-predicate query agrees with the circuit.
    #[test]
    fn theorem_5_7(seed in 0u64..10_000, gates in 2usize..8) {
        let (circuit, inputs) = random_monotone_circuit(&mut StdRng::seed_from_u64(seed), 3, gates);
        let expected = circuit.evaluate(&inputs).unwrap();
        let red = circuit_to_iterated_pwf(&circuit, &inputs).unwrap();
        let value = DpEvaluator::new(&red.document, &red.query).evaluate().unwrap();
        prop_assert_eq!(!value.expect_nodes().is_empty(), expected);
        // No negation is used; predicate sequences have length exactly 2.
        let feats = xpeval::syntax::fragment::features(&red.query);
        prop_assert_eq!(feats.negation_count, 0);
        prop_assert_eq!(feats.max_predicate_sequence, 2);
    }

    /// Theorem 4.3: the PF query answers reachability on random digraphs.
    #[test]
    fn theorem_4_3(seed in 0u64..10_000, n in 2usize..7, density in 0.05f64..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = DirectedGraph::new(n);
        for u in 1..=n {
            for t in 1..=n {
                if u != t && rng.gen_bool(density) {
                    graph.add_edge(u, t);
                }
            }
        }
        let source = rng.gen_range(1..=n);
        let target = rng.gen_range(1..=n);
        let red = reachability_to_pf(&graph, source, target);
        let result = CoreXPathEvaluator::new(&red.document).evaluate_query(&red.query).unwrap();
        prop_assert_eq!(!result.is_empty(), graph.reachable(source, target));
        prop_assert_eq!(classify(&red.query).fragment, Fragment::PF);
    }

    /// The two circuit encodings (Theorem 3.2 with negation, Theorem 5.7
    /// with iterated predicates) always agree with each other.
    #[test]
    fn encodings_agree(seed in 0u64..10_000, gates in 2usize..7) {
        let (circuit, inputs) = random_monotone_circuit(&mut StdRng::seed_from_u64(seed), 3, gates);
        let core = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
        let iterated = circuit_to_iterated_pwf(&circuit, &inputs).unwrap();
        let a = !CoreXPathEvaluator::new(&core.document).evaluate_query(&core.query).unwrap().is_empty();
        let b = !DpEvaluator::new(&iterated.document, &iterated.query)
            .evaluate()
            .unwrap()
            .expect_nodes()
            .is_empty();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn reductions_select_only_the_result_node() {
    // Whenever the circuit is true, the query selects exactly the R-labeled
    // gate node, nothing else.
    let (circuit, mut inputs) = random_monotone_circuit(&mut StdRng::seed_from_u64(7), 4, 9);
    // Force all inputs true to make "true" likely for a monotone circuit.
    inputs.iter_mut().for_each(|b| *b = true);
    let expected = circuit.evaluate(&inputs).unwrap();
    let red = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
    let result = CoreXPathEvaluator::new(&red.document)
        .evaluate_query(&red.query)
        .unwrap();
    if expected {
        assert_eq!(result, vec![red.result_node]);
    } else {
        assert!(result.is_empty());
    }
}
