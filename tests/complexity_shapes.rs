//! Deterministic "shape" checks of the complexity claims, using the
//! evaluators' work counters instead of wall-clock time so they are stable
//! under CI load.
//!
//! * combined complexity: naive work grows geometrically on the blow-up
//!   family, context-value-table work grows linearly (paper Section 1 /
//!   Proposition 2.7) — experiment E2;
//! * data complexity: for a fixed query, the DP evaluator's table size grows
//!   linearly in |D| (Theorem 7.2) — experiment E10;
//! * query complexity: for a fixed document, the DP evaluator's work grows
//!   linearly in |Q| for PF chains (Theorem 7.3) — experiment E11.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::engine::{DpEvaluator, NaiveEvaluator};
use xpeval::workloads::{blowup_document, blowup_query, oscillating_query, random_tree_document};

#[test]
fn naive_work_is_geometric_and_dp_work_is_linear() {
    let fan_out = 3usize;
    let doc = blowup_document(fan_out);
    let mut naive_lists = Vec::new();
    let mut dp_work = Vec::new();
    for reps in 1..=6 {
        let query = blowup_query(reps);
        let mut naive = NaiveEvaluator::new(&doc);
        naive.evaluate(&query).unwrap();
        naive_lists.push(naive.stats().max_intermediate_list);
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        dp_work.push(dp.stats().step_context_evaluations);
    }
    // Naive: the intermediate list multiplies by the fan-out each repetition
    // (from repetition 2 onwards, once the k^m term dominates).
    for w in naive_lists.windows(2).skip(1) {
        assert_eq!(w[1], w[0] * fan_out, "naive lists: {naive_lists:?}");
    }
    // DP: constant extra work per repetition.
    let deltas: Vec<u64> = dp_work.windows(2).map(|w| w[1] - w[0]).collect();
    for d in &deltas {
        assert_eq!(*d, deltas[0], "dp work increments: {deltas:?}");
    }
    assert!(deltas[0] as usize <= 2 * fan_out + 2);
}

#[test]
fn data_complexity_tables_grow_linearly_in_document_size() {
    let query = xpeval::syntax::parse_query("//a[descendant::c and not(child::b)]").unwrap();
    let mut entries = Vec::new();
    let sizes = [200usize, 400, 800];
    for &nodes in &sizes {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(10), nodes, &["a", "b", "c"]);
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        entries.push(dp.table_entries());
    }
    // Doubling the document should roughly double the number of table
    // entries; allow generous slack (factor in [1.3, 3]).
    for w in entries.windows(2) {
        let ratio = w[1] as f64 / w[0] as f64;
        assert!(ratio > 1.3 && ratio < 3.0, "table growth {entries:?}");
    }
}

#[test]
fn query_complexity_work_grows_linearly_in_query_size() {
    let doc = random_tree_document(&mut StdRng::seed_from_u64(11), 300, &["a", "b", "c"]);
    let mut work = Vec::new();
    let lens = [8usize, 16, 32, 64];
    for &len in &lens {
        let query = oscillating_query(len);
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        work.push(dp.stats().step_context_evaluations as f64);
    }
    // Doubling |Q| should scale the work by roughly 2 (within [1.2, 3.5]).
    for w in work.windows(2) {
        let ratio = w[1] / w[0];
        assert!(ratio > 1.2 && ratio < 3.5, "work growth {work:?}");
    }
}

#[test]
fn memoization_beats_naive_on_every_blowup_instance() {
    let doc = blowup_document(4);
    for reps in 3..=7 {
        let query = blowup_query(reps);
        let mut naive = NaiveEvaluator::new(&doc);
        naive.evaluate(&query).unwrap();
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        assert!(
            dp.stats().step_context_evaluations < naive.stats().step_context_evaluations,
            "reps={reps}"
        );
    }
}
