//! End-to-end scenarios exercising the public facade exactly as the README
//! and the examples present it.

use xpeval::prelude::*;

const CATALOG: &str = r#"<catalog>
  <product sku="X-1" category="tools"><name>Hammer</name><price>12</price><review rating="5"/><review rating="3"/></product>
  <product sku="X-2" category="tools"><name>Screwdriver</name><price>7</price><review rating="4"/></product>
  <product sku="Y-9" category="garden"><name>Rake</name><price>23</price><discontinued/></product>
  <product sku="Y-3" category="garden"><name>Shears</name><price>31</price><review rating="2"/><review rating="5"/><review rating="4"/></product>
</catalog>"#;

#[test]
fn catalog_queries_through_the_facade() {
    let doc = parse_xml(CATALOG).unwrap();
    let engine = Engine::new(EvalStrategy::ContextValueTable);

    // Node-set query.
    let names = engine
        .evaluate_str(&doc, "//product[@category = 'tools']/name")
        .unwrap();
    let names: Vec<String> = names
        .expect_nodes()
        .iter()
        .map(|&n| doc.string_value(n))
        .collect();
    assert_eq!(names, vec!["Hammer", "Screwdriver"]);

    // Scalar queries.
    assert_eq!(
        engine.evaluate_str(&doc, "count(//product)").unwrap(),
        Value::Number(4.0)
    );
    assert_eq!(
        engine
            .evaluate_str(&doc, "string(//product[not(review)]/name)")
            .unwrap(),
        Value::Str("Rake".into())
    );
    assert_eq!(
        engine
            .evaluate_str(&doc, "count(//product[review/@rating > 4])")
            .unwrap(),
        Value::Number(2.0)
    );

    // Positional pWF query.
    let last_garden = engine
        .evaluate_str(
            &doc,
            "//product[@category = 'garden'][position() = last()]/name",
        )
        .unwrap();
    assert_eq!(doc.string_value(last_garden.expect_nodes()[0]), "Shears");
}

#[test]
fn classification_guides_engine_choice() {
    let doc = parse_xml(CATALOG).unwrap();
    let cases = [
        ("/catalog/product/name", Fragment::PF, 4usize),
        (
            "//product[review and not(discontinued)]",
            Fragment::CoreXPath,
            3,
        ),
        ("//product[position() = last()]", Fragment::PWF, 1),
        ("//product[starts-with(@sku, 'X-')]", Fragment::PXPath, 2),
    ];
    for (src, expected_fragment, expected_count) in cases {
        let query = parse_query(src).unwrap();
        let report = xpeval::syntax::classify(&query);
        assert_eq!(report.fragment, expected_fragment, "{src}");

        // The recommended engine must produce the same answer as the DP
        // reference engine.
        let reference = Engine::new(EvalStrategy::ContextValueTable)
            .evaluate(&doc, &query)
            .unwrap();
        let recommended = Engine::recommended_for(&query, 2)
            .evaluate(&doc, &query)
            .unwrap();
        assert_eq!(reference, recommended, "{src}");
        assert_eq!(reference.expect_nodes().len(), expected_count, "{src}");
    }
}

#[test]
fn full_xpath_queries_fall_back_to_the_dp_engine() {
    let doc = parse_xml(CATALOG).unwrap();
    let query = parse_query("//product[count(review) = 3]/name").unwrap();
    let report = xpeval::syntax::classify(&query);
    assert_eq!(report.fragment, Fragment::XPath);
    let engine = Engine::recommended_for(&query, 2);
    assert_eq!(engine.strategy(), EvalStrategy::ContextValueTable);
    let v = engine.evaluate(&doc, &query).unwrap();
    assert_eq!(doc.string_value(v.expect_nodes()[0]), "Shears");
}

#[test]
fn singleton_success_answers_membership_without_materializing() {
    use xpeval::engine::{Context, SingletonSuccess, SuccessTarget};
    let doc = parse_xml(CATALOG).unwrap();
    let query = parse_query("//product[review/@rating > 4]/name").unwrap();
    let checker = SingletonSuccess::new(&doc, &query).unwrap();
    let ctx = Context::root(&doc);

    let hammer_name = doc
        .all_elements()
        .find(|&n| doc.name(n) == Some("name") && doc.string_value(n) == "Hammer")
        .unwrap();
    let rake_name = doc
        .all_elements()
        .find(|&n| doc.name(n) == Some("name") && doc.string_value(n) == "Rake")
        .unwrap();
    assert!(checker
        .decide(ctx, &SuccessTarget::Node(hammer_name))
        .unwrap());
    assert!(!checker
        .decide(ctx, &SuccessTarget::Node(rake_name))
        .unwrap());
}

#[test]
fn error_paths_are_reported_not_panicked() {
    let doc = parse_xml(CATALOG).unwrap();
    let engine = Engine::default();
    assert!(engine.evaluate_str(&doc, "//product[").is_err());
    assert!(engine.evaluate_str(&doc, "unknown-function(1)").is_err());
    assert!(parse_xml("<a><b></a>").is_err());
    let core_only = Engine::new(EvalStrategy::CoreXPathLinear);
    assert!(core_only.evaluate_str(&doc, "//product[1]").is_err());
}
