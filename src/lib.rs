//! # xpeval — The Complexity of XPath Query Evaluation, reproduced in Rust
//!
//! This facade crate re-exports the public API of the workspace crates that
//! together reproduce *"The Complexity of XPath Query Evaluation"*
//! (Gottlob, Koch, Pichler; PODS 2003):
//!
//! * [`dom`] — the XML document tree substrate (arena tree, axes, document
//!   order, parsing, serialization),
//! * [`syntax`] — the XPath 1.0 lexer/parser/AST and the fragment classifier
//!   of Figure 1 (PF, positive Core XPath, Core XPath, WF, pWF, pXPath),
//! * [`engine`] — the compile-once query pipeline and the evaluation
//!   engines: the context-value-table dynamic-programming evaluator, the
//!   naive exponential baseline, the linear-time Core XPath evaluator, the
//!   parallel LOGCFL-fragment evaluator, and the Singleton-Success decision
//!   procedure of Lemma 5.4,
//! * [`obs`] — the telemetry layer: a dependency-free metrics registry
//!   (counters, gauges, log2-bucketed latency histograms with
//!   p50/p90/p99), sampled per-opcode query traces, the
//!   [`MetricSource`](obs::MetricSource) protocol unifying the
//!   workspace's `*Stats` structs, and
//!   Prometheus/JSON exporters (see `docs/observability.md`),
//! * [`circuits`] — monotone and SAC¹ boolean circuits with the layered
//!   serialization of Figure 3,
//! * [`reductions`] — the reductions of Theorems 3.2, 4.2, 4.3 and 5.7,
//! * [`catalog`] — the named multi-document store: stable
//!   [`DocId`](catalog::DocId)s, generation counters, LRU eviction, and
//!   the (query × document) plan-artifact cache behind
//!   [`Catalog`](catalog::Catalog) fan-out evaluation,
//! * [`serve`] — the async serving layer: a worker-pool executor with a
//!   bounded submission queue ([`AsyncEngine`](serve::AsyncEngine)),
//!   per-submission deadlines, and catalog-named submission,
//! * [`workloads`] — synthetic document/query/graph generators used by the
//!   benchmark harness and the examples.
//!
//! ## Quickstart: compile once, evaluate many
//!
//! The paper splits evaluation cost into per-query analysis (parse,
//! classify into the Figure 1 fragment lattice, pick the algorithm whose
//! complexity bound fits) and per-document evaluation.  The API mirrors
//! that: [`CompiledQuery`](engine::CompiledQuery) is the per-query half,
//! document-independent and
//! reusable; running it is the per-document half.
//!
//! ```
//! use xpeval::prelude::*;
//!
//! // Per-query work, done once — no document in sight.
//! let query = CompiledQuery::compile("/descendant-or-self::book[child::title]").unwrap();
//! assert_eq!(query.fragment(), Fragment::PositiveCoreXPath);   // Figure 1
//! assert_eq!(query.strategy(), EvalStrategy::CoreXPathLinear); // Prop. 2.7 plan
//!
//! // Per-document work, repeated at will.
//! let doc = parse_xml("<lib><book year='2003'><title>XPath</title></book></lib>").unwrap();
//! let out = query.run(&doc).unwrap();
//! assert_eq!(out.value.expect_nodes().len(), 1);
//! ```
//!
//! ## Prepare once, evaluate many
//!
//! The document side mirrors the query side: a
//! [`PreparedDocument`](dom::PreparedDocument) is
//! built once per document and carries axis indexes — tag-name lists,
//! per-parent tag buckets, preorder subtree intervals (and their
//! following/preceding complements), sibling-position tables — that every
//! evaluation strategy consumes through the [`dom::AxisSource`] trait.
//! Name tests on the child, descendant, following and preceding axes and
//! positional child predicates (`[k]`, `[last()]`) are answered from the
//! indexes; tag selectivity additionally feeds the automatic strategy
//! choice ([`engine::CompiledQuery::strategy_for_source`]).
//! Pair a compiled query with a prepared document and both halves of the
//! pipeline are paid exactly once:
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let query = CompiledQuery::compile("/descendant::book[child::title]").unwrap();
//! let doc = parse_xml("<lib><book><title>A</title></book><book/></lib>").unwrap();
//! let prepared = PreparedDocument::new(doc);   // per-document work, done once
//! for _ in 0..10 {
//!     let out = query.run_prepared(&prepared).unwrap(); // indexed fast path
//!     assert_eq!(out.value.expect_nodes().len(), 1);
//! }
//! ```
//!
//! Large results can stream instead of materializing a result vector: the
//! Singleton-Success plan decides each candidate's membership *as the
//! stream reaches it* (consuming a prefix does a prefix of the decisions),
//! and the linear plan — which is inherently set-at-a-time — walks its
//! result bitset lazily after the one O(|D|·|Q|) evaluation:
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let query = CompiledQuery::compile("//item").unwrap();
//! let doc = parse_xml("<r><item/><item/><item/></r>").unwrap();
//! let first = query.run_streaming(&doc).unwrap().next().unwrap().unwrap();
//! assert!(doc.kind(first).is_element());
//! ```
//!
//! A serving [`Engine`](engine::Engine) adds a bounded (sharded) LRU plan
//! cache keyed by
//! the query string and a document cache memoizing preparation, so repeated
//! `evaluate_str` calls skip the per-query half and
//! [`engine::Engine::prepare_keyed`] pays the per-document half once,
//! under a caller-assigned stable id that survives document replacement:
//!
//! ```
//! use std::sync::Arc;
//! use xpeval::prelude::*;
//!
//! let engine = Engine::builder().threads(2).plan_cache_capacity(256).build();
//! let doc = Arc::new(parse_xml("<lib><book/><book/></lib>").unwrap());
//! let prepared = engine.prepare_keyed(1, &doc); // cached under the stable id
//! for _ in 0..10 {
//!     assert_eq!(
//!         engine.evaluate_str_prepared(&prepared, "count(//book)").unwrap(),
//!         Value::Number(2.0),
//!     );
//! }
//! let stats = engine.cache_stats();
//! assert_eq!(stats.misses, 1); // compiled once
//! assert_eq!(stats.hits, 9);   // served from the plan cache
//! ```
//!
//! Batch entry points evaluate one plan over many contexts
//! ([`engine::CompiledQuery::run_many`], sharing the DP evaluator's
//! context-value tables across the batch) or many plans against one
//! document ([`engine::Engine::evaluate_batch`] /
//! [`engine::Engine::evaluate_batch_prepared`]).
//!
//! ## Extending the query language
//!
//! Three extension axes grow the language without giving up the
//! complexity classification (the full map lives in `docs/fragments.md`
//! in the repository — the fragment-complexity reference):
//!
//! **External variables.**  `$name` references are free in XPath; values
//! arrive per evaluation through [`Bindings`](engine::Bindings).  Bindings
//! are an evaluation-time input, deliberately excluded from plan-cache and
//! artifact keys: one compiled plan serves any number of
//! parameterizations, and re-binding never recompiles.
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let doc = parse_xml(
//!     "<lib><book year='2001'><title>A</title></book>\
//!      <book year='2003'><title>B</title></book></lib>",
//! ).unwrap();
//! let query = CompiledQuery::compile("//book[@year = $year]/title").unwrap();
//! assert_eq!(query.variables(), ["year".to_string()]);
//!
//! // One compilation, many parameterizations.
//! for (year, expect) in [(2001.0, "A"), (2003.0, "B")] {
//!     let bindings = Bindings::new().with_number("year", year);
//!     let out = query.run_bound(&doc, &bindings).unwrap();
//!     let nodes = out.value.expect_nodes();
//!     assert_eq!(doc.string_value(nodes[0]), expect);
//! }
//!
//! // A missing binding is an eager, named error — not a silent empty set.
//! let err = query.run_bound(&doc, &Bindings::new()).unwrap_err();
//! assert!(matches!(err, EvalError::UnboundVariable { .. }));
//! ```
//!
//! **Registered functions.**  A [`FunctionRegistry`](engine::FunctionRegistry)
//! adds user functions with compile-time signature/arity validation, each
//! declaring a [`FragmentImpact`](engine::FragmentImpact): `CoreSafe`
//! keeps the query's fragment (and with it a linear-bound strategy);
//! `General` — the default — conservatively degrades the plan to full
//! XPath, which routes it to the polynomial context-value-table
//! evaluator.  The plan never *claims* a complexity bound an opaque
//! handler could break:
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let engine = Engine::builder()
//!     .register_function(
//!         FunctionSignature::new("double", 1, Some(1))
//!             .returns_number()
//!             .impact(FragmentImpact::CoreSafe),
//!         |args, _ctx, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
//!     )
//!     .build();
//! let doc = parse_xml("<lib><book year='2003'><title>B</title></book></lib>").unwrap();
//! let out = engine.evaluate_str(&doc, "//book[double(@year) = 4006]/title").unwrap();
//! assert_eq!(out.expect_nodes().len(), 1);
//!
//! // Mis-arity is rejected at compile time, like a built-in.
//! assert!(matches!(
//!     engine.compile("double(1, 2)").unwrap_err(),
//!     EvalError::WrongArity { .. },
//! ));
//! ```
//!
//! **Node-set operators.**  `union` (`|`), `intersect` and `except`
//! combine node sets in document order, and the node comparisons `is`,
//! `<<`, `>>` compare identity and document order — all lowered to
//! [`PlanIr`](engine::PlanIr) opcodes executed by every strategy, with the
//! linear evaluator running `intersect`/`except` natively on its bitsets:
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let doc = parse_xml("<r><a><b/></a><b/><c/></r>").unwrap();
//! let q = CompiledQuery::compile("//b except //a/b").unwrap();
//! let out = q.run(&doc).unwrap();
//! assert_eq!(out.value.expect_nodes().len(), 1); // the top-level <b/>
//! let q = CompiledQuery::compile("//a << //c").unwrap();
//! assert_eq!(q.run(&doc).unwrap().value, Value::Boolean(true));
//! ```
//!
//! ## Serving many clients: the async layer
//!
//! All of the above occupies its caller; under concurrent load, wrap the
//! engine in an [`AsyncEngine`](serve::AsyncEngine) — a fixed worker pool
//! (every worker holds a clone of the engine handle, sharing its caches)
//! fed by a **bounded** submission queue.  Submissions return a
//! [`QueryFuture`](serve::QueryFuture) immediately; a full queue pushes
//! back (`submit` blocks, `try_submit` fails fast with
//! [`TrySubmitError::Full`](serve::TrySubmitError)); shutdown drains every
//! accepted job.  No runtime is required — futures are `.await`able from
//! any executor, waitable from any thread:
//!
//! ```
//! use std::sync::Arc;
//! use xpeval::prelude::*;
//!
//! let engine = Engine::builder().plan_cache_capacity(256).build();
//! let pool = AsyncEngine::builder().engine(engine).workers(2).queue_capacity(64).build();
//! let doc = Arc::new(PreparedDocument::new(
//!     parse_xml("<lib><book/><book/></lib>").unwrap(),
//! ));
//!
//! let futures: Vec<_> = (0..8)
//!     .map(|_| pool.submit(&doc, "count(//book)").unwrap())
//!     .collect();
//! for f in futures {
//!     assert_eq!(f.wait().unwrap().unwrap().value, Value::Number(2.0));
//! }
//!
//! let stats = pool.shutdown(); // ServeStats: queue depth, latency, per worker
//! assert_eq!(stats.completed, 8);
//! assert_eq!(stats.panicked, 0);
//! ```
//!
//! Backpressure, shutdown and queue behaviour are observable through
//! [`ServeStats`](serve::ServeStats), the serving-side sibling of
//! [`CacheStats`](engine::CacheStats).  The non-default `tokio` feature
//! adds `submit_async`, which awaits queue space instead of blocking —
//! the entry point meant for async runtimes.
//!
//! ## Many documents: the catalog
//!
//! Serving *many* documents needs names, not `Arc`s: a
//! [`Catalog`](catalog::Catalog) stores prepared documents under
//! human-readable names with stable [`DocId`](catalog::DocId)s, bounded
//! capacity (LRU), and a generation counter bumped by every replacement.
//! On top of the per-query plan cache and the per-document index cache it
//! adds the third amortization axis: a **(query × document) artifact
//! cache** holding document-specialized plans — strategy choice pinned,
//! final-step name tests pre-resolved to the document's interned
//! [`TagId`](dom::TagId)s, candidate bounds precomputed — so repeated
//! evaluation of the same pair skips selectivity probing and strategy
//! selection, and a verified zero candidate bound skips evaluation
//! itself:
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let catalog = Catalog::builder().capacity(64).build();
//! catalog.insert_xml("orders", "<orders><order/><order/></orders>").unwrap();
//! catalog.insert_xml("archive", "<orders><order/></orders>").unwrap();
//!
//! // Prepare once, name many: repeats hit the (query × document) cache.
//! for _ in 0..10 {
//!     let out = catalog.evaluate_on("orders", "count(//order)").unwrap();
//!     assert_eq!(out.value, Value::Number(2.0));
//! }
//!
//! // Fan one query out over a glob of documents.
//! let totals = catalog.evaluate_matching("*", "count(//order)");
//! assert_eq!(totals.len(), 2);
//!
//! // Replacement bumps the generation and invalidates exactly the
//! // replaced document's artifacts.
//! catalog.insert_xml("orders", "<orders/>").unwrap();
//! assert_eq!(catalog.generation("orders"), Some(2));
//! assert_eq!(
//!     catalog.evaluate_on("orders", "count(//order)").unwrap().value,
//!     Value::Number(0.0),
//! );
//! println!("{}", catalog.stats()); // one-line CatalogStats summary
//! ```
//!
//! ### Flat plan IR and content-hash sharing
//!
//! Behind every compiled query sits a flat, arena-allocated instruction
//! IR ([`PlanIr`](engine::PlanIr)): operators in one contiguous
//! [`OpIr`](engine::OpIr) arena (each tagged with the Figure 1 fragment
//! that admitted it, so the complexity classification survives lowering)
//! and location-path steps in a [`StepIr`](engine::StepIr) table carrying
//! per-step metadata — axis, name test pre-resolved to the
//! **workspace-global** interned [`TagId`](dom::TagId), precomputed
//! positional pick, selectivity hint, `//`-fusion flag.  All five
//! evaluation strategies execute this IR instead of re-walking the AST,
//! which turns an artifact-cache hit into a dispatch.
//!
//! Because tag ids are global (one lock-sharded symbol table for the whole
//! process, [`dom::intern`]), specialized plans compare across documents —
//! so artifacts are keyed by **document content hash**
//! ([`ArtifactScope`](catalog::ArtifactScope)): two identical documents
//! inserted under different names share one artifact, and its cached
//! evaluation carries over.  Mutation divergence ends the sharing for
//! exactly the diverging document.
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let query = CompiledQuery::compile("//book/title").unwrap();
//! let ir: &PlanIr = query.ir();     // the lowered program
//! assert_eq!(ir.fused_steps(), 1);  // pred-less `//book` → descendant::book
//!
//! let catalog = Catalog::new();
//! let xml = "<lib><book><title/></book></lib>";
//! catalog.insert_xml("a", xml).unwrap();
//! catalog.insert_xml("b", xml).unwrap();  // same content, same hash
//! catalog.evaluate_on("a", "//book/title").unwrap();
//! catalog.evaluate_on("b", "//book/title").unwrap(); // shares a's artifact
//! let s = catalog.stats();
//! assert_eq!((s.artifact_misses, s.artifact_cross_doc_hits), (1, 1));
//! ```
//!
//! The serving pool accepts names too —
//! [`AsyncEngine::submit_named`](serve::AsyncEngine::submit_named) targets
//! a catalog document by name (resolved when the job runs, so it always
//! sees the current generation), and
//! [`AsyncEngine::submit_with_deadline`](serve::AsyncEngine::submit_with_deadline)
//! bounds how long any submission may queue: a job whose deadline passes
//! while it waits is dropped unrun and resolves
//! [`JobExpired`](serve::JobExpired).
//!
//! ## Live documents: edit in place, invalidate by subtree
//!
//! Documents are edited far more often than replaced.  A
//! [`LiveDocument`](live::LiveDocument) edits a prepared document **in
//! place** — `insert_subtree`, `remove_subtree`, `replace_subtree`,
//! `set_attribute`, `set_text` — maintaining every axis index
//! *incrementally* (gap-based ordering keys absorb edits without
//! renumbering; tag lists, child buckets and position tables are patched
//! for exactly the dirty subtree) instead of paying a full O(|D|)
//! re-preparation.  Snapshots are copy-on-write, so concurrent readers
//! never see a half-patched index.  Through
//! [`Catalog::mutate_named`](catalog::Catalog::mutate_named) an edit bumps
//! the entry's **revision** (the fine-grained sibling of the
//! whole-replacement *generation*) and re-targets the document's plan
//! artifacts: only those whose candidates intersect the edit's dirty
//! preorder interval are dropped, the rest keep their specialized plan
//! across the edit.
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let catalog = Catalog::new();
//! catalog.insert_xml("inv", "<inv><item/><item/><audit/></inv>").unwrap();
//! catalog.evaluate_on("inv", "//item").unwrap();   // caches an artifact
//! catalog.evaluate_on("inv", "//audit").unwrap();  // ...and another
//!
//! let fragment = parse_xml("<item new=\"1\"/>").unwrap();
//! let out = catalog
//!     .mutate_named("inv", |live| {
//!         let inv = live.first_child(live.root()).unwrap();
//!         live.insert_subtree(inv, 2, &fragment).unwrap();
//!     })
//!     .unwrap();
//! assert_eq!(out.revision, 1);                       // revision, not generation
//! assert_eq!(catalog.generation("inv"), Some(1));
//! assert_eq!(out.artifacts_killed, 1);               // //item intersects the edit
//! assert_eq!(out.artifacts_preserved, 1);            // //audit survives it
//! assert_eq!(
//!     catalog.evaluate_on("inv", "count(//item)").unwrap().value,
//!     Value::Number(3.0),
//! );
//! ```
//!
//! The pool submits edits the same way as queries:
//! [`AsyncEngine::submit_mutation_named`](serve::AsyncEngine::submit_mutation_named)
//! runs the closure on a worker, serialized with queries on the same
//! catalog while independent tenants proceed in parallel.
//!
//! ## Backends: eager, lazy, snapshot, tree providers
//!
//! Everything above assumes the eager path: parse the whole document,
//! build every index, then query.  The [`backends`] crate makes the
//! *storage* layer pluggable below [`AxisSource`](dom::AxisSource),
//! trading ingest cost against first-query latency:
//!
//! | backend | ingest cost | first query | re-open | best for |
//! |---|---|---|---|---|
//! | **eager** (default) | parse + index all | fast | parse + index again | documents queried many times |
//! | **lazy** ([`LazyDocument`](backends::LazyDocument)) | tokenize only | parses only touched subtrees | tokenize only | large documents, targeted queries |
//! | **snapshot** ([`PreparedSnapshot`](backends::PreparedSnapshot)) | one-time export | fast | O(validate) on checksummed bytes | prepared-once, served-everywhere |
//! | **tree** ([`TreeProvider`](dom::TreeProvider), e.g. [`JsonProvider`](backends::JsonProvider)) | provider-defined | fast | provider-defined | non-XML sources |
//!
//! A [`LazyDocument`](backends::LazyDocument) tokenizes XML into a
//! structural spine plus subtree *extents* and materializes only the
//! extents a query's tag footprint can touch —
//! [`EvalStats::nodes_materialized`](engine::EvalStats) witnesses how
//! little a targeted query parsed.  A
//! [`PreparedSnapshot`](backends::PreparedSnapshot) is a versioned,
//! checksummed binary image of a fully prepared document (arena, keys and
//! index tables); re-opening validates bytes instead of re-parsing and
//! re-indexing, and the non-default `mmap` feature maps the file rather
//! than reading it.  Corrupt or version-skewed images are rejected, never
//! misread.  All three enter the catalog
//! ([`Catalog::insert_lazy`](catalog::Catalog::insert_lazy) /
//! [`insert_snapshot`](catalog::Catalog::insert_snapshot) /
//! [`insert_tree`](catalog::Catalog::insert_tree)) where plan artifacts
//! are additionally keyed by [`BackendKind`](backends::BackendKind) and a
//! [`node_budget`](catalog::CatalogBuilder::node_budget) demotes lazy
//! entries back to their spine before evicting anyone; the pool serves
//! snapshots directly through
//! [`AsyncEngine::submit_snapshot`](serve::AsyncEngine::submit_snapshot).
//!
//! ```
//! use std::sync::Arc;
//! use xpeval::prelude::*;
//!
//! // Lazy: a query for //b materializes b's extent, not c's.
//! let xml = format!(
//!     "<r><a>{}</a><b>{}</b><c>{}</c></r>",
//!     "<x/>".repeat(400), "<y/>".repeat(400), "<z/>".repeat(400),
//! );
//! let lazy = LazyDocument::new(&xml).unwrap();
//! let doc = lazy.materialize_for(
//!     CompiledQuery::compile("count(//y)").unwrap().expr(),
//! ).unwrap();
//! assert!(doc.node_count() < lazy.total_nodes() / 2);
//!
//! // Snapshot: export a prepared document, re-open in O(validate).
//! let prepared = Arc::new(PreparedDocument::new(parse_xml("<r><s/></r>").unwrap()));
//! let bytes = PreparedSnapshot::to_bytes(&prepared);
//! let snapshot = PreparedSnapshot::from_bytes(bytes).unwrap();
//! assert_eq!(snapshot.node_count(), prepared.node_count());
//!
//! // Tree provider: JSON enters the same pipeline.
//! let json = JsonProvider::new(r#"{"order": {"id": 7}}"#);
//! let catalog = Catalog::new();
//! catalog.insert_tree("orders", &json).unwrap();
//! assert_eq!(
//!     catalog.evaluate_on("orders", "count(//id)").unwrap().value,
//!     Value::Number(1.0),
//! );
//! ```

// The fragment-complexity reference manual is executable documentation:
// compiling its code blocks as doctests keeps `docs/fragments.md` honest
// against the real API (`cargo test --doc` runs them).
#[cfg(doctest)]
#[doc = include_str!("../docs/fragments.md")]
struct FragmentsManual;

pub use xpeval_backends as backends;
pub use xpeval_catalog as catalog;
pub use xpeval_circuits as circuits;
pub use xpeval_core as engine;
pub use xpeval_dom as dom;
pub use xpeval_live as live;
pub use xpeval_obs as obs;
pub use xpeval_reductions as reductions;
pub use xpeval_serve as serve;
pub use xpeval_syntax as syntax;
pub use xpeval_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use xpeval_backends::{
        BackendKind, JsonProvider, LazyDocument, PreparedSnapshot, SnapshotError,
    };
    pub use xpeval_catalog::{
        ArtifactScope, Catalog, CatalogBuilder, CatalogError, CatalogStats, DocId, DocInfo, FanOut,
        MutationOutcome, PlanArtifact,
    };
    pub use xpeval_core::{
        Bindings, CacheStats, CompileOptions, CompiledQuery, Context, Engine, EngineBuilder,
        EvalError, EvalStats, EvalStrategy, FragmentImpact, FunctionHandler, FunctionRegistry,
        FunctionSignature, NodeStream, OpIr, OpKind, PlanIr, QueryOutput, ShardStats,
        SingletonSuccess, StepIr, StreamMode, Value,
    };
    pub use xpeval_dom::{
        parse_xml, Axis, AxisSource, Document, DocumentBuilder, EditOutcome, MutationError, NodeId,
        NodeTest, PositionalPick, PreparedDocument, TagId, TreeBuildError, TreeBuilder,
        TreeProvider, XmlProvider,
    };
    pub use xpeval_live::{LiveDocument, PendingEdits};
    pub use xpeval_obs::{
        parse_prometheus, render_json, render_prometheus, Field, FieldValue, Histogram,
        HistogramSnapshot, MetricSource, MetricsRegistry, QueryTrace, Telemetry, TraceSpan,
    };
    pub use xpeval_serve::{
        block_on, AsyncEngine, AsyncEngineBuilder, CatalogMutationResult, CatalogQueryResult,
        DeadlineResult, JobExpired, JobLost, QueryFuture, ServeStats, TrySubmitError, WorkerStats,
    };
    pub use xpeval_syntax::{parse_query, Expr, Fragment, FragmentReport};
}
