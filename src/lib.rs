//! # xpeval — The Complexity of XPath Query Evaluation, reproduced in Rust
//!
//! This facade crate re-exports the public API of the workspace crates that
//! together reproduce *"The Complexity of XPath Query Evaluation"*
//! (Gottlob, Koch, Pichler; PODS 2003):
//!
//! * [`dom`] — the XML document tree substrate (arena tree, axes, document
//!   order, parsing, serialization),
//! * [`syntax`] — the XPath 1.0 lexer/parser/AST and the fragment classifier
//!   of Figure 1 (PF, positive Core XPath, Core XPath, WF, pWF, pXPath),
//! * [`engine`] — the evaluation engines: the context-value-table
//!   dynamic-programming evaluator, the naive exponential baseline, the
//!   linear-time Core XPath evaluator, the parallel LOGCFL-fragment
//!   evaluator, and the Singleton-Success decision procedure of Lemma 5.4,
//! * [`circuits`] — monotone and SAC¹ boolean circuits with the layered
//!   serialization of Figure 3,
//! * [`reductions`] — the reductions of Theorems 3.2, 4.2, 4.3 and 5.7,
//! * [`workloads`] — synthetic document/query/graph generators used by the
//!   benchmark harness and the examples.
//!
//! ## Quickstart
//!
//! ```
//! use xpeval::prelude::*;
//!
//! let doc = parse_xml("<lib><book year='2003'><title>XPath</title></book></lib>").unwrap();
//! let query = parse_query("/descendant-or-self::book[child::title]").unwrap();
//! let engine = Engine::new(EvalStrategy::ContextValueTable);
//! let result = engine.evaluate(&doc, &query).unwrap();
//! assert_eq!(result.expect_nodes().len(), 1);
//! ```

pub use xpeval_circuits as circuits;
pub use xpeval_core as engine;
pub use xpeval_dom as dom;
pub use xpeval_reductions as reductions;
pub use xpeval_syntax as syntax;
pub use xpeval_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use xpeval_core::{Engine, EvalStrategy, SingletonSuccess, Value};
    pub use xpeval_dom::{parse_xml, Axis, Document, DocumentBuilder, NodeId, NodeTest};
    pub use xpeval_syntax::{parse_query, Expr, Fragment, FragmentReport};
}
