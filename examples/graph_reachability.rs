//! Answering graph reachability with predicate-free path queries — the
//! Theorem 4.3 / Figure 5 reduction as an application.
//!
//! ```bash
//! cargo run --example graph_reachability
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::engine::CoreXPathEvaluator;
use xpeval::reductions::{reachability_to_pf, DirectedGraph};
use xpeval::syntax::classify;
use xpeval::workloads::layered_dag;

fn main() {
    // The 4-vertex example in the spirit of Figure 5.
    let mut g = DirectedGraph::new(4);
    for (u, t) in [(1, 2), (2, 3), (3, 1), (3, 4), (4, 2)] {
        g.add_edge(u, t);
    }

    println!("== Figure 5 example graph ==");
    println!("edges: {:?}\n", g.edges().collect::<Vec<_>>());
    println!("   pair  | reachable (PF query) | reachable (BFS)");
    println!("   ------+----------------------+----------------");
    for s in 1..=4 {
        for t in 1..=4 {
            let reduction = reachability_to_pf(&g, s, t);
            let result = CoreXPathEvaluator::new(&reduction.document)
                .evaluate_query(&reduction.query)
                .unwrap();
            let via_xpath = !result.is_empty();
            let via_bfs = g.reachable(s, t);
            println!("   {s} → {t} | {via_xpath:<20} | {via_bfs}");
            assert_eq!(via_xpath, via_bfs);
        }
    }

    // A bigger layered DAG.
    let dag = layered_dag(&mut StdRng::seed_from_u64(7), 5, 4, 2);
    let reduction = reachability_to_pf(&dag, 1, dag.num_vertices());
    let report = classify(&reduction.query);
    println!("\n== layered DAG with {} vertices and {} edges ==", dag.num_vertices(), dag.num_edges());
    println!("query fragment      : {} ({})", report.fragment, report.complexity);
    println!("document size       : {} nodes", reduction.document.len());
    let result = CoreXPathEvaluator::new(&reduction.document)
        .evaluate_query(&reduction.query)
        .unwrap();
    println!(
        "vertex {} reachable from vertex 1: {} (BFS agrees: {})",
        dag.num_vertices(),
        !result.is_empty(),
        dag.reachable(1, dag.num_vertices()) == !result.is_empty()
    );
}
