//! Answering graph reachability with predicate-free path queries — the
//! Theorem 4.3 / Figure 5 reduction as an application.
//!
//! ```bash
//! cargo run --example graph_reachability
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::prelude::*;
use xpeval::reductions::{reachability_to_pf, DirectedGraph};
use xpeval::workloads::layered_dag;

/// Compiles the reduction's PF query and reports whether it selects
/// anything — "t reachable from s" iff the node set is non-empty.
fn query_says_reachable(reduction: &xpeval::reductions::PfReachabilityReduction) -> bool {
    let compiled = CompiledQuery::from_expr(reduction.query.clone());
    // PF queries get the linear set-at-a-time plan automatically.
    assert_eq!(compiled.strategy(), EvalStrategy::CoreXPathLinear);
    let out = compiled.run(&reduction.document).unwrap();
    !out.value.expect_nodes().is_empty()
}

fn main() {
    // The 4-vertex example in the spirit of Figure 5.
    let mut g = DirectedGraph::new(4);
    for (u, t) in [(1, 2), (2, 3), (3, 1), (3, 4), (4, 2)] {
        g.add_edge(u, t);
    }

    println!("== Figure 5 example graph ==");
    println!("edges: {:?}\n", g.edges().collect::<Vec<_>>());
    println!("   pair  | reachable (PF query) | reachable (BFS)");
    println!("   ------+----------------------+----------------");
    for s in 1..=4 {
        for t in 1..=4 {
            let reduction = reachability_to_pf(&g, s, t);
            let via_xpath = query_says_reachable(&reduction);
            let via_bfs = g.reachable(s, t);
            println!("   {s} → {t} | {via_xpath:<20} | {via_bfs}");
            assert_eq!(via_xpath, via_bfs);
        }
    }

    // A bigger layered DAG.
    let dag = layered_dag(&mut StdRng::seed_from_u64(7), 5, 4, 2);
    let reduction = reachability_to_pf(&dag, 1, dag.num_vertices());
    let compiled = CompiledQuery::from_expr(reduction.query.clone());
    let report = compiled.report();
    println!(
        "\n== layered DAG with {} vertices and {} edges ==",
        dag.num_vertices(),
        dag.num_edges()
    );
    println!(
        "query fragment      : {} ({})",
        report.fragment, report.complexity
    );
    println!("compiled plan       : {:?}", compiled.strategy());
    println!("document size       : {} nodes", reduction.document.len());
    let reachable = !compiled
        .run(&reduction.document)
        .unwrap()
        .value
        .expect_nodes()
        .is_empty();
    println!(
        "vertex {} reachable from vertex 1: {} (BFS agrees: {})",
        dag.num_vertices(),
        reachable,
        dag.reachable(1, dag.num_vertices()) == reachable
    );
}
