//! Live documents: in-place mutation with incremental index maintenance
//! and subtree-scoped artifact invalidation.
//!
//! An edit through [`Catalog::mutate_named`] patches the prepared indexes
//! of the *current* document instead of re-parsing it, bumps a per-entry
//! revision (the generation stays put — that is reserved for wholesale
//! replacement), and kills only the cached (query × document) artifacts
//! whose candidate elements intersect the edited subtree's preorder
//! interval.  Everything else — plans, pinned strategies, verified-empty
//! shortcuts — survives the edit untouched.
//!
//! ```bash
//! cargo run --release --example live_mutation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use xpeval::prelude::*;
use xpeval::workloads::auction_site_document;

const ITEMS: usize = 600; // ~9.6k nodes, the bench_mutation document
const EDITS: usize = 50;

fn nodes(v: &Value) -> usize {
    match v {
        Value::NodeSet(set) => set.len(),
        _ => unreachable!(),
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(43);

    let engine = Engine::builder().plan_cache_capacity(256).build();
    let catalog = Catalog::builder()
        .engine(engine.clone())
        .capacity(16)
        .artifact_capacity(256)
        .build();

    // Part 1: ingest one auction document and warm a few artifacts.
    let doc = auction_site_document(&mut rng, ITEMS);
    catalog.insert_document("auction", doc);
    let info = catalog.info("auction").unwrap();
    println!("== live document ==\n");
    println!(
        "  {:<8} {} gen {} rev {} ({} nodes)",
        info.name, info.id, info.generation, info.revision, info.node_count
    );

    // Name-bounded queries (a concrete tag in the final step) carry
    // their candidate element lists into the artifact, which is what
    // scoped invalidation intersects against.  Queries without that
    // bound — say `count(//*)` — are conservatively killed by any edit.
    let queries = [
        "//item",
        "//person",
        "//item[child::bid]",
        "//warehouse", // verified empty: no such tag anywhere
    ];
    for q in &queries {
        let out = catalog.evaluate_on("auction", q).unwrap();
        println!("  {q:<22} -> {} nodes", nodes(&out.value));
    }

    // Part 2: an in-place edit.  The closure runs against a LiveDocument
    // view of the entry; the catalog publishes the patched snapshot and
    // retargets the artifact cache when the closure returns.
    let new_item =
        parse_xml("<item id=\"item-live\"><name>Hot item</name><bid increase=\"9\"/></item>")
            .unwrap();
    let outcome = catalog
        .mutate_named("auction", |live| {
            let region = live.elements_named("europe")[0];
            live.insert_subtree(region, 0, &new_item)
        })
        .unwrap();
    outcome.value.unwrap();
    println!(
        "\ninsert <item> into //europe: rev {} -> {}, artifacts {} killed / {} preserved",
        0, outcome.revision, outcome.artifacts_killed, outcome.artifacts_preserved
    );
    // //item and //item[child::bid] intersected the edit and were killed;
    // //person (disjoint subtree) and //warehouse (verified empty) kept
    // their artifacts — including the empty-result shortcut.
    for q in &queries {
        let out = catalog.evaluate_on("auction", q).unwrap();
        println!("  {q:<22} -> {} nodes", nodes(&out.value));
    }

    // Part 3: value-only edits never intersect element candidates, so
    // every artifact survives with its statistics intact.
    let outcome = catalog
        .mutate_named("auction", |live| {
            let seller = live.elements_named("seller")[0];
            live.set_attribute(seller, "person", "person0")
        })
        .unwrap();
    outcome.value.unwrap();
    println!(
        "\nset @person on //seller[1]: rev -> {}, artifacts {} killed / {} preserved",
        outcome.revision, outcome.artifacts_killed, outcome.artifacts_preserved
    );

    // Part 4: the point of all this — edit + re-query without paying for
    // parse + prepare.  Contrast an incremental edit loop against the
    // pre-live alternative (replace the whole document each time).
    let replacement =
        parse_xml("<item id=\"swap\"><name>Swapped</name><bid increase=\"3\"/></item>").unwrap();

    let start = Instant::now();
    for _ in 0..EDITS {
        catalog
            .mutate_named("auction", |live| {
                let item = live.elements_named("item")[7];
                live.replace_subtree(item, &replacement)
            })
            .unwrap()
            .value
            .unwrap();
        catalog
            .evaluate_on("auction", "count(//item[child::bid])")
            .unwrap();
    }
    let incremental = start.elapsed();

    let mut rng2 = StdRng::seed_from_u64(43);
    let fresh = auction_site_document(&mut rng2, ITEMS);
    let xml = xpeval::dom::serialize(&fresh);
    let start = Instant::now();
    for _ in 0..EDITS {
        catalog.insert_xml("auction-rebuilt", &xml).unwrap();
        catalog
            .evaluate_on("auction-rebuilt", "count(//item[child::bid])")
            .unwrap();
    }
    let rebuild = start.elapsed();
    println!(
        "\n{EDITS}x edit + re-query: incremental {:.2?}  vs  re-parse + prepare {:.2?}  ({:.1}x)",
        incremental,
        rebuild,
        rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9)
    );

    // Part 5: mutations through the serving pool.  Edits serialize
    // through the catalog's store lock; queries racing the edit see
    // either the old or the new snapshot, never a torn one.
    let pool = AsyncEngine::builder()
        .workers(2)
        .queue_capacity(32)
        .engine(engine)
        .build();
    let fragment = parse_xml("<item id=\"async\"><bid increase=\"1\"/></item>").unwrap();
    let edit = pool
        .submit_mutation_named(&catalog, "auction", move |live| {
            let region = live.elements_named("asia")[0];
            live.insert_subtree(region, 0, &fragment)
                .map(|o| o.inserted)
        })
        .unwrap();
    let query = pool
        .submit_named(&catalog, "auction", "count(//item)")
        .unwrap();
    let outcome = edit.wait().unwrap().unwrap();
    println!(
        "\nasync edit: rev -> {} ({} nodes inserted), concurrent count(//item) = {:?}",
        outcome.revision,
        outcome.edits.as_ref().map_or(0, |e| e.inserted),
        query.wait().unwrap().unwrap().value
    );
    pool.shutdown();

    println!("\n{}", catalog.stats());
}
