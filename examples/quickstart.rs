//! Quickstart: compile queries once, look at their fragment classification
//! and selected plan, then evaluate them — directly, through a serving
//! engine with a plan cache, and against a prepared (indexed) document
//! with streaming results.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use xpeval::prelude::*;

fn main() {
    // A small library catalogue.
    let doc = parse_xml(
        r#"<library>
             <book year="2002"><title>Efficient Algorithms for Processing XPath Queries</title><venue>VLDB</venue></book>
             <book year="2003"><title>The Complexity of XPath Query Evaluation</title><venue>PODS</venue></book>
             <article year="2003"><title>Typing and Querying XML Documents</title><venue>PODS</venue></article>
           </library>"#,
    )
    .expect("well-formed XML");

    println!("document: {} nodes, height {}\n", doc.len(), doc.height());

    let queries = [
        "/library/book/title",
        "//book[@year = 2003]/title",
        "//book[not(venue = 'PODS')]",
        "//*[venue = 'PODS'][position() = last()]/title",
        "count(//book)",
        "string(//book[@year = 2003]/title)",
    ];

    // Per-query work happens once, before any document is touched: parse,
    // normalize, classify (Figure 1), pick the strategy the paper's
    // complexity results recommend.
    for src in queries {
        let compiled = CompiledQuery::compile(src).expect("query compiles");
        let report = compiled.report();
        println!("query     : {src}");
        println!("fragment  : {} — {}", report.fragment, report.complexity);
        println!("plan      : {:?}", compiled.strategy());
        let out = compiled.run(&doc).expect("evaluation succeeds");
        match out.value {
            Value::NodeSet(nodes) => {
                println!("result    : {} node(s)", nodes.len());
                for n in nodes {
                    println!(
                        "            <{}> {:?}",
                        doc.name(n).unwrap_or("#"),
                        doc.string_value(n)
                    );
                }
            }
            other => println!("result    : {other:?}"),
        }
        println!();
    }

    // A serving engine compiles through a bounded LRU plan cache: repeated
    // query strings skip the per-query work entirely.
    let engine = Engine::builder().threads(4).plan_cache_capacity(64).build();
    for _ in 0..5 {
        engine.evaluate_str(&doc, "count(//book)").unwrap();
    }
    // One summary line per cache, via the shared CacheStats Display.
    println!(
        "plan cache after 5 identical calls: {}",
        engine.cache_stats()
    );

    // The document side mirrors the query side: prepare once (tag-name
    // index, preorder subtree intervals, position tables), evaluate many.
    // The engine memoizes preparation per document, like plans per string.
    let doc = Arc::new(doc);
    let prepared = engine.prepare_keyed(1, &doc);
    let titles = engine
        .evaluate_str_prepared(&prepared, "/descendant::title")
        .unwrap();
    println!(
        "\nprepared document: {} node(s) from the indexed descendant axis",
        titles.expect_nodes().len()
    );

    // Streaming: matches are yielded in document order as they are
    // decided — no result vector is materialized, and early exit is free.
    let compiled = CompiledQuery::compile("//title").unwrap();
    let mut stream = compiled.run_streaming_prepared(&prepared).unwrap();
    if let Some(Ok(first)) = stream.next() {
        println!(
            "first streamed match: {:?} (mode {:?}, {} candidate(s) examined)",
            doc.string_value(first),
            stream.mode(),
            stream.nodes_scanned()
        );
    }
}
