//! Quickstart: parse a document, parse queries, evaluate them with the
//! default (context-value-table) engine and look at the fragment
//! classification.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use xpeval::prelude::*;

fn main() {
    // A small library catalogue.
    let doc = parse_xml(
        r#"<library>
             <book year="2002"><title>Efficient Algorithms for Processing XPath Queries</title><venue>VLDB</venue></book>
             <book year="2003"><title>The Complexity of XPath Query Evaluation</title><venue>PODS</venue></book>
             <article year="2003"><title>Typing and Querying XML Documents</title><venue>PODS</venue></article>
           </library>"#,
    )
    .expect("well-formed XML");

    println!("document: {} nodes, height {}\n", doc.len(), doc.height());

    let engine = Engine::new(EvalStrategy::ContextValueTable);

    let queries = [
        "/library/book/title",
        "//book[@year = 2003]/title",
        "//book[not(venue = 'PODS')]",
        "//*[venue = 'PODS'][position() = last()]/title",
        "count(//book)",
        "string(//book[@year = 2003]/title)",
    ];

    for src in queries {
        let query = parse_query(src).expect("query parses");
        let report = xpeval::syntax::classify(&query);
        let value = engine.evaluate(&doc, &query).expect("evaluation succeeds");
        println!("query     : {src}");
        println!("fragment  : {} — {}", report.fragment, report.complexity);
        match value {
            Value::NodeSet(nodes) => {
                println!("result    : {} node(s)", nodes.len());
                for n in nodes {
                    println!("            <{}> {:?}", doc.name(n).unwrap_or("#"), doc.string_value(n));
                }
            }
            other => println!("result    : {other:?}"),
        }
        println!();
    }

    // The engine can also pick the strategy the paper recommends per query.
    let q = parse_query("//book[@year = 2003]/title").unwrap();
    let recommended = Engine::recommended_for(&q, 4);
    println!(
        "recommended strategy for a pXPath query on 4 threads: {:?}",
        recommended.strategy()
    );
}
