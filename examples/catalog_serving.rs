//! Serving a *population* of documents through the catalog: named
//! ingestion, (query × document) plan artifacts, glob fan-out,
//! generation-bumping replacement, and catalog-named async submission
//! with per-submission deadlines.
//!
//! ```bash
//! cargo run --release --example catalog_serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use xpeval::prelude::*;
use xpeval::workloads::auction_site_document;

const REGIONS: usize = 12;

fn main() {
    let mut rng = StdRng::seed_from_u64(2003);

    // One engine shared by the catalog and the serving pool: plans
    // compiled anywhere are cache hits everywhere.
    let engine = Engine::builder().plan_cache_capacity(256).build();
    let catalog = Catalog::builder()
        .engine(engine.clone())
        .capacity(64)
        .artifact_capacity(512)
        .build();

    // Part 1: named ingestion — parse + prepare once per document.
    for i in 0..REGIONS {
        let doc = auction_site_document(&mut rng, 20 + 5 * i);
        catalog.insert_document(&format!("auction-{i:02}"), doc);
    }
    println!("== catalog of {} documents ==\n", catalog.len());
    for info in catalog.list().into_iter().take(3) {
        println!(
            "  {:<12} {} gen {} ({} nodes)",
            info.name, info.id, info.generation, info.node_count
        );
    }
    println!("  ...");

    // Part 2: repeated (query, document) pairs hit the artifact cache —
    // compilation, tag resolution and strategy selection all paid once.
    let query = "count(//item[child::bid])";
    let start = Instant::now();
    for _ in 0..200 {
        catalog.evaluate_on("auction-03", query).unwrap();
    }
    let hot = start.elapsed();
    println!("\n200 artifact-hit evaluations of {query}: {hot:.2?}");

    // Part 3: fan one query out over a glob of names.
    let bids: f64 = catalog
        .evaluate_matching("auction-0*", "count(//bid)")
        .into_iter()
        .map(|f| match f.result.unwrap().value {
            Value::Number(n) => n,
            _ => unreachable!(),
        })
        .sum();
    println!("total bids across auction-0*: {bids}");

    // Part 4: replacement bumps the generation and invalidates exactly
    // the replaced document's artifacts.
    let before = catalog.stats();
    let old_generation = catalog.generation("auction-03").unwrap();
    let fresh = auction_site_document(&mut rng, 10);
    catalog.insert_document("auction-03", fresh);
    let after = catalog.stats();
    println!(
        "\nreplaced auction-03: generation {} -> {}, {} artifact(s) invalidated",
        old_generation,
        catalog.generation("auction-03").unwrap(),
        after.artifact_invalidations - before.artifact_invalidations,
    );

    // Part 5: the serving pool targets documents by *name* — no Arcs
    // shipped — and resolves them when the job runs.
    let pool = AsyncEngine::builder()
        .engine(engine.clone())
        .workers(2)
        .queue_capacity(16)
        .build();
    let futures: Vec<_> = (0..REGIONS)
        .map(|i| {
            pool.submit_named(&catalog, &format!("auction-{i:02}"), "count(//person)")
                .unwrap()
        })
        .collect();
    let people: f64 = futures
        .into_iter()
        .map(|f| match f.wait().unwrap().unwrap().value {
            Value::Number(n) => n,
            _ => unreachable!(),
        })
        .sum();
    println!("\nnamed submissions: {people} people across all regions");
    // An unknown name fails in the result, not the submission.
    let missing = pool.submit_named(&catalog, "auction-99", "1").unwrap();
    assert!(matches!(
        missing.wait().unwrap(),
        Err(CatalogError::UnknownDocument { .. })
    ));

    // Part 6: per-submission deadlines.  Park the only workers on slow
    // jobs, then enqueue queries whose deadline passes while they wait:
    // they are dropped at dequeue (never run) and resolve JobExpired.
    let parked: Vec<_> = (0..2)
        .map(|_| {
            pool.submit_task(|_| std::thread::sleep(Duration::from_millis(60)))
                .unwrap()
        })
        .collect();
    let deadline = Instant::now() + Duration::from_millis(5);
    let doomed: Vec<_> = (0..4)
        .map(|_| {
            pool.submit_named_with_deadline(&catalog, "auction-00", "count(//bid)", deadline)
                .unwrap()
        })
        .collect();
    let expired = doomed
        .into_iter()
        .map(|f| f.wait())
        .filter(|r| matches!(r, Ok(Err(JobExpired))))
        .count();
    println!("deadline 5ms behind 60ms of queued work: {expired}/4 submissions expired unrun");
    for f in parked {
        f.wait().unwrap();
    }

    // Part 7: every layer reports one summary line.
    println!("\n== observability ==\n");
    println!("catalog    : {}", catalog.stats());
    println!("plan cache : {}", engine.cache_stats());
    let stats = pool.shutdown();
    println!("serve pool : {stats}");
    assert_eq!(stats.panicked, 0);
    assert_eq!(stats.expired, expired as u64);
}
