//! Pluggable tree backends: eager vs lazy vs snapshot vs tree provider.
//!
//! The eager path pays parse + full indexing up front.  A
//! [`LazyDocument`] tokenizes into a spine plus subtree extents and
//! materializes only what a query's tag footprint can touch; a
//! [`PreparedSnapshot`] is a checksummed binary image of a prepared
//! document that re-opens in O(validate); a [`JsonProvider`] feeds a
//! non-XML tree through the same builder events.  All of them enter the
//! catalog, where plan artifacts are keyed per backend and a node budget
//! demotes lazy entries back to their spine before evicting anyone.
//!
//! ```bash
//! cargo run --release --example backends
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use xpeval::dom::serialize;
use xpeval::prelude::*;
use xpeval::workloads::auction_site_document;

const ITEMS: usize = 600; // ~9.6k nodes, the shared bench document

fn main() {
    let mut rng = StdRng::seed_from_u64(43);
    let doc = auction_site_document(&mut rng, ITEMS);
    let xml = serialize(&doc);

    // -- Eager: the baseline every backend is measured against. ---------
    drop(doc);
    let t = Instant::now();
    let eager = Arc::new(PreparedDocument::new(parse_xml(&xml).unwrap()));
    let eager_cost = t.elapsed();
    println!("== eager ==\n");
    println!(
        "  parse + prepare: {} nodes in {eager_cost:.2?}",
        eager.node_count()
    );

    // -- Lazy: materialize only what the query touches. ------------------
    println!("\n== lazy ==\n");
    let t = Instant::now();
    let lazy = LazyDocument::new(&xml).unwrap();
    println!(
        "  tokenize: {} extents over {} nodes in {:.2?}",
        lazy.extent_count(),
        lazy.total_nodes(),
        t.elapsed()
    );
    let plan = CompiledQuery::compile("count(//person)").unwrap();
    let wave = lazy.materialize_for(plan.expr()).unwrap();
    println!(
        "  count(//person) materialized {} / {} nodes ({:.0}%)",
        wave.node_count(),
        lazy.total_nodes(),
        100.0 * wave.node_count() as f64 / lazy.total_nodes() as f64
    );
    let out = plan.run_prepared(&wave).unwrap();
    println!("  -> {:?}", out.value);

    // Through the catalog the same economy is observable per evaluation:
    // EvalStats::nodes_materialized witnesses the resident wave.
    let catalog = Catalog::builder().node_budget(50_000).build();
    catalog.insert_lazy("auction", &xml).unwrap();
    let out = catalog.evaluate_on("auction", "count(//person)").unwrap();
    println!(
        "  catalog witness: nodes_materialized = {} (backend {:?})",
        out.stats.nodes_materialized,
        catalog.backend_kind("auction").unwrap()
    );

    // -- Snapshot: prepare once, re-open in O(validate). -----------------
    println!("\n== snapshot ==\n");
    let t = Instant::now();
    let bytes = PreparedSnapshot::to_bytes(&eager);
    println!(
        "  export: {} bytes for {} nodes in {:.2?}",
        bytes.len(),
        eager.node_count(),
        t.elapsed()
    );
    let t = Instant::now();
    let snapshot = Arc::new(PreparedSnapshot::from_bytes(bytes).unwrap());
    let open_cost = t.elapsed();
    println!(
        "  open (validate only): {open_cost:.2?} — {:.0}x faster than parse + prepare",
        eager_cost.as_secs_f64() / open_cost.as_secs_f64().max(1e-9)
    );
    let shared = snapshot.document().unwrap(); // decoded once, shared after
    let plan = CompiledQuery::compile("count(//item)").unwrap();
    println!(
        "  count(//item) -> {:?}",
        plan.run_prepared(&shared).unwrap().value
    );

    // A corrupt image is rejected, never misread.
    let mut broken = PreparedSnapshot::to_bytes(&eager);
    let last = broken.len() - 1;
    broken[last] ^= 0xff;
    println!(
        "  corrupt image: {}",
        PreparedSnapshot::from_bytes(broken).unwrap_err()
    );

    // Snapshots serve through the catalog and the async pool directly.
    catalog.insert_snapshot("auction-img", &snapshot).unwrap();
    let pool = AsyncEngine::builder().workers(2).build();
    let f = pool.submit_snapshot(&snapshot, "count(//bid)").unwrap();
    println!(
        "  pool submit_snapshot count(//bid) -> {:?}",
        f.wait().unwrap().unwrap().value
    );
    pool.shutdown();

    // -- Tree provider: non-XML sources, same pipeline. -------------------
    println!("\n== tree provider (json) ==\n");
    let json = r#"{
        "orders": [
            {"id": 1, "total": 30, "lines": [{"sku": "a"}, {"sku": "b"}]},
            {"id": 2, "total": 55, "lines": [{"sku": "c"}]}
        ]
    }"#;
    catalog
        .insert_tree("orders", &JsonProvider::new(json))
        .unwrap();
    for q in ["count(//orders)", "count(//sku)", "//lines/sku"] {
        let out = catalog.evaluate_on("orders", q).unwrap();
        println!("  {q:<18} -> {:?}", out.value);
    }

    println!("\n  {}", catalog.stats());
}
