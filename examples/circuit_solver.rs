//! Solving the circuit value problem with an XPath engine — the
//! Theorem 3.2 reduction as an application.
//!
//! Builds the carry-bit circuit of Figure 2 (plus a larger random circuit),
//! reduces "does the circuit output true?" to "is the Core XPath query
//! result non-empty?", compiles the reduction query once per instance and
//! evaluates it through the compiled pipeline (which selects the
//! linear-time Core XPath plan).
//!
//! ```bash
//! cargo run --example circuit_solver
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval::circuits::{carry_bit_circuit, carry_bit_inputs, random_monotone_circuit};
use xpeval::prelude::*;
use xpeval::reductions::circuit_to_core_xpath;

fn main() {
    println!("== Figure 2: carry bit of a 2-bit adder, computed by an XPath query ==\n");
    let circuit = carry_bit_circuit();
    println!("   a + b | carry (XPath says)");
    println!("   ------+-------------------");
    for a in 0..4u8 {
        for b in 0..4u8 {
            let inputs = carry_bit_inputs(a, b);
            let reduction = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
            let compiled = CompiledQuery::from_expr(reduction.query.clone());
            let out = compiled.run(&reduction.document).unwrap();
            let carry = !out.value.expect_nodes().is_empty();
            println!("   {a} + {b} | {carry}");
            // Sanity: the query agrees with evaluating the circuit directly.
            assert_eq!(carry, circuit.evaluate(&inputs).unwrap());
        }
    }

    println!("\n== A random 40-gate monotone circuit ==\n");
    let (big, inputs) = random_monotone_circuit(&mut StdRng::seed_from_u64(2024), 8, 40);
    let reduction = circuit_to_core_xpath(&big, &inputs, false).unwrap();
    let compiled = CompiledQuery::from_expr(reduction.query.clone());
    let report = compiled.report();
    println!(
        "generated document : {} nodes (tree of height {})",
        reduction.document.len(),
        reduction.document.height()
    );
    println!(
        "generated query    : {} AST nodes, fragment = {} ({}), plan = {:?}",
        compiled.expr().size(),
        report.fragment,
        report.complexity,
        compiled.strategy()
    );
    let out = compiled.run(&reduction.document).unwrap();
    let value = !out.value.expect_nodes().is_empty();
    println!("circuit value      : {value}");
    assert_eq!(value, big.evaluate(&inputs).unwrap());
    println!("(matches direct circuit evaluation)");
}
