//! Comparing the evaluation strategies on the paper's pathological query
//! family: the naive (re-evaluation) strategy of pre-2002 engines against
//! the context-value-table dynamic program, the linear-time Core XPath
//! evaluator and the parallel LOGCFL evaluator.
//!
//! ```bash
//! cargo run --release --example engine_comparison
//! ```

use std::time::Instant;
use xpeval::engine::{DpEvaluator, NaiveEvaluator, ParallelEvaluator};
use xpeval::prelude::*;
use xpeval::workloads::{auction_site_document, blowup_document, blowup_query};

fn main() {
    // Part 1: exponential vs polynomial combined complexity.
    println!("== //a/b/parent::a/b/... on a document with 3 b-children ==\n");
    let doc = blowup_document(3);
    println!("reps | naive step-contexts | naive max list | cvt step-contexts | cvt table entries");
    println!("-----+---------------------+----------------+-------------------+------------------");
    for reps in 1..=8 {
        let query = blowup_query(reps);
        let mut naive = NaiveEvaluator::new(&doc);
        naive.evaluate(&query).unwrap();
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        println!(
            "{reps:4} | {:19} | {:14} | {:17} | {:17}",
            naive.stats().step_context_evaluations,
            naive.stats().max_intermediate_list,
            dp.stats().step_context_evaluations,
            dp.table_entries()
        );
    }
    println!("\nThe naive columns triple per repetition (3^m); the CVT columns grow by a constant.");

    // Part 2: all strategies agree, with different costs, on a pXPath query.
    println!("\n== strategy comparison on a pXPath query over an auction document ==\n");
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2003);
    let doc = auction_site_document(&mut rng, 200);
    let query = parse_query("//item[bid/@increase > 6]/name").unwrap();
    let report = xpeval::syntax::classify(&query);
    println!("query: //item[bid/@increase > 6]/name   (fragment: {}, {})\n", report.fragment, report.complexity);

    let reference = Engine::new(EvalStrategy::ContextValueTable).evaluate(&doc, &query).unwrap();
    let expected = reference.expect_nodes().len();

    for (name, strategy) in [
        ("context-value table (DP)", EvalStrategy::ContextValueTable),
        ("naive re-evaluation", EvalStrategy::Naive),
        ("singleton-success (sequential)", EvalStrategy::SingletonSuccess),
        ("parallel x2", EvalStrategy::Parallel { threads: 2 }),
        ("parallel x4", EvalStrategy::Parallel { threads: 4 }),
    ] {
        let engine = Engine::new(strategy);
        let start = Instant::now();
        let value = engine.evaluate(&doc, &query).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(value.expect_nodes().len(), expected);
        println!("{name:32} -> {expected} nodes in {:>10.3} us", elapsed.as_secs_f64() * 1e6);
    }

    // Part 3: the recommended engine per fragment.
    println!("\n== Engine::recommended_for ==\n");
    for src in ["/a/b/c", "//a[not(child::b)]", "//a[position() = last()]", "count(//a) > 2"] {
        let q = parse_query(src).unwrap();
        let engine = Engine::recommended_for(&q, 4);
        println!("{src:35} -> {:?}", engine.strategy());
    }

    // Part 4: the ParallelEvaluator used directly.
    let direct = ParallelEvaluator::new(&doc, 4).evaluate(&query).unwrap();
    assert_eq!(direct.expect_nodes().len(), expected);
}
