//! Comparing the evaluation strategies on the paper's pathological query
//! family: the naive (re-evaluation) strategy of pre-2002 engines against
//! the context-value-table dynamic program, the linear-time Core XPath
//! evaluator and the parallel LOGCFL evaluator — all driven through one
//! compiled query per family member.
//!
//! ```bash
//! cargo run --release --example engine_comparison
//! ```

use std::time::Instant;
use xpeval::prelude::*;
use xpeval::workloads::{auction_site_document, blowup_document, blowup_query};

fn main() {
    // Part 1: exponential vs polynomial combined complexity, read off the
    // unified EvalStats of the two strategies.
    println!("== //a/b/parent::a/b/... on a document with 3 b-children ==\n");
    let doc = blowup_document(3);
    println!("reps | naive step-contexts | naive max list | cvt step-contexts | cvt table entries");
    println!("-----+---------------------+----------------+-------------------+------------------");
    for reps in 1..=8 {
        let compiled = CompiledQuery::from_expr(blowup_query(reps));
        let naive = compiled
            .clone()
            .with_strategy(EvalStrategy::Naive)
            .run(&doc)
            .unwrap();
        let cvt = compiled
            .with_strategy(EvalStrategy::ContextValueTable)
            .run(&doc)
            .unwrap();
        println!(
            "{reps:4} | {:19} | {:14} | {:17} | {:17}",
            naive.stats.step_context_evaluations,
            naive.stats.max_intermediate_list,
            cvt.stats.step_context_evaluations,
            cvt.stats.table_entries
        );
    }
    println!(
        "\nThe naive columns triple per repetition (3^m); the CVT columns grow by a constant."
    );

    // Part 2: all strategies agree, with different costs, on a pXPath query.
    println!("\n== strategy comparison on a pXPath query over an auction document ==\n");
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2003);
    let doc = auction_site_document(&mut rng, 200);
    let compiled = CompiledQuery::compile("//item[bid/@increase > 6]/name").unwrap();
    let report = compiled.report();
    println!(
        "query: {}   (fragment: {}, {})\n",
        compiled.source(),
        report.fragment,
        report.complexity
    );

    let reference = compiled
        .clone()
        .with_strategy(EvalStrategy::ContextValueTable)
        .run(&doc)
        .unwrap()
        .value;
    let expected = reference.expect_nodes().len();

    for (name, strategy) in [
        ("context-value table (DP)", EvalStrategy::ContextValueTable),
        ("naive re-evaluation", EvalStrategy::Naive),
        (
            "singleton-success (sequential)",
            EvalStrategy::SingletonSuccess,
        ),
        ("parallel x2", EvalStrategy::Parallel { threads: 2 }),
        ("parallel x4", EvalStrategy::Parallel { threads: 4 }),
    ] {
        let plan = compiled.clone().with_strategy(strategy);
        let start = Instant::now();
        let out = plan.run(&doc).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(out.value.expect_nodes().len(), expected);
        println!(
            "{name:32} -> {expected} nodes in {:>10.3} us",
            elapsed.as_secs_f64() * 1e6
        );
    }

    // Part 3: the plan the compiler picks per fragment.
    println!("\n== automatic plan selection ==\n");
    let opts = CompileOptions {
        threads: 4,
        ..CompileOptions::default()
    };
    for src in [
        "/a/b/c",
        "//a[not(child::b)]",
        "//a[position() = last()]",
        "count(//a) > 2",
    ] {
        let compiled = CompiledQuery::compile_with(src, &opts).unwrap();
        println!("{src:35} -> {:?}", compiled.strategy());
    }

    // Part 4: the auto-selected plan (parallel, for this pXPath query),
    // served repeatedly through an engine.  The cache reports itself as
    // one Display summary line — no field-by-field printing.
    let engine = Engine::builder().threads(4).plan_cache_capacity(64).build();
    let auto = engine.compile("//item[bid/@increase > 6]/name").unwrap();
    assert!(matches!(auto.strategy(), EvalStrategy::Parallel { .. }));
    for _ in 0..3 {
        let direct = engine
            .evaluate_str(&doc, "//item[bid/@increase > 6]/name")
            .unwrap();
        assert_eq!(direct.expect_nodes().len(), expected);
    }
    println!(
        "\nplan cache after one compile + 3 serves: {}",
        engine.cache_stats()
    );
}
