//! Serving the engine to many concurrent clients through the async layer:
//! a worker-pool executor with a bounded submission queue, backpressure,
//! and observable `ServeStats`.
//!
//! ```bash
//! cargo run --release --example async_serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use xpeval::prelude::*;
use xpeval::workloads::auction_site_document;

/// A small serving mix over the auction document.
const QUERIES: [&str; 6] = [
    "//item[bid/@increase > 6]/name",
    "/site/people/person[child::watches]/name",
    "count(//bid)",
    "/site/regions/europe/item/name",
    "/site/people/person[last()]",
    "count(//item[child::bid])",
];

/// Result "weight": node count for node sets, 1 for scalars.
fn weight(v: &Value) -> usize {
    match v {
        Value::NodeSet(ns) => ns.len(),
        _ => 1,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2003);
    let doc = Arc::new(auction_site_document(&mut rng, 150));

    // One engine, shared: the pool's workers clone the handle, so every
    // plan compiled by any worker lands in the same sharded cache.
    let engine = Engine::builder()
        .strategy(EvalStrategy::ContextValueTable)
        .plan_cache_capacity(256)
        .build();
    let prepared = engine.prepare_keyed(1, &doc);
    let pool = AsyncEngine::builder()
        .engine(engine.clone())
        .workers(4)
        .queue_capacity(32)
        .build();

    // Part 1: a synchronous reference loop, for comparison.
    let rounds = 24usize;
    let start = Instant::now();
    let mut sync_nodes = 0usize;
    for _ in 0..rounds {
        for q in QUERIES {
            let out = engine.query_str_prepared(&prepared, q).unwrap();
            sync_nodes += weight(&out.value);
        }
    }
    let sync_elapsed = start.elapsed();

    // Part 2: the same workload fanned out from 8 client threads through
    // the bounded queue.  Clients use the blocking `submit`, so a full
    // queue simply slows submission down instead of dropping work.
    let clients = 8usize;
    let start = Instant::now();
    let async_nodes: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let pool = &pool;
            let prepared = &prepared;
            handles.push(scope.spawn(move || {
                let mut nodes = 0usize;
                for r in 0..rounds / clients {
                    // Batches and single submissions mix freely.
                    if (c + r) % 2 == 0 {
                        let fut = pool.submit_batch(prepared, &QUERIES).unwrap();
                        for res in fut.wait().unwrap() {
                            nodes += weight(&res.unwrap().value);
                        }
                    } else {
                        let futures: Vec<_> = QUERIES
                            .iter()
                            .map(|q| pool.submit(prepared, q).unwrap())
                            .collect();
                        for fut in futures {
                            nodes += weight(&fut.wait().unwrap().unwrap().value);
                        }
                    }
                }
                nodes
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let async_elapsed = start.elapsed();

    // Same answers on both paths (the async side ran fewer rounds only if
    // clients didn't divide rounds evenly).
    let per_round = sync_nodes / rounds;
    assert_eq!(async_nodes / (rounds / clients * clients), per_round);

    println!("== async serving vs the synchronous loop ==\n");
    println!(
        "workload: {} queries x {rounds} rounds over {} nodes",
        QUERIES.len(),
        doc.len()
    );
    println!("sync loop : {sync_elapsed:>10.2?}");
    println!("{clients} clients : {async_elapsed:>10.2?} (4 workers, queue 32)");

    // Part 3: backpressure is observable, not implicit: a try_submit
    // burst larger than the queue gets explicit `Full` rejections.
    let burst: Vec<_> = (0..64)
        .map(|_| pool.try_submit(&prepared, "count(//person)"))
        .collect();
    let rejected = burst.iter().filter(|r| r.is_err()).count();
    for accepted in burst.into_iter().flatten() {
        accepted.wait().unwrap().unwrap();
    }
    println!("\nburst of 64 try_submit against a 32-slot queue: {rejected} rejected with TrySubmitError::Full");

    // Part 4: every layer reports one summary line (the shared Display
    // surface of CacheStats / ServeStats).
    println!("\n== observability ==\n");
    println!("plan cache : {}", engine.cache_stats());
    println!("doc cache  : {}", engine.document_cache_stats());
    let stats = pool.shutdown(); // graceful: drains accepted work first
    println!("serve pool : {stats}");
    for (i, w) in stats.per_worker.iter().enumerate() {
        println!("  worker {i} : {w}");
    }
    assert_eq!(stats.panicked, 0);
    assert_eq!(stats.submitted, stats.completed);
}
