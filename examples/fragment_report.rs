//! Fragment classification report — Figure 1 as a tool.
//!
//! Feeds a mixed corpus of queries to the classifier and prints which
//! fragment each belongs to, what combined complexity the paper assigns to
//! that fragment, and which evaluation strategy this library recommends.
//! Pass your own queries as command-line arguments to classify them instead.
//!
//! ```bash
//! cargo run --example fragment_report
//! cargo run --example fragment_report -- "//a[not(b)]" "//a[position()=2]"
//! ```

use xpeval::prelude::*;
use xpeval::syntax::normalize::{expand_iterated_predicates, push_negation_inward};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default_corpus = vec![
        "/catalog/product/name".to_string(),
        "//product[price and not(discontinued)]".to_string(),
        "//product[position() = last()]".to_string(),
        "//product[@category = 'tools']/name".to_string(),
        "//product[count(review) > 3]".to_string(),
        "//review[rating > 4][position() <= 10]".to_string(),
        "//product[starts-with(@sku, 'X-')]".to_string(),
        "//a[not(b[not(c)])]".to_string(),
    ];
    let corpus = if args.is_empty() {
        default_corpus
    } else {
        args
    };

    for src in corpus {
        match parse_query(&src) {
            Err(e) => println!("{src}\n  !! parse error: {e}\n"),
            Ok(query) => {
                let report = xpeval::syntax::classify(&query);
                // Parsing is not the whole admission check: compilation
                // also validates function calls (unknown names, arity)
                // against the engine's library.
                let compiled = match CompiledQuery::compile_with(
                    &src,
                    &CompileOptions {
                        threads: 4,
                        ..CompileOptions::default()
                    },
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        println!("{src}\n  !! compile error: {e}\n");
                        continue;
                    }
                };
                println!("{src}");
                println!("  least fragment      : {}", report.fragment);
                println!("  combined complexity : {}", report.complexity);
                println!(
                    "  parallelizable      : {}",
                    if report.fragment.is_parallelizable() {
                        "yes (in NC²)"
                    } else {
                        "not known (P-hard fragment)"
                    }
                );
                println!("  compiled plan       : {:?}", compiled.strategy());
                if compiled.fragment() != report.fragment {
                    println!(
                        "  after normalization : {} — the compiler's Remark 5.2 merge lowered the fragment",
                        compiled.fragment()
                    );
                }
                println!(
                    "  features            : {} steps, {} predicates, negation depth {}, position/last: {}",
                    report.features.step_count,
                    report.features.predicate_count,
                    report.features.negation_depth,
                    report.features.uses_position_or_last
                );
                // Show what normalization would do (Remark 5.2 / Theorem 5.9).
                let merged = expand_iterated_predicates(&query);
                if merged != query {
                    let merged_report = xpeval::syntax::classify(&merged);
                    println!(
                        "  after merging iterated predicates (Remark 5.2): {} — {}",
                        merged_report.fragment, merged_report.complexity
                    );
                }
                let pushed = push_negation_inward(&query);
                if pushed != query {
                    println!("  after pushing negation inward (Thm 5.9): {pushed}");
                }
                println!();
            }
        }
    }
}
