//! The index-aware axes of a prepared document: per-parent tag buckets for
//! `child::tag`, preorder-interval complements for `following`/`preceding`,
//! and positional child predicates answered from the position tables — plus
//! the tag-selectivity signal the automatic strategy choice consumes.
//!
//! ```bash
//! cargo run --release --example prepared_axes
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use xpeval::prelude::*;
use xpeval::workloads::auction_site_document;

fn time<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let doc = auction_site_document(&mut rng, 600);
    println!("auction document: {} nodes", doc.len());

    let (prepared, built) = time(|| PreparedDocument::new(doc.clone()));
    println!("prepared indexes built in {built:?}\n");

    // One query per newly indexed axis; the strategy is pinned so both
    // sides run the identical algorithm and the difference is the index.
    let queries = [
        ("child buckets", "/site/people/person/name"),
        ("following complement", "/descendant::seller/following::bid"),
        ("preceding complement", "/descendant::bid/preceding::seller"),
        ("positional pick", "/site/people/person[300]/name"),
    ];
    for (what, src) in queries {
        let q = CompiledQuery::compile(src)
            .expect("query compiles")
            .with_strategy(EvalStrategy::ContextValueTable);
        let (plain, t_plain) = time(|| q.run(&doc).unwrap().value);
        let (fast, t_fast) = time(|| q.run_prepared(&prepared).unwrap().value);
        assert_eq!(plain, fast, "{src}");
        println!(
            "{what:<22} {src:<44} {:>5} nodes  unprepared {t_plain:?}, prepared {t_fast:?}",
            fast.expect_nodes().len(),
        );
    }

    // Tag selectivity feeds the plan: a pXPath query on a rare tag degrades
    // its auto-selected parallel plan to sequential Singleton-Success.
    println!();
    for src in [
        "//person[position() = last()]",
        "//europe[position() = last()]",
    ] {
        let q = CompiledQuery::compile(src).expect("query compiles");
        println!(
            "{src:<34} compiled plan {:?}, on this document {:?}",
            q.strategy(),
            q.strategy_for_source(&prepared),
        );
    }
}
