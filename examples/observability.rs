//! The unified telemetry layer end to end: a sampled per-opcode query
//! trace rendered as a profile table, the workspace `*Stats` structs
//! published into one metrics registry, serve-side request lifecycle
//! histograms, and the Prometheus text exposition that ties it together.
//!
//! ```bash
//! cargo run --release --example observability
//! ```
//!
//! The Prometheus dump at the end is self-validated with the crate's own
//! exposition-format parser, so CI can scrape this example's output.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xpeval::prelude::*;
use xpeval::workloads::auction_site_document;

/// A small query mix over the auction document, spanning the fragments.
const QUERIES: [&str; 4] = [
    "//item[bid/@increase > 6]/name",
    "/site/people/person[child::watches]/name",
    "count(//item[child::bid])",
    "/site/regions/europe/item/name",
];

fn main() {
    let mut rng = StdRng::seed_from_u64(2003);
    let doc = Arc::new(auction_site_document(&mut rng, 150));

    // One telemetry handle for the whole stack.  `with_sampling(1)` traces
    // and times every execution; production deployments would sample
    // sparsely (the query counters and the serve-side histograms stay on
    // regardless).
    let telemetry = Arc::new(Telemetry::with_sampling(1));
    let engine = Engine::builder()
        .strategy(EvalStrategy::ContextValueTable)
        .telemetry(Arc::clone(&telemetry))
        .build();
    let prepared = engine.prepare_keyed(1, &doc);

    // Part 1: per-opcode query traces.  Every dispatch through the engine
    // records compile/lower/op spans; the last sampled trace shows where a
    // query's time and candidate flow went, opcode by opcode.
    println!("== per-opcode profile of one sampled execution ==\n");
    for query in QUERIES {
        engine.evaluate_str_prepared(&prepared, query).unwrap();
    }
    let trace = telemetry
        .last_trace()
        .expect("sampling is 1, so every run traces");
    println!("{}", trace.profile_table());

    // The same query under a different strategy emits the same opcode span
    // sequence — traces are keyed to the plan, not the strategy — so
    // per-opcode profiles are comparable across strategies.
    let plan = engine.compile(QUERIES[0]).unwrap();
    telemetry.take_traces();
    for strategy in [
        EvalStrategy::ContextValueTable,
        EvalStrategy::Naive,
        EvalStrategy::SingletonSuccess,
        EvalStrategy::Parallel { threads: 2 },
    ] {
        (*plan)
            .clone()
            .with_strategy(strategy)
            .run_prepared(&prepared)
            .unwrap();
    }
    let traces = telemetry.take_traces();
    for t in &traces {
        println!(
            "strategy {:>24}: {:2} op spans, {:3} result nodes, {:>9} ns",
            t.strategy,
            t.op_spans().count(),
            t.op_spans().last().map_or(0, |s| s.candidates_out),
            t.total_nanos
        );
    }
    // Identical opcode span sequence across all four strategies.
    let first: Vec<&str> = traces[0].op_spans().map(|s| s.label.as_str()).collect();
    for t in &traces[1..] {
        let labels: Vec<&str> = t.op_spans().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, first);
    }
    println!();

    // Part 2: serve-side lifecycle metrics.  Workers attached to an engine
    // with telemetry stream queue-wait / execution / end-to-end histograms
    // and a queue-depth gauge straight into the shared registry.
    let pool = AsyncEngine::builder()
        .engine(engine.clone())
        .workers(2)
        .queue_capacity(32)
        .build();
    let futures: Vec<_> = (0..8)
        .flat_map(|_| QUERIES.iter().map(|q| pool.submit(&prepared, q).unwrap()))
        .collect();
    for fut in futures {
        fut.wait().unwrap().unwrap();
    }
    let stats = pool.stats();
    println!("== serve lifecycle ==\n");
    println!("{stats}");
    println!(
        "queue wait p50/p99: {}ns / {}ns   end-to-end p50/p99: {}ns / {}ns\n",
        stats.queue_wait.p50(),
        stats.queue_wait.p99(),
        stats.end_to_end.p50(),
        stats.end_to_end.p99()
    );

    // Part 3: one registry for the whole workspace.  Engine dispatch and
    // the serve workers already fed it; `MetricSource::publish` folds any
    // of the `*Stats` structs in under their source-name prefix.
    engine.cache_stats().publish(telemetry.registry());
    stats.publish(telemetry.registry());

    let prom = telemetry.render_prometheus();
    // Self-check: the dump must round-trip through the exposition parser.
    let parsed = parse_prometheus(&prom).expect("exporter emits valid exposition format");
    assert!(parsed.value("query_total").is_some());
    assert!(parsed.value("serve_end_to_end_count").is_some());
    assert!(parsed.value("plan_cache_hits").is_some());

    println!(
        "== prometheus exposition ({} samples) ==\n",
        parsed.samples.len()
    );
    println!("{prom}");
    println!("(validated: parse_prometheus round-trips the dump)");

    // CI scrape hook: write the exposition to a file for `prom_check`.
    if let Ok(path) = std::env::var("OBSERVABILITY_PROM_OUT") {
        std::fs::write(&path, &prom).expect("write prometheus dump");
        println!("wrote {path}");
    }
}
