//! # xpeval-serve — the async serving layer
//!
//! The evaluation pipeline of `xpeval-core` is synchronous end to end: an
//! [`Engine`](xpeval_core::Engine) call occupies its caller until the
//! value is back.  That is the right shape for one client, and the wrong
//! one for many: the engine is `Sync` (sharded plan cache, memoized
//! document indexes), so under concurrent load the missing piece is purely
//! *front-of-house* — something that accepts queries from many clients,
//! keeps every core busy, and pushes back when work arrives faster than it
//! can be evaluated.
//!
//! This crate is that piece, built on std only (no runtime dependency):
//!
//! * [`AsyncEngine`] — a fixed pool of workers, each holding a clone of
//!   the engine handle (clones share the caches), fed by a **bounded**
//!   MPMC queue.
//! * **Backpressure** — [`AsyncEngine::try_submit`] fails fast with
//!   [`TrySubmitError::Full`] when the queue is at capacity;
//!   [`AsyncEngine::submit`] blocks until a slot drains; under the
//!   non-default `tokio` feature, `submit_async` awaits the slot.
//! * [`QueryFuture`] — the pending result: a plain
//!   [`std::future::Future`], awaitable from any runtime, with a blocking
//!   [`QueryFuture::wait`] for threads and the minimal own executor
//!   [`block_on`] in between.
//! * **Per-submission deadlines** — [`AsyncEngine::submit_with_deadline`]
//!   bounds how long a job may *queue*: a job whose deadline passes while
//!   it waits is dropped at dequeue (it never runs), its future resolves
//!   to [`JobExpired`], and the drop is counted in
//!   [`ServeStats::expired`].
//! * **Named documents** — [`AsyncEngine::submit_named`] targets a
//!   document in an `xpeval_catalog::Catalog` by name instead of shipping
//!   an `Arc`; the worker resolves the name when the job runs, so it
//!   always evaluates the current generation and repeats hit the
//!   catalog's (query × document) artifact cache.
//! * **Snapshot submissions** — [`AsyncEngine::submit_snapshot`] accepts
//!   a zero-copy `xpeval_backends::PreparedSnapshot`: workers share one
//!   lazily-decoded `PreparedDocument` behind the snapshot's `Arc`, so a
//!   prepared artifact written offline serves concurrent queries without
//!   re-parsing or re-indexing.
//! * **Graceful shutdown** — [`AsyncEngine::shutdown`] stops intake,
//!   drains every accepted job, joins the workers and returns the final
//!   [`ServeStats`]; late submissions fail with
//!   [`TrySubmitError::ShutDown`].
//! * [`ServeStats`] — queue depth and high-watermark, full request
//!   lifecycle latency histograms (queue-wait, execution and end-to-end,
//!   each with p50/p90/p99), expired-job and per-worker
//!   completed/panicked counters — the serving-side sibling of
//!   `xpeval_core::CacheStats`.  It implements
//!   `xpeval_obs::MetricSource`, so the same snapshot renders as a
//!   summary line, a JSON object, or a Prometheus scrape; and when the
//!   pool's engine carries an `xpeval_obs::Telemetry` handle, workers
//!   stream the same distributions into its metrics registry live.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use xpeval_dom::{parse_xml, PreparedDocument};
//! use xpeval_serve::AsyncEngine;
//!
//! let pool = AsyncEngine::builder().workers(2).queue_capacity(64).build();
//! let doc = Arc::new(PreparedDocument::new(
//!     parse_xml("<lib><book/><book/></lib>").unwrap(),
//! ));
//!
//! // Fan out; each submission returns immediately with a future.
//! let futures: Vec<_> = (0..8)
//!     .map(|_| pool.submit(&doc, "count(//book)").unwrap())
//!     .collect();
//! for f in futures {
//!     let output = f.wait().unwrap().unwrap();
//!     assert_eq!(output.value, xpeval_core::Value::Number(2.0));
//! }
//!
//! let stats = pool.shutdown(); // drains in-flight work, joins workers
//! assert_eq!(stats.completed, 8);
//! ```

pub mod future;
pub mod pool;
pub(crate) mod queue;
pub mod stats;
#[cfg(feature = "tokio")]
pub mod submit_async;

pub use future::{block_on, DeadlineResult, JobExpired, JobLost, QueryFuture};
pub use pool::{
    AsyncEngine, AsyncEngineBuilder, CatalogMutationResult, CatalogQueryResult, QueryResult,
    TrySubmitError,
};
pub use stats::{ServeStats, WorkerStats};
#[cfg(feature = "tokio")]
pub use submit_async::SubmitFuture;
