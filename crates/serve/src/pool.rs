//! The worker-pool executor: [`AsyncEngine`], its builder, and the
//! submission surface.
//!
//! An [`AsyncEngine`] owns a fixed pool of worker threads, each holding
//! its own clone of the underlying [`Engine`] (clones share the plan and
//! document caches — [`Engine`] is a cheap handle).  Submissions cross a
//! bounded MPMC queue; workers pull jobs, evaluate them through the
//! compile-once pipeline and complete the caller's [`QueryFuture`].
//!
//! **Backpressure.**  The queue holds at most `queue_capacity` jobs.
//! [`AsyncEngine::try_submit`] fails fast with [`TrySubmitError::Full`];
//! [`AsyncEngine::submit`] blocks the caller until a slot drains.  Under
//! the non-default `tokio` feature, `submit_async` awaits the slot instead
//! of blocking.
//!
//! **Graceful shutdown.**  [`AsyncEngine::begin_shutdown`] stops intake;
//! every already-accepted job still runs to completion.
//! [`AsyncEngine::shutdown`] additionally joins the workers and returns
//! the final [`ServeStats`].  Dropping the engine shuts it down the same
//! way.

use crate::future::{oneshot, DeadlineResult, JobExpired, QueryFuture};
use crate::queue::{BoundedQueue, Job};
use crate::stats::{ServeStats, WorkerStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use xpeval_backends::PreparedSnapshot;
use xpeval_catalog::{Catalog, CatalogError, LiveDocument, MutationOutcome};
use xpeval_core::{default_threads, Bindings, CompiledQuery, Engine, EvalError, QueryOutput};
use xpeval_dom::{Document, PreparedDocument};
use xpeval_obs::Histogram;

/// Why a non-blocking submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The bounded submission queue is at capacity — backpressure.  Retry,
    /// block via [`AsyncEngine::submit`], or shed the request.
    Full,
    /// The pool is shutting down and accepts no further work.
    ShutDown,
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::Full => write!(f, "submission queue is full"),
            TrySubmitError::ShutDown => write!(f, "serving pool is shutting down"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// What a submitted query resolves to: the full
/// [`QueryOutput`] (value, work counters, fragment) or the evaluation
/// error — exactly what the synchronous `Engine::query_str_prepared`
/// returns.
pub type QueryResult = Result<QueryOutput, EvalError>;

/// What a catalog-named submission resolves to: the query output, or a
/// [`CatalogError`] (unknown document name, or the evaluation error) —
/// exactly what the synchronous `Catalog::evaluate_on` returns.
pub type CatalogQueryResult = Result<QueryOutput, CatalogError>;

/// What a catalog-named mutation submission resolves to: the
/// [`MutationOutcome`] (closure return value, post-edit revision, scoped
/// invalidation counts), or [`CatalogError::UnknownDocument`] — exactly
/// what the synchronous `Catalog::mutate_named` returns.
pub type CatalogMutationResult<T> = Result<MutationOutcome<T>, CatalogError>;

/// Shared state between the [`AsyncEngine`] handle and its workers.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) queue: BoundedQueue,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    /// Request lifecycle distributions, all in nanoseconds: enqueue→dequeue,
    /// dequeue→done, enqueue→done.  Atomic log2 histograms — workers record
    /// into them lock-free.
    queue_wait: Histogram,
    execution: Histogram,
    end_to_end: Histogram,
    workers: Vec<WorkerCounters>,
}

#[derive(Default)]
struct WorkerCounters {
    completed: AtomicU64,
    panicked: AtomicU64,
}

/// Configures and builds an [`AsyncEngine`].
#[derive(Debug)]
pub struct AsyncEngineBuilder {
    engine: Option<Engine>,
    workers: usize,
    queue_capacity: Option<usize>,
}

impl AsyncEngineBuilder {
    /// Default configuration: one worker per available core, a queue of
    /// 16 slots per worker, and a default [`Engine`].
    pub fn new() -> Self {
        AsyncEngineBuilder {
            engine: None,
            workers: default_threads(),
            queue_capacity: None,
        }
    }

    /// Serves through this engine (a clone of its handle goes to every
    /// worker, so its plan/document caches are shared with the caller).
    /// Defaults to `Engine::builder().build()`.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Worker threads in the pool (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Capacity of the bounded submission queue — the backpressure knob
    /// (clamped to at least 1).  Defaults to 16 slots per worker.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// Builds the pool and spawns its workers.
    pub fn build(self) -> AsyncEngine {
        let workers = self.workers.max(1);
        let queue_capacity = self.queue_capacity.unwrap_or(workers * 16);
        let engine = self
            .engine
            .unwrap_or_else(|| Engine::builder().auto_strategy().build());
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(queue_capacity),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            execution: Histogram::new(),
            end_to_end: Histogram::new(),
            workers: (0..workers).map(|_| WorkerCounters::default()).collect(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xpeval-serve-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning a serve worker thread")
            })
            .collect();
        AsyncEngine { shared, handles }
    }
}

impl Default for AsyncEngineBuilder {
    fn default() -> Self {
        AsyncEngineBuilder::new()
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    // The worker's own engine handle: clones share the plan and document
    // caches, so a plan compiled by any worker is a hit for all.
    let engine = shared.engine.clone();
    // When the engine carries a telemetry handle, the same lifecycle
    // distributions also stream into its metrics registry, so a scrape
    // sees the pool live rather than only at shutdown.  The handles are
    // resolved once here: per-job recording is then purely atomic.
    let live = engine.telemetry().map(|t| {
        let registry = t.registry();
        (
            registry.histogram("serve_queue_wait_ns"),
            registry.histogram("serve_execution_ns"),
            registry.histogram("serve_end_to_end_ns"),
            registry.gauge("serve_queue_depth"),
        )
    });
    while let Some((job, waited)) = shared.queue.pop() {
        shared.queue_wait.record_duration(waited);
        let enqueued = job.enqueued;
        let counters = &shared.workers[index];
        // A panicking job must not take the worker (or the pool) down: the
        // submitter's future resolves to JobLost (its sender is dropped
        // during unwinding) and the worker moves on.
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| (job.run)(&engine))) {
            Ok(()) => counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => counters.panicked.fetch_add(1, Ordering::Relaxed),
        };
        let ran = started.elapsed();
        let total = enqueued.elapsed();
        shared.execution.record_duration(ran);
        shared.end_to_end.record_duration(total);
        if let Some((wait_h, exec_h, e2e_h, depth_g)) = &live {
            wait_h.record_duration(waited);
            exec_h.record_duration(ran);
            e2e_h.record_duration(total);
            depth_g.set(shared.queue.depth() as i64);
        }
    }
}

/// A concurrent front end over an [`Engine`]: a fixed worker pool fed by a
/// bounded submission queue.
///
/// See the [module docs](self) for the backpressure and shutdown
/// semantics.  All submission entry points take `&self`; the engine can be
/// shared across client threads behind an `Arc` (or by reference from
/// scoped threads).
pub struct AsyncEngine {
    pub(crate) shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for AsyncEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncEngine")
            .field("workers", &self.handles.len())
            .field("queue_capacity", &self.shared.queue.capacity())
            .field("queue_depth", &self.shared.queue.depth())
            .finish()
    }
}

impl AsyncEngine {
    /// Starts configuring a pool.
    pub fn builder() -> AsyncEngineBuilder {
        AsyncEngineBuilder::new()
    }

    /// A pool with default configuration (one worker per core).
    pub fn new() -> Self {
        AsyncEngineBuilder::new().build()
    }

    /// The underlying engine handle (shared with every worker).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    pub(crate) fn enqueue<T>(
        &self,
        job: Job,
        future: QueryFuture<T>,
        blocking: bool,
    ) -> Result<QueryFuture<T>, TrySubmitError> {
        let pushed = if blocking {
            self.shared.queue.push_blocking(job)
        } else {
            self.shared.queue.try_push(job)
        };
        match pushed {
            // Acceptance is counted by the queue itself, under its lock.
            Ok(()) => Ok(future),
            Err(e) => {
                let counter = match e {
                    TrySubmitError::Full => &self.shared.rejected_full,
                    TrySubmitError::ShutDown => &self.shared.rejected_shutdown,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Packages a closure into a queueable job plus the future resolving
    /// to its return value.
    pub(crate) fn task_job<T, F>(f: F) -> (Job, QueryFuture<T>)
    where
        F: FnOnce(&Engine) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sender, future) = oneshot();
        let job = Job::new(Box::new(move |engine: &Engine| sender.send(f(engine))));
        (job, future)
    }

    /// [`AsyncEngine::task_job`] with a deadline: the future resolves to
    /// `Ok(T)` when a worker ran the closure, or `Err(JobExpired)` when
    /// the deadline passed while the job was still queued (it is dropped
    /// at dequeue and never runs).
    ///
    /// The one-shot sender must be reachable from whichever of the two
    /// paths fires — run or expire — so it travels in a shared take-once
    /// slot; the queue guarantees exactly one of them is invoked.
    pub(crate) fn deadline_task_job<T, F>(
        f: F,
        deadline: Instant,
    ) -> (Job, QueryFuture<DeadlineResult<T>>)
    where
        F: FnOnce(&Engine) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sender, future) = oneshot();
        let slot = Arc::new(Mutex::new(Some(sender)));
        let run_slot = Arc::clone(&slot);
        let mut job = Job::new(Box::new(move |engine: &Engine| {
            if let Some(sender) = run_slot.lock().unwrap().take() {
                sender.send(Ok(f(engine)));
            }
        }));
        job.deadline = Some(deadline);
        job.expire = Some(Box::new(move || {
            if let Some(sender) = slot.lock().unwrap().take() {
                sender.send(Err(JobExpired));
            }
        }));
        (job, future)
    }

    pub(crate) fn query_job(
        doc: &Arc<PreparedDocument>,
        query: &str,
    ) -> (Job, QueryFuture<QueryResult>) {
        let doc = Arc::clone(doc);
        let query = query.to_string();
        Self::task_job(move |engine| {
            engine
                .compile(&query)
                .and_then(|plan| plan.run_prepared(&doc))
        })
    }

    fn query_job_bound(
        doc: &Arc<PreparedDocument>,
        query: &str,
        bindings: Bindings,
    ) -> (Job, QueryFuture<QueryResult>) {
        let doc = Arc::clone(doc);
        let query = query.to_string();
        Self::task_job(move |engine| {
            engine
                .compile(&query)
                .and_then(|plan| plan.run_prepared_bound(&doc, &bindings))
        })
    }

    fn batch_job(
        doc: &Arc<PreparedDocument>,
        queries: &[&str],
    ) -> (Job, QueryFuture<Vec<QueryResult>>) {
        let doc = Arc::clone(doc);
        let queries: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        Self::task_job(move |engine| {
            // Compile through the shared plan cache, then multiplex the
            // whole batch over the prepared document in one call; a query
            // that fails to compile keeps its slot as an error.
            let compiled: Vec<Result<Arc<CompiledQuery>, EvalError>> =
                queries.iter().map(|q| engine.compile(q)).collect();
            let plans: Vec<&CompiledQuery> =
                compiled.iter().filter_map(|c| c.as_deref().ok()).collect();
            let mut ran = engine.evaluate_batch_prepared(&doc, &plans).into_iter();
            compiled
                .into_iter()
                .map(|c| match c {
                    Ok(_) => ran.next().expect("one result per compiled plan"),
                    Err(e) => Err(e),
                })
                .collect()
        })
    }

    /// Submits one query string against a prepared document, **blocking**
    /// while the queue is full (backpressure); wakes as soon as a worker
    /// drains a slot.  Fails only when the pool is shutting down.
    pub fn submit(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let (job, future) = Self::query_job(doc, query);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit`]: fails fast with
    /// [`TrySubmitError::Full`] instead of waiting for a slot.
    pub fn try_submit(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let (job, future) = Self::query_job(doc, query);
        self.enqueue(job, future, false)
    }

    /// [`AsyncEngine::submit`] with external variable bindings for the
    /// query's `$name` references.  The bindings are captured by value into
    /// the job; the plan cache key stays the query string alone, so many
    /// in-flight submissions of one query under different bindings share a
    /// single compilation.
    pub fn submit_bound(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
        bindings: &Bindings,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let (job, future) = Self::query_job_bound(doc, query, bindings.clone());
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_bound`].
    pub fn try_submit_bound(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
        bindings: &Bindings,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let (job, future) = Self::query_job_bound(doc, query, bindings.clone());
        self.enqueue(job, future, false)
    }

    /// [`AsyncEngine::submit`] with a per-submission deadline: if the job
    /// is still sitting in the queue when `deadline` passes, it is dropped
    /// at dequeue — **it never runs** — its future resolves to
    /// [`JobExpired`], and the drop is counted in [`ServeStats::expired`].
    /// A job a worker picked up *before* the deadline runs to completion
    /// normally (deadlines bound queueing, not execution).
    ///
    /// Blocking while the queue is full, like [`AsyncEngine::submit`].
    pub fn submit_with_deadline(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
        deadline: Instant,
    ) -> Result<QueryFuture<DeadlineResult<QueryResult>>, TrySubmitError> {
        let (job, future) = Self::deadline_query_job(doc, query, deadline);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_with_deadline`]: fails fast with
    /// [`TrySubmitError::Full`] instead of waiting for a slot.
    pub fn try_submit_with_deadline(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
        deadline: Instant,
    ) -> Result<QueryFuture<DeadlineResult<QueryResult>>, TrySubmitError> {
        let (job, future) = Self::deadline_query_job(doc, query, deadline);
        self.enqueue(job, future, false)
    }

    fn deadline_query_job(
        doc: &Arc<PreparedDocument>,
        query: &str,
        deadline: Instant,
    ) -> (Job, QueryFuture<DeadlineResult<QueryResult>>) {
        let doc = Arc::clone(doc);
        let query = query.to_string();
        Self::deadline_task_job(
            move |engine| {
                engine
                    .compile(&query)
                    .and_then(|plan| plan.run_prepared(&doc))
            },
            deadline,
        )
    }

    /// Submits a query against a **named catalog document** instead of a
    /// shipped `Arc`: the worker resolves `name` through the catalog when
    /// the job runs, so it always evaluates the *current* generation (a
    /// replacement between submit and run is picked up, and the
    /// (query × document) artifact cache serves repeats).  Resolution
    /// failure surfaces as [`CatalogError::UnknownDocument`] in the
    /// result, not as a submission error.
    ///
    /// The catalog handle is cheap to clone and shared; for plan-cache
    /// sharing between direct and named submissions, build the pool on
    /// the catalog's engine (`AsyncEngineBuilder::engine`).  Blocking
    /// while the queue is full, like [`AsyncEngine::submit`].
    pub fn submit_named(
        &self,
        catalog: &Catalog,
        name: &str,
        query: &str,
    ) -> Result<QueryFuture<CatalogQueryResult>, TrySubmitError> {
        let (job, future) = Self::named_job(catalog, name, query);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_named`].
    pub fn try_submit_named(
        &self,
        catalog: &Catalog,
        name: &str,
        query: &str,
    ) -> Result<QueryFuture<CatalogQueryResult>, TrySubmitError> {
        let (job, future) = Self::named_job(catalog, name, query);
        self.enqueue(job, future, false)
    }

    /// [`AsyncEngine::submit_named`] with a deadline: combines named
    /// resolution with the queueing bound of
    /// [`AsyncEngine::submit_with_deadline`].
    pub fn submit_named_with_deadline(
        &self,
        catalog: &Catalog,
        name: &str,
        query: &str,
        deadline: Instant,
    ) -> Result<QueryFuture<DeadlineResult<CatalogQueryResult>>, TrySubmitError> {
        let (job, future) = Self::named_deadline_job(catalog, name, query, deadline);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_named_with_deadline`]: fails
    /// fast with [`TrySubmitError::Full`] — the load-shedding shape, on
    /// both ends of the queue.
    pub fn try_submit_named_with_deadline(
        &self,
        catalog: &Catalog,
        name: &str,
        query: &str,
        deadline: Instant,
    ) -> Result<QueryFuture<DeadlineResult<CatalogQueryResult>>, TrySubmitError> {
        let (job, future) = Self::named_deadline_job(catalog, name, query, deadline);
        self.enqueue(job, future, false)
    }

    fn named_deadline_job(
        catalog: &Catalog,
        name: &str,
        query: &str,
        deadline: Instant,
    ) -> (Job, QueryFuture<DeadlineResult<CatalogQueryResult>>) {
        let catalog = catalog.clone();
        let name = name.to_string();
        let query = query.to_string();
        Self::deadline_task_job(move |_engine| catalog.evaluate_on(&name, &query), deadline)
    }

    fn named_job(
        catalog: &Catalog,
        name: &str,
        query: &str,
    ) -> (Job, QueryFuture<CatalogQueryResult>) {
        let catalog = catalog.clone();
        let name = name.to_string();
        let query = query.to_string();
        Self::task_job(move |_engine| catalog.evaluate_on(&name, &query))
    }

    /// Submits an **in-place edit** of a named catalog document
    /// (`Catalog::mutate_named`) as a pool job: the worker runs the edit
    /// closure against a [`LiveDocument`] view, the catalog applies it
    /// with incremental index maintenance, bumps the entry's revision and
    /// re-targets its plan artifacts — only those intersecting the edit's
    /// dirty subtree are dropped.
    ///
    /// Edits on one catalog serialize through the catalog's own store
    /// lock, so a mutation and the queries racing it are ordered: each
    /// query sees either the whole pre-edit snapshot or the whole
    /// post-edit one, never a half-patched index — while documents in
    /// *other* catalogs (independent tenants) proceed in parallel on the
    /// remaining workers.  Parse or build fragments *before* submitting;
    /// the closure should only apply edits.  Blocking while the queue is
    /// full, like [`AsyncEngine::submit`].
    pub fn submit_mutation_named<T, F>(
        &self,
        catalog: &Catalog,
        name: &str,
        edit: F,
    ) -> Result<QueryFuture<CatalogMutationResult<T>>, TrySubmitError>
    where
        F: FnOnce(&mut LiveDocument) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (job, future) = Self::mutation_job(catalog, name, edit);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_mutation_named`]: fails fast
    /// with [`TrySubmitError::Full`] instead of waiting for a slot.
    pub fn try_submit_mutation_named<T, F>(
        &self,
        catalog: &Catalog,
        name: &str,
        edit: F,
    ) -> Result<QueryFuture<CatalogMutationResult<T>>, TrySubmitError>
    where
        F: FnOnce(&mut LiveDocument) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (job, future) = Self::mutation_job(catalog, name, edit);
        self.enqueue(job, future, false)
    }

    fn mutation_job<T, F>(
        catalog: &Catalog,
        name: &str,
        edit: F,
    ) -> (Job, QueryFuture<CatalogMutationResult<T>>)
    where
        F: FnOnce(&mut LiveDocument) -> T + Send + 'static,
        T: Send + 'static,
    {
        let catalog = catalog.clone();
        let name = name.to_string();
        Self::task_job(move |_engine| catalog.mutate_named(&name, edit))
    }

    /// Submits a whole batch of query strings as **one** job: a worker
    /// compiles them through the shared plan cache and multiplexes them
    /// over the prepared document via `Engine::evaluate_batch_prepared`.
    /// One failing query does not poison the batch.  Blocking, like
    /// [`AsyncEngine::submit`].
    pub fn submit_batch(
        &self,
        doc: &Arc<PreparedDocument>,
        queries: &[&str],
    ) -> Result<QueryFuture<Vec<QueryResult>>, TrySubmitError> {
        let (job, future) = Self::batch_job(doc, queries);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_batch`].
    pub fn try_submit_batch(
        &self,
        doc: &Arc<PreparedDocument>,
        queries: &[&str],
    ) -> Result<QueryFuture<Vec<QueryResult>>, TrySubmitError> {
        let (job, future) = Self::batch_job(doc, queries);
        self.enqueue(job, future, false)
    }

    /// Submits a query against an *unprepared* document; the worker
    /// prepares it through the engine's document cache first (paid once
    /// per document, not per query).  Blocking, like
    /// [`AsyncEngine::submit`].
    pub fn submit_document(
        &self,
        doc: &Arc<Document>,
        query: &str,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let doc = Arc::clone(doc);
        let query = query.to_string();
        let (job, future) = Self::task_job(move |engine| {
            let prepared = engine.prepare(&doc);
            engine
                .compile(&query)
                .and_then(|plan| plan.run_prepared(&prepared))
        });
        self.enqueue(job, future, true)
    }

    /// Submits a query against a **zero-copy prepared snapshot**
    /// (`xpeval_backends::PreparedSnapshot`): the worker decodes the
    /// snapshot into its `PreparedDocument` on first touch — subsequent
    /// submissions against the same snapshot share the already-decoded
    /// `Arc` — then evaluates through the compile-once pipeline.  A
    /// corrupt or version-skewed snapshot surfaces as
    /// [`EvalError::Unsupported`] in the result, not as a submission
    /// error.  Blocking while the queue is full, like
    /// [`AsyncEngine::submit`].
    pub fn submit_snapshot(
        &self,
        snapshot: &Arc<PreparedSnapshot>,
        query: &str,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let (job, future) = Self::snapshot_job(snapshot, query);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_snapshot`].
    pub fn try_submit_snapshot(
        &self,
        snapshot: &Arc<PreparedSnapshot>,
        query: &str,
    ) -> Result<QueryFuture<QueryResult>, TrySubmitError> {
        let (job, future) = Self::snapshot_job(snapshot, query);
        self.enqueue(job, future, false)
    }

    fn snapshot_job(
        snapshot: &Arc<PreparedSnapshot>,
        query: &str,
    ) -> (Job, QueryFuture<QueryResult>) {
        let snapshot = Arc::clone(snapshot);
        let query = query.to_string();
        Self::task_job(move |engine| {
            let doc = snapshot.document().map_err(|e| EvalError::Unsupported {
                message: format!("snapshot decode failed: {e}"),
            })?;
            engine
                .compile(&query)
                .and_then(|plan| plan.run_prepared(&doc))
        })
    }

    /// Submits an arbitrary closure to run on a worker, with access to the
    /// worker's engine handle — the generic escape hatch behind the typed
    /// entry points (and the lever tests use to occupy workers
    /// deterministically).  Blocking while the queue is full.
    pub fn submit_task<T, F>(&self, f: F) -> Result<QueryFuture<T>, TrySubmitError>
    where
        F: FnOnce(&Engine) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (job, future) = Self::task_job(f);
        self.enqueue(job, future, true)
    }

    /// Non-blocking [`AsyncEngine::submit_task`].
    pub fn try_submit_task<T, F>(&self, f: F) -> Result<QueryFuture<T>, TrySubmitError>
    where
        F: FnOnce(&Engine) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (job, future) = Self::task_job(f);
        self.enqueue(job, future, false)
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> ServeStats {
        let shared = &self.shared;
        let per_worker: Vec<WorkerStats> = shared
            .workers
            .iter()
            .map(|w| WorkerStats {
                completed: w.completed.load(Ordering::Relaxed),
                panicked: w.panicked.load(Ordering::Relaxed),
            })
            .collect();
        ServeStats {
            workers: per_worker.len(),
            queue_capacity: shared.queue.capacity(),
            queue_depth: shared.queue.depth(),
            queue_high_watermark: shared.queue.high_watermark(),
            submitted: shared.queue.accepted(),
            expired: shared.queue.expired(),
            rejected_full: shared.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: shared.rejected_shutdown.load(Ordering::Relaxed),
            completed: per_worker.iter().map(|w| w.completed).sum(),
            panicked: per_worker.iter().map(|w| w.panicked).sum(),
            queue_wait: shared.queue_wait.snapshot(),
            execution: shared.execution.snapshot(),
            end_to_end: shared.end_to_end.snapshot(),
            per_worker,
        }
    }

    /// Stops accepting submissions: every later `submit`/`try_submit`
    /// fails with [`TrySubmitError::ShutDown`], submitters blocked on a
    /// full queue are woken with the same error, and workers keep draining
    /// every *already accepted* job.  Non-consuming; pair with
    /// [`AsyncEngine::shutdown`] (or drop) to also join the workers.
    pub fn begin_shutdown(&self) {
        self.shared.queue.shutdown();
    }

    /// True once [`AsyncEngine::begin_shutdown`] (or `shutdown`) ran.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.queue.is_shutting_down()
    }

    /// Graceful shutdown: stops intake, waits for the workers to drain
    /// every accepted job, joins them, and returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Default for AsyncEngine {
    fn default() -> Self {
        AsyncEngine::new()
    }
}

impl Drop for AsyncEngine {
    /// Same protocol as [`AsyncEngine::shutdown`]: accepted work is
    /// drained, then the workers are joined.
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
