//! The bounded MPMC job queue between submitters and workers.
//!
//! This is the backpressure point of the serving layer: the queue holds at
//! most `capacity` jobs, and a full queue makes [`BoundedQueue::try_push`]
//! fail fast while [`BoundedQueue::push_blocking`] waits (condvar) for a
//! worker to drain a slot.  Async submitters register a [`Waker`] instead
//! of blocking ([`BoundedQueue::push_or_register`]); every pop wakes all
//! of them (stale registrations from cancelled futures must not absorb
//! the wakeup), and losers re-register on their next poll.
//!
//! Shutdown is graceful by construction: [`BoundedQueue::shutdown`] only
//! flips a flag and wakes everyone — already-accepted jobs stay in the
//! queue and [`BoundedQueue::pop`] keeps handing them out until it is
//! empty, so workers drain all in-flight work before exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::task::Waker;
use std::time::{Duration, Instant};
use xpeval_core::Engine;

use crate::TrySubmitError;

/// A unit of work: the closure a worker runs against its own [`Engine`]
/// handle, stamped with its enqueue time so the pool can report
/// enqueue→dequeue latency — plus, for deadline-bearing submissions, the
/// instant past which the job must not run and the hook that resolves the
/// submitter's future to `JobExpired` when it is dropped.
pub(crate) struct Job {
    pub(crate) run: Box<dyn FnOnce(&Engine) + Send + 'static>,
    pub(crate) enqueued: Instant,
    /// A job still queued at this instant is dropped at dequeue instead of
    /// run ([`BoundedQueue::pop`]); `None` = no deadline.
    pub(crate) deadline: Option<Instant>,
    /// Invoked (instead of `run`) when the deadline drop happens.  Exactly
    /// one of `run`/`expire` ever fires.
    pub(crate) expire: Option<Box<dyn FnOnce() + Send + 'static>>,
}

impl Job {
    /// A job without a deadline.
    pub(crate) fn new(run: Box<dyn FnOnce(&Engine) + Send + 'static>) -> Self {
        Job {
            run,
            enqueued: Instant::now(),
            deadline: None,
            expire: None,
        }
    }
}

/// Outcome of [`BoundedQueue::push_or_register`].
#[cfg(feature = "tokio")]
pub(crate) enum PushOutcome {
    /// The job was enqueued.
    Pushed,
    /// The queue was full; the waker is registered and the job handed back
    /// for the next attempt.
    Registered(Job),
    /// The queue no longer accepts work.
    ShutDown,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
    /// Jobs ever accepted into the queue; bumped under the same lock as
    /// the push, so an accepted job is counted before any worker can pop
    /// it (a stats snapshot never sees completed > accepted).
    accepted: u64,
    /// Jobs dropped at dequeue because their deadline had passed.
    expired: u64,
    /// Deepest the queue has ever been.
    high_watermark: usize,
    /// Wakers of async submitters parked on a full queue.
    submit_waiters: Vec<Waker>,
}

pub(crate) struct BoundedQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    /// Signalled on push (workers wait here when the queue is empty).
    not_empty: Condvar,
    /// Signalled on pop (blocking submitters wait here when it is full).
    not_full: Condvar,
}

impl BoundedQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
                accepted: 0,
                expired: 0,
                high_watermark: 0,
                submit_waiters: Vec::new(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    pub(crate) fn high_watermark(&self) -> usize {
        self.state.lock().unwrap().high_watermark
    }

    /// Jobs ever accepted into the queue.
    pub(crate) fn accepted(&self) -> u64 {
        self.state.lock().unwrap().accepted
    }

    /// Jobs dropped at dequeue because their deadline had passed.
    pub(crate) fn expired(&self) -> u64 {
        self.state.lock().unwrap().expired
    }

    fn enqueue_locked(&self, state: &mut QueueState, job: Job) {
        state.jobs.push_back(job);
        state.accepted += 1;
        state.high_watermark = state.high_watermark.max(state.jobs.len());
        self.not_empty.notify_one();
    }

    /// Non-blocking enqueue; fails fast with [`TrySubmitError::Full`] under
    /// backpressure.
    pub(crate) fn try_push(&self, job: Job) -> Result<(), TrySubmitError> {
        let mut state = self.state.lock().unwrap();
        if state.shutting_down {
            return Err(TrySubmitError::ShutDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(TrySubmitError::Full);
        }
        self.enqueue_locked(&mut state, job);
        Ok(())
    }

    /// Blocking enqueue: waits until a worker drains a slot.  Only fails
    /// when the queue shuts down (before or during the wait).
    pub(crate) fn push_blocking(&self, job: Job) -> Result<(), TrySubmitError> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.shutting_down {
                return Err(TrySubmitError::ShutDown);
            }
            if state.jobs.len() < self.capacity {
                self.enqueue_locked(&mut state, job);
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap();
        }
    }

    /// Async enqueue step: pushes, or registers `waker` to be woken when a
    /// slot drains — atomically with the fullness check, so no wakeup can
    /// slip between the check and the registration.
    #[cfg(feature = "tokio")]
    pub(crate) fn push_or_register(&self, job: Job, waker: &Waker) -> PushOutcome {
        let mut state = self.state.lock().unwrap();
        if state.shutting_down {
            return PushOutcome::ShutDown;
        }
        if state.jobs.len() < self.capacity {
            self.enqueue_locked(&mut state, job);
            return PushOutcome::Pushed;
        }
        // Keep one registration per task: a re-poll replaces its old waker.
        if let Some(existing) = state.submit_waiters.iter_mut().find(|w| w.will_wake(waker)) {
            existing.clone_from(waker);
        } else {
            state.submit_waiters.push(waker.clone());
        }
        PushOutcome::Registered(job)
    }

    /// Dequeues the next job, blocking while the queue is empty; returns
    /// `None` once the queue is shutting down *and* drained, together with
    /// how long the job sat in the queue.
    ///
    /// A job whose deadline passed while it sat in the queue is **dropped
    /// here, never run**: its `expire` hook resolves the submitter's
    /// future to `JobExpired`, the drop is counted, and the pop moves on
    /// to the next job — so an expired job costs the worker one dequeue,
    /// not an evaluation.
    pub(crate) fn pop(&self) -> Option<(Job, Duration)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
                if expired {
                    state.expired += 1;
                }
                // A slot opened either way: hand it to one blocked
                // submitter, and wake *every* parked async submitter
                // (outside the lock).  All, not one: a cancelled
                // SubmitFuture leaves a stale waker behind, and waking
                // just one registration could spend the wakeup on that
                // corpse while a live submitter sleeps on a free slot.
                // Live losers simply re-register on their next poll.
                let wakers = std::mem::take(&mut state.submit_waiters);
                drop(state);
                self.not_full.notify_one();
                for waker in wakers {
                    waker.wake();
                }
                if expired {
                    // Dropped at dequeue: the job's closure never runs.
                    if let Some(expire) = job.expire {
                        expire();
                    }
                    state = self.state.lock().unwrap();
                    continue;
                }
                let waited = job.enqueued.elapsed();
                return Some((job, waited));
            }
            if state.shutting_down {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Stops accepting submissions and wakes every waiter; queued jobs are
    /// still handed out by [`BoundedQueue::pop`] until drained.
    pub(crate) fn shutdown(&self) {
        let wakers = {
            let mut state = self.state.lock().unwrap();
            state.shutting_down = true;
            std::mem::take(&mut state.submit_waiters)
        };
        self.not_empty.notify_all();
        self.not_full.notify_all();
        for waker in wakers {
            waker.wake();
        }
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.state.lock().unwrap().shutting_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn job() -> Job {
        Job::new(Box::new(|_: &Engine| {}))
    }

    fn deadline_job(
        deadline: Instant,
        expired_flag: std::sync::Arc<std::sync::Mutex<bool>>,
    ) -> Job {
        let mut job = Job::new(Box::new(|_: &Engine| {}));
        job.deadline = Some(deadline);
        job.expire = Some(Box::new(move || *expired_flag.lock().unwrap() = true));
        job
    }

    #[test]
    fn try_push_fails_fast_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(job()).is_ok());
        assert!(q.try_push(job()).is_ok());
        assert_eq!(q.try_push(job()).unwrap_err(), TrySubmitError::Full);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(job()).is_ok());
        assert_eq!(q.try_push(job()).unwrap_err(), TrySubmitError::Full);
    }

    #[test]
    fn pop_drains_in_fifo_order_then_blocks_until_shutdown() {
        let q = BoundedQueue::new(4);
        q.try_push(job()).unwrap();
        q.try_push(job()).unwrap();
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        q.shutdown();
        assert!(q.pop().is_none());
    }

    #[test]
    fn shutdown_rejects_pushes_but_pops_queued_jobs() {
        let q = BoundedQueue::new(4);
        q.try_push(job()).unwrap();
        q.shutdown();
        assert_eq!(q.try_push(job()).unwrap_err(), TrySubmitError::ShutDown);
        assert_eq!(
            q.push_blocking(job()).unwrap_err(),
            TrySubmitError::ShutDown
        );
        assert!(q.pop().is_some(), "accepted work survives shutdown");
        assert!(q.pop().is_none());
    }

    #[test]
    fn expired_jobs_are_dropped_at_dequeue() {
        use std::sync::{Arc, Mutex};
        let q = BoundedQueue::new(4);
        let hit = Arc::new(Mutex::new(false));
        // Already past its deadline when popped.
        q.try_push(deadline_job(
            Instant::now() - Duration::from_millis(1),
            Arc::clone(&hit),
        ))
        .unwrap();
        q.try_push(job()).unwrap();
        // The pop skips the expired job and hands out the live one.
        let (live, _) = q.pop().unwrap();
        assert!(live.deadline.is_none());
        assert!(*hit.lock().unwrap(), "expire hook must have fired");
        assert_eq!(q.expired(), 1);
        // A future deadline is not expiry.
        let not_yet = Arc::new(Mutex::new(false));
        q.try_push(deadline_job(
            Instant::now() + Duration::from_secs(60),
            Arc::clone(&not_yet),
        ))
        .unwrap();
        assert!(q.pop().is_some());
        assert!(!*not_yet.lock().unwrap());
        assert_eq!(q.expired(), 1);
    }

    #[test]
    fn a_queue_of_only_expired_jobs_drains_to_shutdown() {
        use std::sync::{Arc, Mutex};
        let q = BoundedQueue::new(4);
        let past = Instant::now() - Duration::from_millis(1);
        for _ in 0..3 {
            q.try_push(deadline_job(past, Arc::new(Mutex::new(false))))
                .unwrap();
        }
        q.shutdown();
        // pop skips all three and reports the drained shutdown.
        assert!(q.pop().is_none());
        assert_eq!(q.expired(), 3);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn blocking_push_wakes_on_drain() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        q.try_push(job()).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.push_blocking(job()));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!submitter.is_finished(), "must block while full");
        q.pop().unwrap();
        assert!(submitter.join().unwrap().is_ok());
        assert_eq!(q.depth(), 1);
    }
}
