//! Observable counters of the serving layer, in the spirit of
//! `xpeval_core::CacheStats`: everything the pool does is countable, so
//! tests and benches can assert backpressure and drain behaviour instead
//! of guessing from wall-clock.

use std::time::Duration;

/// Counters of one pool worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker ran to completion (including jobs whose query
    /// evaluation returned an error — the job itself finished).
    pub completed: u64,
    /// Jobs whose closure panicked; the worker caught the panic and kept
    /// serving, the submitter sees [`crate::JobLost`].
    pub panicked: u64,
}

impl std::fmt::Display for WorkerStats {
    /// One-line summary: `completed 12, panicked 0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "completed {}, panicked {}",
            self.completed, self.panicked
        )
    }
}

/// Snapshot of an [`crate::AsyncEngine`]'s counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Capacity of the submission queue (the backpressure bound).
    pub queue_capacity: usize,
    /// Jobs sitting in the queue right now.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub queue_high_watermark: usize,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Accepted jobs dropped at dequeue because their per-submission
    /// deadline passed while they were queued; they never ran and their
    /// futures resolved to `JobExpired`.
    pub expired: u64,
    /// Non-blocking submissions rejected because the queue was full.
    pub rejected_full: u64,
    /// Submissions rejected because the pool was shutting down.
    pub rejected_shutdown: u64,
    /// Jobs workers ran to completion (sum of [`WorkerStats::completed`]).
    pub completed: u64,
    /// Jobs whose closure panicked (sum of [`WorkerStats::panicked`]).
    pub panicked: u64,
    /// Dequeued jobs whose enqueue→dequeue latency is accumulated below.
    pub queue_wait_count: u64,
    /// Total enqueue→dequeue latency over all dequeued jobs, in
    /// nanoseconds.
    pub queue_wait_total_ns: u64,
    /// Largest single enqueue→dequeue latency, in nanoseconds.
    pub queue_wait_max_ns: u64,
    /// Per-worker completed/panicked counters, one entry per worker.
    pub per_worker: Vec<WorkerStats>,
}

impl ServeStats {
    /// Mean enqueue→dequeue latency (zero before the first dequeue).
    pub fn mean_queue_wait(&self) -> Duration {
        self.queue_wait_total_ns
            .checked_div(self.queue_wait_count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Largest observed enqueue→dequeue latency.
    pub fn max_queue_wait(&self) -> Duration {
        Duration::from_nanos(self.queue_wait_max_ns)
    }
}

impl std::fmt::Display for ServeStats {
    /// One-line summary used by the examples, e.g.
    /// `4 workers, queue 0/64 (hwm 17), submitted 128, completed 126, expired 2, rejected 3+0, panicked 0, wait mean 12.4µs max 310.0µs`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers, queue {}/{} (hwm {}), submitted {}, completed {}, expired {}, rejected {}+{}, panicked {}, wait mean {:.1?} max {:.1?}",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.queue_high_watermark,
            self.submitted,
            self.completed,
            self.expired,
            self.rejected_full,
            self.rejected_shutdown,
            self.panicked,
            self.mean_queue_wait(),
            self.max_queue_wait(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_helpers() {
        let stats = ServeStats {
            queue_wait_count: 4,
            queue_wait_total_ns: 4_000,
            queue_wait_max_ns: 2_500,
            ..ServeStats::default()
        };
        assert_eq!(stats.mean_queue_wait(), Duration::from_nanos(1_000));
        assert_eq!(stats.max_queue_wait(), Duration::from_nanos(2_500));
        assert_eq!(ServeStats::default().mean_queue_wait(), Duration::ZERO);
    }

    #[test]
    fn display_is_a_single_summary_line() {
        let stats = ServeStats {
            workers: 2,
            queue_capacity: 8,
            queue_high_watermark: 5,
            submitted: 10,
            completed: 10,
            ..ServeStats::default()
        };
        let line = stats.to_string();
        assert!(line.contains("2 workers"), "{line}");
        assert!(line.contains("queue 0/8 (hwm 5)"), "{line}");
        assert!(!line.contains('\n'));
        assert_eq!(
            WorkerStats::default().to_string(),
            "completed 0, panicked 0"
        );
    }
}
