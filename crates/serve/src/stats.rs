//! Observable counters of the serving layer, in the spirit of
//! `xpeval_core::CacheStats`: everything the pool does is countable, so
//! tests and benches can assert backpressure and drain behaviour instead
//! of guessing from wall-clock.
//!
//! The request lifecycle is measured as three latency distributions, each
//! an `xpeval_obs` log2-bucketed histogram: **queue wait** (enqueue →
//! dequeue), **execution** (dequeue → job done) and **end-to-end**
//! (enqueue → job done).  [`ServeStats`] carries their snapshots, so a
//! drained pool reports p50/p90/p99 tail latency, not just a mean.

use std::time::Duration;
use xpeval_obs::{Field, FieldValue, HistogramSnapshot, MetricSource};

/// Counters of one pool worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker ran to completion (including jobs whose query
    /// evaluation returned an error — the job itself finished).
    pub completed: u64,
    /// Jobs whose closure panicked; the worker caught the panic and kept
    /// serving, the submitter sees [`crate::JobLost`].
    pub panicked: u64,
}

impl std::fmt::Display for WorkerStats {
    /// One-line summary: `completed 12, panicked 0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "completed {}, panicked {}",
            self.completed, self.panicked
        )
    }
}

/// Snapshot of an [`crate::AsyncEngine`]'s counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Capacity of the submission queue (the backpressure bound).
    pub queue_capacity: usize,
    /// Jobs sitting in the queue right now.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub queue_high_watermark: usize,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Accepted jobs dropped at dequeue because their per-submission
    /// deadline passed while they were queued; they never ran and their
    /// futures resolved to `JobExpired`.
    pub expired: u64,
    /// Non-blocking submissions rejected because the queue was full.
    pub rejected_full: u64,
    /// Submissions rejected because the pool was shutting down.
    pub rejected_shutdown: u64,
    /// Jobs workers ran to completion (sum of [`WorkerStats::completed`]).
    pub completed: u64,
    /// Jobs whose closure panicked (sum of [`WorkerStats::panicked`]).
    pub panicked: u64,
    /// Enqueue→dequeue latency distribution over every dequeued job, in
    /// nanoseconds.
    pub queue_wait: HistogramSnapshot,
    /// Dequeue→completion (pure execution) latency distribution, in
    /// nanoseconds.
    pub execution: HistogramSnapshot,
    /// Enqueue→completion latency distribution — what a submitter
    /// actually waits, in nanoseconds.
    pub end_to_end: HistogramSnapshot,
    /// Per-worker completed/panicked counters, one entry per worker.
    pub per_worker: Vec<WorkerStats>,
}

impl ServeStats {
    /// Mean enqueue→dequeue latency (zero before the first dequeue).
    pub fn mean_queue_wait(&self) -> Duration {
        Duration::from_nanos(self.queue_wait.mean())
    }

    /// Largest observed enqueue→dequeue latency.
    pub fn max_queue_wait(&self) -> Duration {
        Duration::from_nanos(self.queue_wait.max)
    }
}

impl MetricSource for ServeStats {
    fn source_name(&self) -> &'static str {
        "serve"
    }

    fn fields(&self) -> Vec<Field> {
        vec![
            Field::new("workers", FieldValue::Gauge(self.workers as i64)),
            Field::new(
                "queue",
                FieldValue::Frac {
                    num: self.queue_depth as u64,
                    den: self.queue_capacity as u64,
                },
            ),
            Field::new("hwm", FieldValue::Gauge(self.queue_high_watermark as i64)),
            Field::new("submitted", FieldValue::Counter(self.submitted)),
            Field::new("completed", FieldValue::Counter(self.completed)),
            Field::new("expired", FieldValue::Counter(self.expired)),
            Field::new("rejected_full", FieldValue::Counter(self.rejected_full)),
            Field::new(
                "rejected_shutdown",
                FieldValue::Counter(self.rejected_shutdown),
            ),
            Field::new("panicked", FieldValue::Counter(self.panicked)),
            Field::new("queue_wait", FieldValue::Histogram(self.queue_wait.clone())),
            Field::new("execution", FieldValue::Histogram(self.execution.clone())),
            Field::new("end_to_end", FieldValue::Histogram(self.end_to_end.clone())),
        ]
    }
}

impl std::fmt::Display for ServeStats {
    /// One-line summary shared with [`MetricSource::summary_line`], e.g.
    /// `workers 4, queue 0/64, hwm 17, submitted 128, completed 126,
    /// expired 2, rejected_full 3, rejected_shutdown 0, panicked 0,
    /// queue_wait p50=12.4µs p99=310µs ...`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_obs::Histogram;

    fn wait_histogram() -> HistogramSnapshot {
        let h = Histogram::new();
        h.record(500);
        h.record(1_000);
        h.record(2_000);
        h.record(2_500);
        h.snapshot()
    }

    #[test]
    fn latency_helpers() {
        let stats = ServeStats {
            queue_wait: wait_histogram(),
            ..ServeStats::default()
        };
        assert_eq!(stats.mean_queue_wait(), Duration::from_nanos(1_500));
        assert_eq!(stats.max_queue_wait(), Duration::from_nanos(2_500));
        assert_eq!(ServeStats::default().mean_queue_wait(), Duration::ZERO);
    }

    #[test]
    fn display_is_a_single_summary_line() {
        let stats = ServeStats {
            workers: 2,
            queue_capacity: 8,
            queue_high_watermark: 5,
            submitted: 10,
            completed: 10,
            ..ServeStats::default()
        };
        let line = stats.to_string();
        assert!(line.contains("workers 2"), "{line}");
        assert!(line.contains("queue 0/8"), "{line}");
        assert!(line.contains("hwm 5"), "{line}");
        assert!(line.contains("submitted 10"), "{line}");
        assert!(!line.contains('\n'));
        assert_eq!(
            WorkerStats::default().to_string(),
            "completed 0, panicked 0"
        );
    }

    #[test]
    fn to_json_reports_lifecycle_histograms() {
        let stats = ServeStats {
            workers: 2,
            queue_capacity: 8,
            submitted: 4,
            completed: 4,
            queue_wait: wait_histogram(),
            end_to_end: wait_histogram(),
            ..ServeStats::default()
        };
        let json = stats.to_json();
        assert!(json.contains("\"queue_wait\""), "{json}");
        assert!(json.contains("\"p99_ns\""), "{json}");
        assert!(json.contains("\"end_to_end\""), "{json}");
        assert!(json.contains("\"submitted\": 4"), "{json}");
    }

    #[test]
    fn publish_exports_prometheus_histograms() {
        let stats = ServeStats {
            workers: 2,
            queue_capacity: 8,
            submitted: 4,
            completed: 4,
            queue_wait: wait_histogram(),
            execution: wait_histogram(),
            end_to_end: wait_histogram(),
            ..ServeStats::default()
        };
        let registry = xpeval_obs::MetricsRegistry::new();
        stats.publish(&registry);
        let text = xpeval_obs::render_prometheus(&registry);
        assert!(text.contains("serve_queue_wait_bucket"), "{text}");
        assert!(text.contains("serve_end_to_end_count 4"), "{text}");
        // The scrape must satisfy our own exposition-format parser.
        xpeval_obs::parse_prometheus(&text).expect("valid exposition format");
    }
}
