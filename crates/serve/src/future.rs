//! One-shot result delivery: [`QueryFuture`] and the minimal executor
//! [`block_on`].
//!
//! Every accepted submission hands back a [`QueryFuture<T>`] — the
//! receiving half of a one-shot channel completed by whichever worker runs
//! the job.  It is consumable two ways:
//!
//! * **synchronously**, via [`QueryFuture::wait`] (condvar-blocked, no
//!   runtime needed), and
//! * **asynchronously**: `QueryFuture` implements
//!   [`std::future::Future`], so it can be `.await`ed from any executor —
//!   including the dependency-free [`block_on`] shipped here.
//!
//! The channel is deliberately tiny: a mutex-guarded slot plus a condvar
//! (for `wait`) and a registered [`Waker`] (for `poll`).  One value ever
//! crosses it, so there is nothing to get clever about.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Error resolved by a [`QueryFuture`] whose result can never arrive: the
/// worker running the job panicked, or the pool was torn down before the
/// job ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobLost;

impl std::fmt::Display for JobLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job lost: the worker panicked or the pool shut down before running it"
        )
    }
}

impl std::error::Error for JobLost {}

/// Resolved by a deadline-bearing submission whose job was still queued
/// when its deadline passed: the job was dropped at dequeue and **never
/// ran** (see `AsyncEngine::submit_with_deadline`).  Distinct from
/// [`JobLost`], which means the result was lost *after* the job was picked
/// up (worker panic) or the pool died.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobExpired;

impl std::fmt::Display for JobExpired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job expired: its deadline passed while it was still queued, so it was dropped unrun"
        )
    }
}

impl std::error::Error for JobExpired {}

/// What a deadline-bearing submission resolves to: the job's result, or
/// [`JobExpired`] when the deadline passed while the job was queued.
pub type DeadlineResult<T> = Result<T, JobExpired>;

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    done: Condvar,
}

struct ChannelState<T> {
    value: Option<T>,
    /// True once the sender is gone — with or without having sent.
    closed: bool,
    waker: Option<Waker>,
}

/// The completing half, owned by the job closure running on a worker.  If
/// it is dropped without sending (worker panic, pool teardown), the future
/// resolves to [`JobLost`].
pub(crate) struct Sender<T> {
    channel: Option<Arc<Channel<T>>>,
}

impl<T> Sender<T> {
    /// Completes the future with `value`.
    pub(crate) fn send(mut self, value: T) {
        if let Some(channel) = self.channel.take() {
            let waker = {
                let mut state = channel.state.lock().unwrap();
                state.value = Some(value);
                state.closed = true;
                state.waker.take()
            };
            channel.done.notify_all();
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let Some(channel) = self.channel.take() {
            let waker = {
                let mut state = channel.state.lock().unwrap();
                state.closed = true;
                state.waker.take()
            };
            channel.done.notify_all();
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }
}

/// The pending result of a submitted job.
///
/// Await it from any async runtime, or call [`QueryFuture::wait`] to block
/// the current thread until a worker completes the job.  Dropping the
/// future does *not* cancel the job — accepted work always runs (and is
/// counted in the pool's `ServeStats`); only its result is discarded.
#[must_use = "a QueryFuture does nothing until awaited or waited on"]
pub struct QueryFuture<T> {
    channel: Arc<Channel<T>>,
}

impl<T> std::fmt::Debug for QueryFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryFuture").finish_non_exhaustive()
    }
}

/// Creates a connected sender/future pair.
pub(crate) fn oneshot<T>() -> (Sender<T>, QueryFuture<T>) {
    let channel = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            value: None,
            closed: false,
            waker: None,
        }),
        done: Condvar::new(),
    });
    (
        Sender {
            channel: Some(Arc::clone(&channel)),
        },
        QueryFuture { channel },
    )
}

impl<T> QueryFuture<T> {
    /// Blocks the calling thread until the job completes, returning its
    /// result — or [`JobLost`] if the result can never arrive.
    pub fn wait(self) -> Result<T, JobLost> {
        let mut state = self.channel.state.lock().unwrap();
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.closed {
                return Err(JobLost);
            }
            state = self.channel.done.wait(state).unwrap();
        }
    }

    /// Non-blocking probe: `Some` once the job has completed (or is lost).
    /// The result stays claimable by `wait`/`.await` afterwards.
    pub fn is_ready(&self) -> bool {
        let state = self.channel.state.lock().unwrap();
        state.value.is_some() || state.closed
    }
}

impl<T> Future for QueryFuture<T> {
    type Output = Result<T, JobLost>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.channel.state.lock().unwrap();
        if let Some(value) = state.value.take() {
            return Poll::Ready(Ok(value));
        }
        if state.closed {
            return Poll::Ready(Err(JobLost));
        }
        // Replace any stale waker: only the most recent poller is woken.
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Drives a future to completion on the current thread — the minimal own
/// executor of the serving layer (park/unpark based, no dependencies).
///
/// This is enough to consume [`QueryFuture`]s without an async runtime;
/// under a real runtime, just `.await` them instead.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }

    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wait_returns_the_sent_value() {
        let (tx, rx) = oneshot();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(7usize);
        });
        assert_eq!(rx.wait(), Ok(7));
    }

    #[test]
    fn dropping_the_sender_resolves_job_lost() {
        let (tx, rx) = oneshot::<usize>();
        drop(tx);
        assert!(rx.is_ready());
        assert_eq!(rx.wait(), Err(JobLost));
    }

    #[test]
    fn block_on_drives_a_cross_thread_completion() {
        let (tx, rx) = oneshot();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send("done");
        });
        assert_eq!(block_on(rx), Ok("done"));
    }

    #[test]
    fn block_on_plain_ready_future() {
        assert_eq!(block_on(std::future::ready(3)), 3);
    }
}
