//! The runtime-facing async submission surface, gated behind the
//! non-default `tokio` feature.
//!
//! [`AsyncEngine::submit`](crate::AsyncEngine::submit) *blocks* its caller
//! while the queue is full — correct for dedicated client threads, wrong
//! inside an async runtime, where blocking a task blocks the executor
//! thread under it.  This module adds the awaiting counterpart:
//! [`AsyncEngine::submit_async`] returns a [`SubmitFuture`] that resolves
//! once the job is *accepted* (or the pool shuts down), parking the task —
//! not the thread — on a full queue.  Backpressure thus propagates through
//! `.await`, tokio-style.
//!
//! Nothing here names a tokio type: `SubmitFuture` and
//! [`QueryFuture`] are plain [`std::future::Future`]s,
//! so any executor (including the crate's own
//! [`block_on`](crate::block_on)) can drive them.  The feature exists so
//! the surface designed for runtime integration stays an explicit opt-in —
//! and so a real `tokio` dependency, in environments that have one, has a
//! single place to land.

use crate::future::QueryFuture;
use crate::pool::{AsyncEngine, QueryResult};
use crate::queue::{Job, PushOutcome};
use crate::TrySubmitError;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll};
use xpeval_dom::PreparedDocument;

/// Resolves once the submission is accepted by the queue — yielding the
/// [`QueryFuture`] for its result — or rejected by shutdown.
///
/// While the queue is full the future is parked and re-woken each time a
/// worker drains a slot (the check and the waker registration happen under
/// one lock, so no wakeup can be lost).
#[must_use = "a SubmitFuture does nothing until awaited"]
pub struct SubmitFuture<'a, T> {
    engine: &'a AsyncEngine,
    /// The job travels with the future until the queue accepts it.
    job: Option<Job>,
    result: Option<QueryFuture<T>>,
}

impl<T> std::fmt::Debug for SubmitFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitFuture")
            .field("pending", &self.job.is_some())
            .finish_non_exhaustive()
    }
}

impl<T> Future for SubmitFuture<'_, T> {
    type Output = Result<QueryFuture<T>, TrySubmitError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Everything is Unpin; the pin is structural noise.
        let this = self.get_mut();
        let Some(job) = this.job.take() else {
            panic!("SubmitFuture polled after completion");
        };
        let shared = &this.engine.shared;
        match shared.queue.push_or_register(job, cx.waker()) {
            PushOutcome::Pushed => Poll::Ready(Ok(this
                .result
                .take()
                .expect("result future present until acceptance"))),
            PushOutcome::Registered(job) => {
                this.job = Some(job);
                Poll::Pending
            }
            PushOutcome::ShutDown => {
                shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                Poll::Ready(Err(TrySubmitError::ShutDown))
            }
        }
    }
}

impl AsyncEngine {
    /// Async counterpart of [`AsyncEngine::submit`]: awaits queue space
    /// instead of blocking the thread.  Typical use from a runtime task:
    ///
    /// ```
    /// # use std::sync::Arc;
    /// # use xpeval_core::Engine;
    /// # use xpeval_dom::{parse_xml, PreparedDocument};
    /// # use xpeval_serve::{block_on, AsyncEngine};
    /// let pool = AsyncEngine::builder().workers(2).build();
    /// let doc = Arc::new(PreparedDocument::new(parse_xml("<a><b/></a>").unwrap()));
    /// let out = block_on(async {
    ///     let accepted = pool.submit_async(&doc, "count(//b)").await?;
    ///     accepted.await.map_err(|_| xpeval_serve::TrySubmitError::ShutDown)
    /// });
    /// assert!(out.unwrap().is_ok());
    /// ```
    pub fn submit_async(
        &self,
        doc: &Arc<PreparedDocument>,
        query: &str,
    ) -> SubmitFuture<'_, QueryResult> {
        // Same job body as the blocking `submit`: sync and async
        // submissions must never diverge in what they evaluate.
        let (job, result) = Self::query_job(doc, query);
        SubmitFuture {
            engine: self,
            job: Some(job),
            result: Some(result),
        }
    }

    /// Async counterpart of [`AsyncEngine::submit_task`].
    pub fn submit_task_async<T, F>(&self, f: F) -> SubmitFuture<'_, T>
    where
        F: FnOnce(&xpeval_core::Engine) -> T + Send + 'static,
        T: Send + 'static,
    {
        let (job, result) = Self::task_job(f);
        SubmitFuture {
            engine: self,
            job: Some(job),
            result: Some(result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;
    use xpeval_dom::parse_xml;

    #[test]
    fn submit_async_accepts_and_resolves() {
        let pool = AsyncEngine::builder().workers(1).build();
        let doc = Arc::new(PreparedDocument::new(parse_xml("<r><x/><x/></r>").unwrap()));
        let value = block_on(async {
            let accepted = pool.submit_async(&doc, "count(//x)").await.unwrap();
            accepted.await.unwrap().unwrap().value
        });
        assert_eq!(value, xpeval_core::Value::Number(2.0));
    }

    #[test]
    fn submit_async_awaits_a_full_queue_instead_of_failing() {
        let pool = AsyncEngine::builder().workers(1).queue_capacity(1).build();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        // Occupy the single worker…
        let blocker = pool
            .submit_task(move |_| {
                gate_rx.recv().ok();
            })
            .unwrap();
        // …and fill the single queue slot.
        let filler = pool.submit_task(|_| 1u32).unwrap();
        assert_eq!(
            pool.try_submit_task(|_| 2u32).unwrap_err(),
            TrySubmitError::Full
        );

        // The async submit parks instead of failing; releasing the worker
        // drains the queue and wakes it.
        let pool_ref = &pool;
        let resolved = block_on(async move {
            let submit = pool_ref.submit_task_async(|_| 3u32);
            // Open the gate only after the submit future exists, from a
            // helper thread, so the task genuinely waits first.
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                gate_tx.send(()).ok();
            });
            submit.await.unwrap().await
        });
        assert_eq!(resolved, Ok(3));
        assert_eq!(blocker.wait(), Ok(()));
        assert_eq!(filler.wait(), Ok(1));
    }

    #[test]
    fn a_cancelled_submit_future_does_not_eat_the_wakeup() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::task::{Context, Poll, Waker};

        fn flag_waker(flag: Arc<AtomicBool>) -> Waker {
            struct Flag(Arc<AtomicBool>);
            impl std::task::Wake for Flag {
                fn wake(self: Arc<Self>) {
                    self.0.store(true, Ordering::SeqCst);
                }
            }
            Waker::from(Arc::new(Flag(flag)))
        }

        let pool = AsyncEngine::builder().workers(1).queue_capacity(1).build();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let _blocker = pool.submit_task(move |_| {
            gate_rx.recv().ok();
        });
        let filler = pool.submit_task(|_| ()).unwrap();

        // Two parked submitters, each with its own waker registered.
        let mut cancelled = pool.submit_task_async(|_| 1u8);
        let mut live = pool.submit_task_async(|_| 2u8);
        let live_woken = Arc::new(AtomicBool::new(false));
        let cancelled_waker = flag_waker(Arc::new(AtomicBool::new(false)));
        let live_waker = flag_waker(Arc::clone(&live_woken));
        assert!(std::pin::Pin::new(&mut cancelled)
            .poll(&mut Context::from_waker(&cancelled_waker))
            .is_pending());
        assert!(std::pin::Pin::new(&mut live)
            .poll(&mut Context::from_waker(&live_waker))
            .is_pending());

        // The first submitter gives up (select!/timeout-style cancel),
        // leaving its stale waker behind; the drained slot must still
        // reach the live one.
        drop(cancelled);
        gate_tx.send(()).unwrap();
        filler.wait().unwrap();

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !live_woken.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "live submitter was never woken after the queue drained"
            );
            std::thread::yield_now();
        }
        match std::pin::Pin::new(&mut live).poll(&mut Context::from_waker(&live_waker)) {
            Poll::Ready(Ok(result)) => assert_eq!(result.wait(), Ok(2)),
            other => panic!("expected acceptance after wakeup, got {other:?}"),
        }
    }

    #[test]
    fn submit_async_resolves_shutdown_when_parked() {
        let pool = AsyncEngine::builder().workers(1).queue_capacity(1).build();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let _blocker = pool.submit_task(move |_| {
            gate_rx.recv().ok();
        });
        let _filler = pool.submit_task(|_| ()).unwrap();

        let pool_ref = &pool;
        let outcome = block_on(async move {
            let submit = pool_ref.submit_task_async(|_| ());
            let engine_for_shutdown = pool_ref;
            std::thread::spawn({
                let shared = Arc::clone(&engine_for_shutdown.shared);
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    shared.queue.shutdown();
                }
            });
            submit.await
        });
        assert_eq!(outcome.unwrap_err(), TrySubmitError::ShutDown);
        gate_tx.send(()).ok();
    }
}
