//! Zero-copy prepared snapshots: a versioned, checksummed, alignment-safe
//! binary format for [`PreparedDocument`]s.
//!
//! A snapshot is the flat-column form of a prepared document
//! ([`RawColumns`]) serialized as little-endian sections behind a 64-byte
//! header.  The cost model is the point:
//!
//! * [`PreparedSnapshot::open`] / [`PreparedSnapshot::from_bytes`] cost
//!   **O(validate)** — magic, version, section bookkeeping and one linear
//!   checksum scan.  No parsing, no tree construction, no hashing of tag
//!   names.
//! * [`PreparedSnapshot::document`] materializes the
//!   [`PreparedDocument`] on first use (copying the columns into the arena
//!   and index tables — still far below parse + prepare) and caches it, so
//!   every later call and every clone of the returned [`Arc`] is free.
//!   Multiple serve workers share the one materialized mapping.
//!
//! Integrity: the header stores a word-wise 4-lane FNV-style checksum
//! ([`crate::bytes::checksum64`]) over the payload; a
//! flipped byte, truncation or a version bump is rejected at open time with
//! a typed [`SnapshotError`].  Structural validation (id bounds, prefix
//! monotonicity, order sortedness) happens once more at materialize time
//! inside [`RawColumns::into_prepared`], so even a checksum-correct but
//! nonsensical file fails loudly instead of corrupting an evaluation.
//!
//! With the `mmap` feature (unix), [`PreparedSnapshot::open`] maps the file
//! instead of reading it, so the page cache backs cold columns and multiple
//! processes share physical memory.

use crate::bytes::{checksum64, get_u32, get_u64, push_u32, push_u64, read_u32s};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use xpeval_dom::raw::RawColumns;
use xpeval_dom::PreparedDocument;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"XPEVSNAP";
/// Current format version.  Readers reject any other version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header size; the payload starts at this (64-byte aligned) offset.
pub const SNAPSHOT_HEADER_LEN: usize = 64;
/// Number of `u32` columns following the string section, in format order.
const COLUMN_COUNT: u32 = 21;

/// Error opening, validating or materializing a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(String),
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version stored in the header.
        found: u32,
    },
    /// The payload does not match the header bookkeeping or its checksum.
    Corrupt(String),
    /// The checksummed payload decodes to structurally invalid tables.
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
            SnapshotError::Invalid(e) => write!(f, "invalid snapshot contents: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// The bytes behind a snapshot: an owned buffer, or a file mapping when the
/// `mmap` feature selected one.
enum SnapshotBytes {
    Owned(Vec<u8>),
    #[cfg(all(feature = "mmap", unix))]
    Mapped(mapped::Mmap),
}

impl SnapshotBytes {
    fn as_slice(&self) -> &[u8] {
        match self {
            SnapshotBytes::Owned(v) => v,
            #[cfg(all(feature = "mmap", unix))]
            SnapshotBytes::Mapped(m) => m,
        }
    }
}

/// An opened (validated, not yet materialized) prepared-document snapshot.
///
/// ```
/// use xpeval_backends::PreparedSnapshot;
/// use xpeval_dom::parse_xml;
///
/// let prepared = parse_xml("<a><b/></a>").unwrap().prepare();
/// let bytes = PreparedSnapshot::to_bytes(&prepared);
/// let snapshot = PreparedSnapshot::from_bytes(bytes).unwrap();
/// let doc = snapshot.document().unwrap();
/// assert_eq!(doc.elements_named("b").len(), 1);
/// ```
pub struct PreparedSnapshot {
    bytes: SnapshotBytes,
    materialized: OnceLock<Result<Arc<PreparedDocument>, SnapshotError>>,
}

impl fmt::Debug for PreparedSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedSnapshot")
            .field("byte_len", &self.byte_len())
            .field("node_count", &self.node_count())
            .field("materialized", &self.materialized.get().is_some())
            .finish()
    }
}

impl PreparedSnapshot {
    /// Serializes `prepared` into the snapshot byte format.
    pub fn to_bytes(prepared: &PreparedDocument) -> Vec<u8> {
        let cols = RawColumns::from_prepared(prepared);
        let mut payload = Vec::new();

        // String section: count, byte offsets (count + 1), blob, padding.
        push_u32(&mut payload, cols.strings.len() as u32);
        let mut offset = 0u32;
        for s in &cols.strings {
            push_u32(&mut payload, offset);
            offset += s.len() as u32;
        }
        push_u32(&mut payload, offset);
        for s in &cols.strings {
            payload.extend_from_slice(s.as_bytes());
        }
        while payload.len() % 4 != 0 {
            payload.push(0);
        }

        // u32 columns, each length-prefixed, in fixed format order.
        for col in column_order(&cols) {
            push_u32(&mut payload, col.len() as u32);
            for &v in col {
                push_u32(&mut payload, v);
            }
        }

        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        push_u32(&mut out, SNAPSHOT_VERSION);
        push_u32(&mut out, COLUMN_COUNT);
        push_u32(&mut out, cols.kind.len() as u32);
        push_u32(&mut out, cols.strings.len() as u32);
        push_u64(&mut out, payload.len() as u64);
        push_u64(&mut out, checksum64(&payload));
        out.resize(SNAPSHOT_HEADER_LEN, 0);
        out.extend_from_slice(&payload);
        out
    }

    /// Serializes `prepared` and writes the snapshot to `path`.
    pub fn write(prepared: &PreparedDocument, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, Self::to_bytes(prepared))
    }

    /// Validates an in-memory snapshot: magic, version, payload length and
    /// checksum.  O(validate) — one linear scan, no decoding.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        Self::from_storage(SnapshotBytes::Owned(bytes))
    }

    /// Opens and validates a snapshot file.
    ///
    /// Without the `mmap` feature this reads the file into an owned buffer;
    /// with it (on unix) the file is memory-mapped instead, so opening
    /// costs the validation scan only and the OS pages columns in on use.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        #[cfg(all(feature = "mmap", unix))]
        {
            let map = mapped::Mmap::map_file(path.as_ref())?;
            Self::from_storage(SnapshotBytes::Mapped(map))
        }
        #[cfg(not(all(feature = "mmap", unix)))]
        {
            Self::from_bytes(std::fs::read(path)?)
        }
    }

    fn from_storage(bytes: SnapshotBytes) -> Result<Self, SnapshotError> {
        validate_header(bytes.as_slice())?;
        Ok(PreparedSnapshot {
            bytes,
            materialized: OnceLock::new(),
        })
    }

    /// Total size of the snapshot in bytes (header + payload).
    pub fn byte_len(&self) -> usize {
        self.bytes.as_slice().len()
    }

    /// Number of arena slots the snapshot describes, from the header.
    pub fn node_count(&self) -> usize {
        get_u32(self.bytes.as_slice(), 16).unwrap_or(0) as usize
    }

    /// The prepared document, materialized on first call and shared
    /// afterwards: clones of the returned [`Arc`] (one per serve worker,
    /// catalog entry, ...) all point at the same mapping.
    pub fn document(&self) -> Result<Arc<PreparedDocument>, SnapshotError> {
        self.materialized
            .get_or_init(|| decode_payload(self.bytes.as_slice()).map(Arc::new))
            .clone()
    }

    /// True once [`PreparedSnapshot::document`] has materialized the tree.
    pub fn is_materialized(&self) -> bool {
        self.materialized.get().is_some()
    }
}

/// The fixed on-disk order of the `u32` columns.
fn column_order(cols: &RawColumns) -> [&Vec<u32>; COLUMN_COUNT as usize] {
    [
        &cols.kind,
        &cols.name_idx,
        &cols.value_idx,
        &cols.parent,
        &cols.first_child,
        &cols.last_child,
        &cols.next_sibling,
        &cols.prev_sibling,
        &cols.attr_start,
        &cols.attr_list,
        &cols.pre,
        &cols.post,
        &cols.depth,
        &cols.order,
        &cols.subtree_end,
        &cols.sibling_pos,
        &cols.child_count,
        &cols.tag_name_idx,
        &cols.tag_elem_start,
        &cols.tag_elems,
        &cols.tag_byparent,
    ]
}

fn validate_header(bytes: &[u8]) -> Result<(), SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Corrupt(format!(
            "file is {} bytes, shorter than the {SNAPSHOT_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = get_u32(bytes, 8).unwrap();
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let columns = get_u32(bytes, 12).unwrap();
    if columns != COLUMN_COUNT {
        return Err(SnapshotError::Corrupt(format!(
            "header declares {columns} columns, expected {COLUMN_COUNT}"
        )));
    }
    let payload_len = get_u64(bytes, 24).unwrap() as usize;
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(SnapshotError::Corrupt(format!(
            "header declares a {payload_len}-byte payload, found {}",
            payload.len()
        )));
    }
    let checksum = get_u64(bytes, 32).unwrap();
    let actual = checksum64(payload);
    if checksum != actual {
        return Err(SnapshotError::Corrupt(format!(
            "payload checksum mismatch (header {checksum:#018x}, payload {actual:#018x})"
        )));
    }
    Ok(())
}

/// Decodes the (already checksum-validated) payload into a prepared
/// document.  Structural validation happens in
/// [`RawColumns::into_prepared`].
fn decode_payload(bytes: &[u8]) -> Result<PreparedDocument, SnapshotError> {
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    let mut pos = 0usize;
    let corrupt = |msg: &str| SnapshotError::Corrupt(msg.to_string());
    let take_u32 = move |payload: &[u8], pos: &mut usize| -> Result<u32, SnapshotError> {
        let v = get_u32(payload, *pos).ok_or_else(|| corrupt("truncated section header"))?;
        *pos += 4;
        Ok(v)
    };

    // String section.
    let count = take_u32(payload, &mut pos)? as usize;
    let mut offsets = Vec::with_capacity(count + 1);
    for _ in 0..=count {
        offsets.push(take_u32(payload, &mut pos)? as usize);
    }
    let blob_len = *offsets.last().unwrap_or(&0);
    let blob = payload
        .get(pos..pos + blob_len)
        .ok_or_else(|| corrupt("string blob extends past the payload"))?;
    let mut strings = Vec::with_capacity(count);
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo > hi || hi > blob.len() {
            return Err(corrupt("string offsets are not monotone"));
        }
        let s = std::str::from_utf8(&blob[lo..hi])
            .map_err(|_| corrupt("string table is not valid UTF-8"))?;
        strings.push(s.to_string());
    }
    pos += blob_len;
    pos += (4 - pos % 4) % 4;

    // u32 columns in format order.
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(COLUMN_COUNT as usize);
    for _ in 0..COLUMN_COUNT {
        let len = take_u32(payload, &mut pos)? as usize;
        let end = pos
            .checked_add(len * 4)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| corrupt("column extends past the payload"))?;
        columns.push(read_u32s(&payload[pos..end]));
        pos = end;
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after the last column"));
    }

    let mut it = columns.into_iter();
    let mut next = move || {
        it.next()
            .expect("exactly COLUMN_COUNT columns were decoded")
    };
    let cols = RawColumns {
        strings,
        kind: next(),
        name_idx: next(),
        value_idx: next(),
        parent: next(),
        first_child: next(),
        last_child: next(),
        next_sibling: next(),
        prev_sibling: next(),
        attr_start: next(),
        attr_list: next(),
        pre: next(),
        post: next(),
        depth: next(),
        order: next(),
        subtree_end: next(),
        sibling_pos: next(),
        child_count: next(),
        tag_name_idx: next(),
        tag_elem_start: next(),
        tag_elems: next(),
        tag_byparent: next(),
    };
    cols.into_prepared()
        .map_err(|e| SnapshotError::Invalid(e.to_string()))
}

/// Minimal read-only file mapping, unix only: `mmap(2)` declared directly
/// (the workspace vendors no FFI crates), unmapped on drop.
#[cfg(all(feature = "mmap", unix))]
mod mapped {
    use super::SnapshotError;
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only private mapping of an entire file.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated; sharing the
    // pointer across threads is sharing immutable memory.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map_file(path: &Path) -> Result<Mmap, SnapshotError> {
            let file = File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Err(SnapshotError::Corrupt("empty snapshot file".to_string()));
            }
            // SAFETY: fd is valid for the duration of the call; a fresh
            // private read-only mapping of `len` bytes is requested, and
            // the result is checked for MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(SnapshotError::Io("mmap failed".to_string()));
            }
            Ok(Mmap { ptr, len })
        }
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];

        fn deref(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes for the
            // lifetime of `self`; the kernel initialized them from the file.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe exactly the mapping created in
            // `map_file`, unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::{parse_xml, AxisSource, SourceCapabilities};

    fn sample() -> PreparedDocument {
        parse_xml(r#"<site><region n="eu"><item id="1"><bid>5</bid>x</item></region><b/></site>"#)
            .unwrap()
            .prepare()
    }

    #[test]
    fn roundtrip_through_bytes_preserves_everything() {
        let prepared = sample();
        let bytes = PreparedSnapshot::to_bytes(&prepared);
        let snap = PreparedSnapshot::from_bytes(bytes).unwrap();
        assert!(!snap.is_materialized());
        assert_eq!(snap.node_count(), prepared.node_count());
        let doc = snap.document().unwrap();
        assert!(snap.is_materialized());
        assert_eq!(doc.node_count(), prepared.node_count());
        assert_eq!(doc.order(), prepared.order());
        assert_eq!(doc.capabilities(), SourceCapabilities::FULL);
        for n in prepared.document().all_nodes() {
            assert_eq!(doc.string_value(n), prepared.string_value(n));
            assert_eq!(doc.pre_interval(n), prepared.pre_interval(n));
        }
        // The materialized Arc is shared, not rebuilt.
        assert!(Arc::ptr_eq(&doc, &snap.document().unwrap()));
    }

    #[test]
    fn open_writes_and_reads_files() {
        let prepared = sample();
        let path = std::env::temp_dir().join(format!("xpeval-snap-{}.bin", std::process::id()));
        PreparedSnapshot::write(&prepared, &path).unwrap();
        let snap = PreparedSnapshot::open(&path).unwrap();
        assert_eq!(snap.document().unwrap().node_count(), prepared.node_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_rejected_at_open() {
        let mut bytes = PreparedSnapshot::to_bytes(&sample());
        let flip = SNAPSHOT_HEADER_LEN + bytes.len() / 2;
        bytes[flip] ^= 0x40;
        match PreparedSnapshot::from_bytes(bytes) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum rejection, got {other:?}"),
        }
    }

    #[test]
    fn version_and_magic_mismatches_are_rejected() {
        let good = PreparedSnapshot::to_bytes(&sample());

        let mut wrong_version = good.clone();
        wrong_version[8] = 99;
        assert_eq!(
            PreparedSnapshot::from_bytes(wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        );

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'Y';
        assert_eq!(
            PreparedSnapshot::from_bytes(wrong_magic).unwrap_err(),
            SnapshotError::BadMagic
        );

        let truncated = good[..good.len() - 5].to_vec();
        assert!(matches!(
            PreparedSnapshot::from_bytes(truncated),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(matches!(
            PreparedSnapshot::from_bytes(good[..10].to_vec()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn checksum_fixed_corruption_fails_structural_validation() {
        // Re-stamp the checksum after corrupting a column so the header
        // validates; materialization must still reject the tables.
        let mut bytes = PreparedSnapshot::to_bytes(&sample());
        // Stomp a big value over a region well inside the column area.
        let at = bytes.len() - 8;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let sum = checksum64(&bytes[SNAPSHOT_HEADER_LEN..]);
        bytes[32..40].copy_from_slice(&sum.to_le_bytes());
        let snap = PreparedSnapshot::from_bytes(bytes).unwrap();
        assert!(matches!(
            snap.document(),
            Err(SnapshotError::Invalid(_) | SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_document_snapshots() {
        let prepared = xpeval_dom::DocumentBuilder::new().finish().prepare();
        let snap = PreparedSnapshot::from_bytes(PreparedSnapshot::to_bytes(&prepared)).unwrap();
        let doc = snap.document().unwrap();
        assert_eq!(doc.node_count(), 1);
    }
}
