//! Byte-level primitives of the snapshot format: the FNV-1a checksum and
//! the (audited) `u32`-column reinterpretation paths.
//!
//! This module is the only place in the workspace that reinterprets raw
//! bytes as typed data.  The unsafe fast path is deliberately tiny and
//! fully guarded: it engages only when the slice is 4-byte aligned, its
//! length is an exact multiple of 4 and the target is little-endian (the
//! on-disk byte order); everything else takes the portable
//! `from_le_bytes` decode.  `tests/backends.rs` runs both paths against
//! each other, and the CI unsafe-audit job (or `cargo miri` where
//! available) exercises this file specifically.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
///
/// The reference byte-wise digest — deterministic, dependency-free, one
/// multiply per byte.  Small keys (names, headers) hash through this;
/// bulk payloads use [`checksum64`], whose lanes overlap the multiply
/// latency.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Word-wise, 4-lane FNV-style digest of `bytes` — the snapshot payload
/// checksum.
///
/// Byte-wise FNV-1a is one serial multiply per *byte*; on a ~700 KB
/// payload that multiply latency chain alone costs more than preparing
/// the document from scratch, which would defeat the snapshot's
/// O(validate) opening promise in practice.  This digest consumes eight
/// bytes per multiply across four *independent* lanes (the chains
/// overlap in the pipeline), folds the lanes, absorbs the tail bytes
/// byte-wise, and mixes in the length so differing-length prefixes never
/// collide.  Deterministic across platforms (little-endian word reads by
/// construction), same error-detection character as FNV for the
/// corruption this format guards against: any flipped bit lands in
/// exactly one lane and avalanches through every later multiply.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut lanes = [
        FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        FNV_OFFSET ^ 0xc2b2_ae3d_27d4_eb4f,
        FNV_OFFSET ^ 0x1656_67b1_9e37_79f9,
        FNV_OFFSET ^ 0x27d4_eb2f_1656_67c5,
    ];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(FNV_PRIME);
        }
    }
    let mut hash = FNV_OFFSET;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    (hash ^ bytes.len() as u64).wrapping_mul(FNV_PRIME)
}

/// Borrows `bytes` as a `u32` slice without copying, when layout permits.
///
/// Returns `None` unless *all* of the following hold, in which case the
/// reinterpretation is sound:
/// * the pointer is aligned to `align_of::<u32>()` (no misaligned loads),
/// * the length is an exact multiple of 4 (no partial trailing word),
/// * the target is little-endian (the snapshot byte order), so the bit
///   patterns already mean what the column values mean.
///
/// Callers fall back to [`decode_u32s`] on `None`; both paths produce the
/// same values, which the test suite asserts.
pub fn as_u32s(bytes: &[u8]) -> Option<&[u32]> {
    if !cfg!(target_endian = "little") {
        return None;
    }
    if bytes.len() % 4 != 0 || bytes.as_ptr().align_offset(std::mem::align_of::<u32>()) != 0 {
        return None;
    }
    // SAFETY: the pointer is non-null (it comes from a valid slice),
    // aligned for u32 (checked above), and the region spans exactly
    // `len / 4` u32s within the original allocation (length checked
    // above).  u32 has no invalid bit patterns, the source bytes are
    // initialized, and the borrow inherits the input lifetime, so the
    // aliasing rules are those of the original shared slice.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

/// Decodes little-endian `u32`s from `bytes`, copying.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of 4 (callers validate
/// section lengths before decoding).
pub fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    assert!(
        bytes.len() % 4 == 0,
        "u32 section length must be a multiple of 4"
    );
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Decodes a `u32` column, preferring the zero-copy borrow when layout
/// permits and falling back to the portable decode otherwise.
pub fn read_u32s(bytes: &[u8]) -> Vec<u32> {
    match as_u32s(bytes) {
        Some(words) => words.to_vec(),
        None => decode_u32s(bytes),
    }
}

/// Appends `v` to `out` in the snapshot byte order (little-endian).
pub fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` to `out` in the snapshot byte order (little-endian).
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `offset`, if in bounds.
pub fn get_u32(bytes: &[u8], offset: usize) -> Option<u32> {
    let s = bytes.get(offset..offset + 4)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads a little-endian `u64` at `offset`, if in bounds.
pub fn get_u64(bytes: &[u8], offset: usize) -> Option<u64> {
    let s = bytes.get(offset..offset + 8)?;
    Some(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let data = vec![7u8; 1024];
        let base = fnv1a64(&data);
        for i in [0usize, 511, 1023] {
            let mut flipped = data.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a64(&flipped), base, "flip at {i}");
        }
    }

    #[test]
    fn checksum_detects_single_bit_flips_in_every_region() {
        // 1000 bytes = 31 full 32-byte chunks + an 8-byte tail, so flips
        // are probed in each lane position and in the remainder.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let base = checksum64(&data);
        for i in [0usize, 7, 8, 15, 16, 23, 24, 31, 500, 992, 999] {
            let mut flipped = data.clone();
            flipped[i] ^= 1;
            assert_ne!(checksum64(&flipped), base, "flip at {i}");
        }
        // Length is part of the digest: a zero-extended payload differs.
        let mut extended = data.clone();
        extended.push(0);
        assert_ne!(checksum64(&extended), base);
        // Lanes are positional: the same word set in a different order
        // digests differently (a plain XOR fold would collide here).
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        a[0] = 1;
        b[8] = 1;
        assert_ne!(checksum64(&a), checksum64(&b));
    }

    #[test]
    fn fast_and_portable_decodes_agree() {
        let values: Vec<u32> = (0u32..257)
            .map(|i| i.wrapping_mul(0x0101_0101).wrapping_add(7))
            .collect();
        let mut bytes = Vec::new();
        for &v in &values {
            push_u32(&mut bytes, v);
        }
        assert_eq!(decode_u32s(&bytes), values);
        assert_eq!(read_u32s(&bytes), values);
        if let Some(borrowed) = as_u32s(&bytes) {
            assert_eq!(borrowed, values.as_slice());
        }
    }

    #[test]
    fn misaligned_and_ragged_slices_decline_the_fast_path() {
        let mut bytes = [0u8; 17];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        // Length not a multiple of 4.
        assert!(as_u32s(&bytes[..17]).is_none());
        // Offset by one byte: at most one of the two can be aligned.
        let a = bytes[..16].as_ptr().align_offset(4) == 0;
        let b = bytes[1..17].as_ptr().align_offset(4) == 0;
        assert!(!(a && b));
    }

    #[test]
    fn scalar_roundtrips() {
        let mut out = Vec::new();
        push_u32(&mut out, 0xdead_beef);
        push_u64(&mut out, 0x0123_4567_89ab_cdef);
        assert_eq!(get_u32(&out, 0), Some(0xdead_beef));
        assert_eq!(get_u64(&out, 4), Some(0x0123_4567_89ab_cdef));
        assert_eq!(get_u32(&out, 9), None);
        assert_eq!(get_u64(&out, 5), None);
    }
}
