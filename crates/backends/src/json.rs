//! JSON as a tree backend: proves the engine is a general tree-query
//! engine, not an XML engine with extra steps.
//!
//! [`JsonProvider`] parses a JSON document (RFC 8259 subset: objects,
//! arrays, strings with escapes, numbers, booleans, null) and replays it
//! through the [`TreeBuilder`] event surface, mapping JSON onto the XPath
//! element/attribute/text model:
//!
//! * an **object** becomes an element; each key becomes a child element
//!   wrapping the value — except keys starting with `@` whose value is a
//!   scalar, which become **attributes** of the object's element,
//! * an **array under a key** flattens into repeated elements named after
//!   the key (the idiomatic XML shape for collections); arrays elsewhere
//!   (top level, or nested directly in arrays) become an element with
//!   `item` children,
//! * **scalars** become text content (`null` becomes an empty element).
//!
//! The whole document is wrapped in a root element (default tag `json`) so
//! that absolute paths have a stable entry point:
//! `{"user": {"@id": "7", "name": "kim"}}` answers
//! `/json/user[@id = '7']/name`.

use std::fmt;
use xpeval_dom::{TreeBuildError, TreeBuilder, TreeProvider};

/// A [`TreeProvider`] over a JSON document.
///
/// ```
/// use xpeval_backends::JsonProvider;
/// use xpeval_dom::TreeProvider;
///
/// let doc = JsonProvider::new(r#"{"user": [{"name": "kim"}, {"name": "ada"}]}"#)
///     .build_prepared()
///     .unwrap();
/// assert_eq!(doc.elements_named("user").len(), 2);
/// assert_eq!(doc.elements_named("name").len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct JsonProvider {
    input: String,
    root_name: String,
}

impl JsonProvider {
    /// A provider over a JSON string, rooted at a `json` element.
    pub fn new(input: impl Into<String>) -> Self {
        JsonProvider {
            input: input.into(),
            root_name: "json".to_string(),
        }
    }

    /// Renames the wrapping root element.
    pub fn with_root_name(mut self, name: impl Into<String>) -> Self {
        self.root_name = name.into();
        self
    }
}

impl TreeProvider for JsonProvider {
    fn provide(&self, builder: &mut TreeBuilder) -> Result<(), TreeBuildError> {
        let mut p = JsonParser {
            input: self.input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(TreeBuildError::at(
                p.pos,
                "trailing content after JSON value",
            ));
        }
        emit(builder, &self.root_name, &value);
        Ok(())
    }
}

/// Parsed JSON value.  Numbers keep their source spelling so the text
/// content round-trips exactly (`1e3` stays `1e3`).
#[derive(Debug, Clone)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The text form of a scalar; `None` for arrays and objects.
    fn scalar_text(&self) -> Option<String> {
        match self {
            JsonValue::Null => Some(String::new()),
            JsonValue::Bool(b) => Some(b.to_string()),
            JsonValue::Number(n) => Some(n.clone()),
            JsonValue::String(s) => Some(s.clone()),
            JsonValue::Array(_) | JsonValue::Object(_) => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.scalar_text() {
            Some(s) => f.write_str(&s),
            None => f.write_str("<composite>"),
        }
    }
}

fn emit(b: &mut TreeBuilder, name: &str, value: &JsonValue) {
    match value {
        JsonValue::Object(pairs) => {
            b.open_element(name);
            for (k, v) in pairs {
                if let (Some(attr), Some(text)) = (k.strip_prefix('@'), v.scalar_text()) {
                    b.attribute(attr, text);
                }
            }
            for (k, v) in pairs {
                if k.starts_with('@') && v.scalar_text().is_some() {
                    continue;
                }
                match v {
                    JsonValue::Array(items) => {
                        for item in items {
                            emit(b, k, item);
                        }
                    }
                    _ => emit(b, k, v),
                }
            }
            b.close_element();
        }
        JsonValue::Array(items) => {
            b.open_element(name);
            for item in items {
                emit(b, "item", item);
            }
            b.close_element();
        }
        scalar => {
            b.open_element(name);
            if let Some(text) = scalar.scalar_text() {
                if !text.is_empty() {
                    b.text(text);
                }
            }
            b.close_element();
        }
    }
}

struct JsonParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn error(&self, msg: impl Into<String>) -> TreeBuildError {
        TreeBuildError::at(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), TreeBuildError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", c as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, TreeBuildError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, TreeBuildError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, TreeBuildError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, TreeBuildError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than paired —
                            // enough for the workloads this backend feeds.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.input.len() && (self.input[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.input[start..self.pos]));
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, TreeBuildError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.pos == start || (self.pos == start + 1 && self.input[start] == b'-') {
            return Err(self.error("expected a number"));
        }
        Ok(JsonValue::Number(
            String::from_utf8_lossy(&self.input[start..self.pos]).into_owned(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::TreeProvider;

    #[test]
    fn objects_become_elements_and_scalars_text() {
        let doc = JsonProvider::new(r#"{"user": {"name": "kim", "age": 41}}"#)
            .build_prepared()
            .unwrap();
        let name = doc.elements_named("name")[0];
        assert_eq!(doc.string_value(name), "kim");
        let age = doc.elements_named("age")[0];
        assert_eq!(doc.string_value(age), "41");
        assert_eq!(doc.elements_named("json").len(), 1);
    }

    #[test]
    fn at_keys_become_attributes() {
        let doc = JsonProvider::new(r#"{"user": {"@id": "7", "name": "kim"}}"#)
            .build_prepared()
            .unwrap();
        let user = doc.elements_named("user")[0];
        assert_eq!(doc.attribute_value(user, "id"), Some("7"));
        assert_eq!(doc.elements_named("name").len(), 1);
        // The @-key did not also become an element.
        assert_eq!(doc.elements_named("@id").len(), 0);
    }

    #[test]
    fn keyed_arrays_flatten_into_repeated_elements() {
        let doc = JsonProvider::new(r#"{"xs": [1, 2, 3]}"#)
            .build_prepared()
            .unwrap();
        let xs = doc.elements_named("xs");
        assert_eq!(xs.len(), 3);
        let values: Vec<String> = xs.iter().map(|&n| doc.string_value(n)).collect();
        assert_eq!(values, ["1", "2", "3"]);
    }

    #[test]
    fn bare_arrays_get_item_children() {
        let doc = JsonProvider::new(r#"[true, null, "x"]"#)
            .build_prepared()
            .unwrap();
        let items = doc.elements_named("item");
        assert_eq!(items.len(), 3);
        assert_eq!(doc.string_value(items[0]), "true");
        assert_eq!(doc.string_value(items[1]), "");
        assert_eq!(doc.string_value(items[2]), "x");
    }

    #[test]
    fn escapes_and_number_spellings_survive() {
        let doc = JsonProvider::new(r#"{"s": "a\"b\ncA", "n": 1e3}"#)
            .build_prepared()
            .unwrap();
        let s = doc.elements_named("s")[0];
        assert_eq!(
            doc.string_value(s),
            "a\"b\nA".replace('A', "c\u{41}").as_str()
        );
        let n = doc.elements_named("n")[0];
        assert_eq!(doc.string_value(n), "1e3");
    }

    #[test]
    fn root_name_is_configurable() {
        let doc = JsonProvider::new("{}")
            .with_root_name("r")
            .build_prepared()
            .unwrap();
        assert_eq!(doc.elements_named("r").len(), 1);
        assert_eq!(doc.elements_named("json").len(), 0);
    }

    #[test]
    fn malformed_json_is_rejected_with_offsets() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", ""] {
            let err = JsonProvider::new(bad).build().unwrap_err();
            assert!(err.offset.is_some(), "{bad}: {err}");
        }
    }
}
