//! Pluggable tree storage backends for the `xpeval` engine.
//!
//! The evaluation core (`xpeval-core`) consumes trees through the
//! [`xpeval_dom::AxisSource`] trait and reports what index structures a
//! source offers via [`xpeval_dom::SourceCapabilities`].  This crate
//! provides three alternative ways of *getting* to such a source, each
//! trading ingest cost against first-query latency differently:
//!
//! * **Eager** (the baseline, lives in `xpeval-dom`): parse the whole XML
//!   document and build every index up front.  Highest ingest cost, lowest
//!   per-query cost.  [`BackendKind::Eager`].
//! * **Lazy** ([`LazyDocument`]): tokenize the document into a structural
//!   spine plus small subtree *extents*, then materialize only the extents
//!   a query's tag footprint can touch.  A targeted query on a large
//!   document parses a fraction of it.  [`BackendKind::Lazy`].
//! * **Snapshot** ([`PreparedSnapshot`]): serialize a fully prepared
//!   document — arena, keys, *and* index tables — into a versioned,
//!   checksummed binary image.  Re-opening costs O(validate), not
//!   O(parse + index); with the `mmap` feature the image is mapped rather
//!   than read.  [`BackendKind::Snapshot`].
//! * **Tree providers** ([`JsonProvider`], and anything implementing
//!   [`xpeval_dom::TreeProvider`]): build documents from non-XML sources
//!   through the same builder events, so every downstream layer — indexes,
//!   strategies, caches — works unchanged.  [`BackendKind::Tree`].
//!
//! | backend  | ingest          | first query         | re-open        |
//! |----------|-----------------|---------------------|----------------|
//! | eager    | parse + index   | fast                | parse + index  |
//! | lazy     | tokenize only   | parses touched part | tokenize only  |
//! | snapshot | one-time export | fast                | validate bytes |
//! | tree     | provider-defined| fast                | provider-defined |

pub mod bytes;
pub mod json;
pub mod lazy;
pub mod snapshot;

pub use json::JsonProvider;
pub use lazy::{required_tags, LazyDocument, ResidencyStats, DEFAULT_EXTENT_THRESHOLD};
pub use snapshot::{
    PreparedSnapshot, SnapshotError, SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};

/// Which storage backend a document is served from.
///
/// Carried in catalog artifact-cache keys so plans compiled against one
/// backing never leak to another, and surfaced in stats/introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Fully parsed and indexed up front (`parse_xml` + `prepare`).
    Eager,
    /// Tokenized spine with on-demand subtree materialization.
    Lazy,
    /// Zero-copy binary image of a prepared document.
    Snapshot,
    /// Built through a [`xpeval_dom::TreeProvider`] (e.g. JSON).
    Tree,
}

impl BackendKind {
    /// Stable label for display and cache-key derivation.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Eager => "eager",
            BackendKind::Lazy => "lazy",
            BackendKind::Snapshot => "snapshot",
            BackendKind::Tree => "tree",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_labels_are_distinct() {
        let kinds = [
            BackendKind::Eager,
            BackendKind::Lazy,
            BackendKind::Snapshot,
            BackendKind::Tree,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
