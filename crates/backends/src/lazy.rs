//! Lazy XML backend: tokenize up front, materialize on demand.
//!
//! [`LazyDocument`] scans the XML input **once**, structurally — no arena
//! nodes, no strings beyond tag names — and splits it into a *spine* (large
//! elements, kept verbatim in every materialization) and *extents* (small
//! subtrees, each carrying its byte range and the set of element tags it
//! contains).  The first query then materializes only the extents whose tag
//! sets intersect the tags the query can touch
//! ([`required_tags`]); a query for a rare tag on a large document parses a
//! fraction of it.
//!
//! ## Soundness
//!
//! A materialization wave keeps every spine byte and a chosen subset of
//! extents, so the result is a well-formed document in which
//!
//! * every element whose tag is *required* by the query is present with its
//!   **complete subtree** (an extent is a whole subtree; a required tag in
//!   a dropped extent would contradict the choice; required tags occurring
//!   on the spine force full materialization),
//! * all ancestors of every resident node are resident (spine bytes always
//!   are), and relative document order among resident nodes is preserved.
//!
//! [`required_tags`] is conservative: any construct whose result could
//! depend on *unnamed* nodes (a trailing `*`/`node()`/`text()` step, a
//! predicate on a wildcard step, a function outside the analyzed core)
//! returns `None` and the document is materialized in full.  `//x` style
//! queries — a predicate-free `descendant-or-self::node()` pass-through
//! step followed by named steps — stay analyzable.
//!
//! ## Caveats
//!
//! [`NodeId`](xpeval_dom::NodeId)s are **not stable across waves**: growing
//! the resident set re-parses into a fresh arena.  Callers that cache node
//! sets must key them by the returned [`Arc`] identity (the catalog bumps
//! its revision on every wave for exactly this reason).

use std::collections::HashSet;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use xpeval_dom::{parse_xml, Axis, NodeTest, PreparedDocument, XmlParseError};
use xpeval_obs::{Field, FieldValue, MetricSource};
use xpeval_syntax::{Expr, LocationPath};

/// Residency snapshot of a [`LazyDocument`], from
/// [`LazyDocument::residency_stats`]: how much of the document is
/// actually materialized, node- and extent-wise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Arena nodes of the currently resident wave (1 before any wave).
    pub resident_nodes: usize,
    /// Node count of the fully materialized document.
    pub total_nodes: usize,
    /// Extents chosen into the resident set so far.
    pub chosen_extents: usize,
    /// Extents the tokenizer produced.
    pub extent_count: usize,
}

impl MetricSource for ResidencyStats {
    fn source_name(&self) -> &'static str {
        "lazy_backend"
    }

    fn fields(&self) -> Vec<Field> {
        vec![
            Field::new(
                "nodes",
                FieldValue::Frac {
                    num: self.resident_nodes as u64,
                    den: self.total_nodes as u64,
                },
            ),
            Field::new(
                "extents",
                FieldValue::Frac {
                    num: self.chosen_extents as u64,
                    den: self.extent_count as u64,
                },
            ),
        ]
    }
}

impl std::fmt::Display for ResidencyStats {
    /// One-line summary shared with [`MetricSource::summary_line`]:
    /// `nodes 7/31, extents 1/4`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary_line())
    }
}

/// Subtrees up to this many bytes become extents by default; larger
/// elements join the spine.  Sized so that record-shaped leaves (an item,
/// a person, a log entry) are extents while containers stay spine.
pub const DEFAULT_EXTENT_THRESHOLD: usize = 1024;

/// One skippable subtree: its byte range in the input and the element tags
/// occurring anywhere inside it.
#[derive(Debug)]
struct Extent {
    range: Range<usize>,
    tags: HashSet<String>,
}

/// Document pieces in input order: spine bytes are always emitted, extents
/// only when chosen.
#[derive(Debug)]
enum Piece {
    Verbatim(Range<usize>),
    Extent(usize),
}

#[derive(Debug, Default)]
struct LazyState {
    /// Monotone per-extent choice flags.
    chosen: Vec<bool>,
    /// The prepared document for the current chosen set, if built.
    resident: Option<Arc<PreparedDocument>>,
}

/// An XML document tokenized into extents, materialized query by query.
///
/// ```
/// use xpeval_backends::LazyDocument;
/// use xpeval_syntax::parse_query;
///
/// let lazy = LazyDocument::with_threshold("<r><a>x</a><b>y</b></r>", 8).unwrap();
/// let expr = parse_query("//a").unwrap();
/// let doc = lazy.materialize_for(&expr).unwrap();
/// assert_eq!(doc.elements_named("a").len(), 1);
/// assert!(lazy.resident_nodes() < lazy.total_nodes());
/// ```
#[derive(Debug)]
pub struct LazyDocument {
    input: String,
    pieces: Vec<Piece>,
    extents: Vec<Extent>,
    /// Tags of elements kept verbatim on the spine.  A query requiring one
    /// of these needs that element's full subtree, which the spine does not
    /// guarantee — so it forces full materialization.
    spine_tags: HashSet<String>,
    /// Exact node count (root + elements + attributes + text runs) of the
    /// fully materialized document, from the structural scan.
    total_nodes: usize,
    /// When the whole document collapsed into a single extent, its index.
    /// That extent must stay chosen in every wave — a wave without the
    /// document element would not be well-formed.
    root_extent: Option<usize>,
    state: Mutex<LazyState>,
}

impl LazyDocument {
    /// Tokenizes `input` with the [default threshold]
    /// (DEFAULT_EXTENT_THRESHOLD).  O(bytes), builds no tree.
    pub fn new(input: impl Into<String>) -> Result<Self, XmlParseError> {
        Self::with_threshold(input, DEFAULT_EXTENT_THRESHOLD)
    }

    /// Tokenizes `input`, turning subtrees of at most `threshold` bytes
    /// into extents.
    pub fn with_threshold(
        input: impl Into<String>,
        threshold: usize,
    ) -> Result<Self, XmlParseError> {
        let input = input.into();
        let mut scanner = Scanner {
            input: input.as_bytes(),
            pos: 0,
            threshold,
            extents: Vec::new(),
            spine_tags: HashSet::new(),
            nodes: 1, // the conceptual root
        };
        scanner.skip_prolog()?;
        let root = scanner.scan_element()?;
        scanner.skip_misc();
        if scanner.pos != scanner.input.len() {
            return Err(scanner.error("trailing content after document element"));
        }
        // The root element is one final extent candidate like any other:
        // a tiny document collapses into a single extent (absorbing any
        // recorded inside it).
        let root_extent = if root.end - root.start <= threshold {
            scanner.extents.clear();
            scanner.extents.push(Extent {
                range: root.start..root.end,
                tags: root.tags,
            });
            Some(0)
        } else {
            scanner.spine_tags.insert(root.tag);
            None
        };

        let mut pieces = Vec::with_capacity(scanner.extents.len() * 2 + 1);
        let mut cut = 0usize;
        for (i, e) in scanner.extents.iter().enumerate() {
            if e.range.start > cut {
                pieces.push(Piece::Verbatim(cut..e.range.start));
            }
            pieces.push(Piece::Extent(i));
            cut = e.range.end;
        }
        if cut < input.len() {
            pieces.push(Piece::Verbatim(cut..input.len()));
        }
        let mut chosen = vec![false; scanner.extents.len()];
        if let Some(i) = root_extent {
            chosen[i] = true;
        }
        Ok(LazyDocument {
            pieces,
            extents: scanner.extents,
            spine_tags: scanner.spine_tags,
            total_nodes: scanner.nodes,
            root_extent,
            input,
            state: Mutex::new(LazyState {
                chosen,
                resident: None,
            }),
        })
    }

    /// Number of extents the tokenizer produced.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Snapshot of the laziness ratio — resident vs total nodes and chosen
    /// vs total extents — as an `xpeval_obs::MetricSource`, so a lazy
    /// backend reports its residency through the same telemetry protocol
    /// as the caches and the serving pool.
    pub fn residency_stats(&self) -> ResidencyStats {
        let chosen = {
            let state = self.state.lock().unwrap();
            state.chosen.iter().filter(|&&c| c).count()
        };
        ResidencyStats {
            resident_nodes: self.resident_nodes(),
            total_nodes: self.total_nodes,
            chosen_extents: chosen,
            extent_count: self.extents.len(),
        }
    }

    /// Exact node count of the *fully* materialized document — the
    /// denominator of the laziness ratio.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Node count of the currently resident document (1 — just the
    /// conceptual root — before any materialization).
    pub fn resident_nodes(&self) -> usize {
        self.state
            .lock()
            .unwrap()
            .resident
            .as_ref()
            .map_or(1, |p| p.node_count())
    }

    /// The currently resident document, if any wave has run.
    pub fn resident(&self) -> Option<Arc<PreparedDocument>> {
        self.state.lock().unwrap().resident.clone()
    }

    /// Materializes (at least) every subtree `expr` can touch and returns
    /// the resident document.  The chosen extent set only grows; if this
    /// wave adds extents, the arena is rebuilt and **previously returned
    /// documents (and their node ids) do not describe the new one**.
    pub fn materialize_for(&self, expr: &Expr) -> Result<Arc<PreparedDocument>, XmlParseError> {
        let wanted = self.wanted_extents(expr);
        let mut state = self.state.lock().unwrap();
        let mut grew = false;
        match wanted {
            None => {
                for c in state.chosen.iter_mut() {
                    grew |= !*c;
                    *c = true;
                }
            }
            Some(tags) => {
                for (i, e) in self.extents.iter().enumerate() {
                    if !state.chosen[i] && tags.iter().any(|t| e.tags.contains(t)) {
                        state.chosen[i] = true;
                        grew = true;
                    }
                }
            }
        }
        if grew || state.resident.is_none() {
            state.resident = Some(Arc::new(self.build_wave(&state.chosen)?));
        }
        Ok(state.resident.clone().expect("wave was just built"))
    }

    /// Materializes every extent (the eager-equivalent document).
    pub fn materialize_all(&self) -> Result<Arc<PreparedDocument>, XmlParseError> {
        let mut state = self.state.lock().unwrap();
        let grew = state.chosen.iter().any(|&c| !c);
        for c in state.chosen.iter_mut() {
            *c = true;
        }
        if grew || state.resident.is_none() {
            state.resident = Some(Arc::new(self.build_wave(&state.chosen)?));
        }
        Ok(state.resident.clone().expect("wave was just built"))
    }

    /// Drops all materialized state: the next query starts from an empty
    /// chosen set.  This is the eviction hook — a demoted lazy document
    /// keeps only its input string and extent table.
    pub fn demote(&self) {
        let mut state = self.state.lock().unwrap();
        state.chosen.iter_mut().for_each(|c| *c = false);
        if let Some(i) = self.root_extent {
            state.chosen[i] = true;
        }
        state.resident = None;
    }

    /// Resets the chosen set to the spine-only minimum, builds that wave
    /// and installs it as resident.  The catalog's weighted eviction uses
    /// this to shed a document's materialized extents while keeping it
    /// answerable: the spine wave is a well-formed document (extents are
    /// whole subtrees) and the next query re-grows from it.
    pub fn demote_to_spine(&self) -> Result<Arc<PreparedDocument>, XmlParseError> {
        let mut state = self.state.lock().unwrap();
        state.chosen.iter_mut().for_each(|c| *c = false);
        if let Some(i) = self.root_extent {
            state.chosen[i] = true;
        }
        let doc = Arc::new(self.build_wave(&state.chosen)?);
        state.resident = Some(Arc::clone(&doc));
        Ok(doc)
    }

    /// The extent tags `expr` requires, or `None` when the analysis cannot
    /// bound the touched set (→ materialize everything).
    fn wanted_extents(&self, expr: &Expr) -> Option<HashSet<String>> {
        let tags = required_tags(expr)?;
        // A required tag on the spine means some required element's subtree
        // is only partially covered by extents — give up on partiality.
        if tags.iter().any(|t| self.spine_tags.contains(t)) {
            return None;
        }
        Some(tags)
    }

    /// Concatenates spine bytes and chosen extents, parses and prepares.
    fn build_wave(&self, chosen: &[bool]) -> Result<PreparedDocument, XmlParseError> {
        let mut text = String::with_capacity(self.input.len());
        for piece in &self.pieces {
            match piece {
                Piece::Verbatim(r) => text.push_str(&self.input[r.clone()]),
                Piece::Extent(i) if chosen[*i] => {
                    text.push_str(&self.input[self.extents[*i].range.clone()])
                }
                Piece::Extent(_) => {}
            }
        }
        Ok(parse_xml(&text)?.prepare())
    }
}

/// Summary of one scanned element subtree.
struct ElemScan {
    tag: String,
    start: usize,
    end: usize,
    /// Every element tag in the subtree, including `tag` itself.
    tags: HashSet<String>,
}

/// Structure-only scanner mirroring the grammar of `xpeval_dom::parse_xml`
/// (prolog, comments, PIs, both attribute quote styles) without building a
/// tree.  Nested subtrees at most `threshold` bytes long are recorded as
/// extents; their inner extent candidates are absorbed.
struct Scanner<'a> {
    input: &'a [u8],
    pos: usize,
    threshold: usize,
    extents: Vec<Extent>,
    spine_tags: HashSet<String>,
    nodes: usize,
}

impl<'a> Scanner<'a> {
    fn error(&self, msg: impl Into<String>) -> XmlParseError {
        XmlParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", c as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlParseError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(rel) => self.pos += rel + 2,
                None => return Err(self.error("unterminated XML declaration")),
            }
        }
        self.skip_misc();
        Ok(())
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.input[self.pos + 4..]
                    .windows(3)
                    .position(|w| w == b"-->")
                {
                    Some(rel) => self.pos += 4 + rel + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn scan_name(&mut self) -> Result<String, XmlParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn scan_element(&mut self) -> Result<ElemScan, XmlParseError> {
        let start = self.pos;
        self.expect(b'<')?;
        let tag = self.scan_name()?;
        self.nodes += 1;
        let mut tags: HashSet<String> = HashSet::new();
        tags.insert(tag.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(ElemScan {
                        tag,
                        start,
                        end: self.pos,
                        tags,
                    });
                }
                Some(_) => {
                    self.scan_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .ok_or_else(|| self.error("unexpected end in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.error("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    self.expect(quote)?;
                    self.nodes += 1;
                }
                None => return Err(self.error("unexpected end inside start tag")),
            }
        }
        // Content.
        loop {
            let text_start = self.pos;
            let mut text_nonws = false;
            loop {
                match self.peek() {
                    None => return Err(self.error("unexpected end of input inside element")),
                    Some(b'<') => break,
                    Some(c) => {
                        if !matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                            text_nonws = true;
                        }
                        self.pos += 1;
                    }
                }
            }
            if text_nonws && self.pos > text_start {
                self.nodes += 1;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let name = self.scan_name()?;
                self.skip_ws();
                self.expect(b'>')?;
                if name != tag {
                    return Err(self.error(format!(
                        "mismatched end tag: expected </{tag}>, found </{name}>"
                    )));
                }
                return Ok(ElemScan {
                    tag,
                    start,
                    end: self.pos,
                    tags,
                });
            } else if self.starts_with("<!--") {
                match self.input[self.pos + 4..]
                    .windows(3)
                    .position(|w| w == b"-->")
                {
                    Some(rel) => self.pos += 4 + rel + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => return Err(self.error("unterminated processing instruction")),
                }
            } else {
                let extents_before = self.extents.len();
                let child = self.scan_element()?;
                if child.end - child.start <= self.threshold {
                    // The whole child subtree is skippable: absorb any
                    // extents recorded inside it (they are covered by the
                    // child's range) and record the child as one extent.
                    self.extents.truncate(extents_before);
                    tags.extend(child.tags.iter().cloned());
                    self.extents.push(Extent {
                        range: child.start..child.end,
                        tags: child.tags,
                    });
                } else {
                    self.spine_tags.insert(child.tag.clone());
                    tags.extend(child.tags);
                }
            }
        }
    }
}

/// The element tags whose nodes (with complete subtrees) are sufficient to
/// answer `expr` exactly, or `None` when the query's result could depend on
/// nodes no name test pins down.
///
/// The analysis walks every location path, tracking whether the current
/// context is *pinned* — every node the next step can start from is
/// guaranteed resident with its complete subtree:
/// * `Name`/`Resolved` element steps contribute their tag and pin the
///   context (required tags are materialized whole).
/// * Attribute-axis steps never bail on their own: attributes ride with
///   their owner element, so **any** attribute test (`@id`, `@*`, even
///   with predicates) is exactly answerable when the owner context is
///   pinned.  An attribute step under an *unpinned* owner (`//@id`, whose
///   owners are arbitrary elements) bails — some owners may live in
///   dropped extents.
/// * Element wildcard steps (`*`, `node()`, `text()`) are allowed only as
///   predicate-free *pass-through* (non-final) steps — exactly the shape
///   `//` desugars to — and unpin the context.  A trailing wildcard, or a
///   predicate on one, bails.  The one exception is a final `self::node()`
///   step (`.`) under a pinned context, whose result is the context node.
/// * Functions outside the analyzed core bail; zero-argument string
///   functions bail unless the context node is pinned by a name test.
pub fn required_tags(expr: &Expr) -> Option<HashSet<String>> {
    let mut out = HashSet::new();
    if collect_expr(expr, false, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn collect_expr(expr: &Expr, ctx_named: bool, out: &mut HashSet<String>) -> bool {
    match expr {
        Expr::Path(path) => collect_path(path, ctx_named, out),
        // Set operators need both operand node sets to compute exactly
        // (`except` discards right-side nodes but must *see* them), so both
        // sides contribute required tags like a union's do.
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b)
        | Expr::Or(a, b)
        | Expr::And(a, b) => collect_expr(a, ctx_named, out) && collect_expr(b, ctx_named, out),
        Expr::Relational { left, right, .. }
        | Expr::Arithmetic { left, right, .. }
        | Expr::NodeCompare { left, right, .. } => {
            collect_expr(left, ctx_named, out) && collect_expr(right, ctx_named, out)
        }
        Expr::Not(e) | Expr::Neg(e) => collect_expr(e, ctx_named, out),
        // An external variable's value is supplied by the caller at
        // evaluation time; it reads no document nodes.
        Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => true,
        Expr::FunctionCall { name, args } => {
            let known = matches!(
                name.as_str(),
                "position"
                    | "last"
                    | "true"
                    | "false"
                    | "count"
                    | "boolean"
                    | "number"
                    | "string"
                    | "sum"
                    | "string-length"
                    | "normalize-space"
                    | "floor"
                    | "ceiling"
                    | "round"
                    | "contains"
                    | "starts-with"
                    | "concat"
                    | "name"
            );
            if !known {
                return false;
            }
            // Zero-argument string forms read the *context node's* string
            // value, which is only complete when a name test pinned it.
            let context_string = args.is_empty()
                && matches!(
                    name.as_str(),
                    "string" | "string-length" | "normalize-space" | "name"
                );
            if context_string && !ctx_named {
                return false;
            }
            args.iter().all(|a| collect_expr(a, ctx_named, out))
        }
    }
}

fn collect_path(path: &LocationPath, ctx_named: bool, out: &mut HashSet<String>) -> bool {
    if path.steps.is_empty() {
        // Bare `/`: the root's string value spans the whole document.
        return false;
    }
    let last = path.steps.len() - 1;
    // Whether every node the next step starts from is resident with its
    // complete subtree.  Entering the path this is the caller's context
    // (the node a named step's predicate evaluates under).
    let mut pinned = ctx_named;
    for (i, step) in path.steps.iter().enumerate() {
        let is_final = i == last;
        if step.axis == Axis::Attribute {
            // Attributes ride with their owner element: when the owner
            // context is pinned, every candidate attribute is resident, so
            // any node test and any predicate over them is exact.  Unpinned
            // owners (`//@id`) may live in dropped extents — bail.
            if !pinned {
                return false;
            }
            for pred in &step.predicates {
                if !collect_expr(pred, true, out) {
                    return false;
                }
            }
            // Attribute nodes are leaves and fully resident.
            continue;
        }
        match &step.node_test {
            NodeTest::Name(name) | NodeTest::Resolved { name, .. } => {
                out.insert(name.clone());
                for pred in &step.predicates {
                    if !collect_expr(pred, true, out) {
                        return false;
                    }
                }
                pinned = true;
            }
            NodeTest::Star | NodeTest::AnyNode | NodeTest::Text => {
                // A wildcard along a *downward* axis under a pinned context
                // stays inside subtrees that are resident in full: every
                // candidate — and its own complete subtree, and all of its
                // axis siblings — is materialized, so the step is exact
                // even as a final step or with predicates, and its results
                // are themselves pinned.  (`//a/*`, `//a//node()[2]`.)
                // Upward and lateral axes can leave the resident subtree,
                // so they fall through to the conservative rules below.
                let downward = matches!(
                    step.axis,
                    Axis::SelfAxis | Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
                );
                if pinned && downward {
                    for pred in &step.predicates {
                        if !collect_expr(pred, true, out) {
                            return false;
                        }
                    }
                    continue;
                }
                if !step.predicates.is_empty() {
                    // Positions / conditions over wildcard candidates can
                    // see nodes no tag pins down.
                    return false;
                }
                let self_dot = step.axis == Axis::SelfAxis && step.node_test == NodeTest::AnyNode;
                if is_final {
                    // A wildcard result set — unless it is `.` under a
                    // pinned context, whose result is the context node.
                    if !(self_dot && pinned) {
                        return false;
                    }
                }
                // Predicate-free pass-through (e.g. the
                // `descendant-or-self::node()` that `//` desugars to):
                // contributes nothing, forbids nothing — but its results
                // are arbitrary nodes, so the context is no longer pinned
                // (except `.`, which leaves it unchanged).
                if !self_dot {
                    pinned = false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_syntax::parse_query;

    fn req(q: &str) -> Option<Vec<String>> {
        let expr = parse_query(q).unwrap();
        required_tags(&expr).map(|set| {
            let mut v: Vec<String> = set.into_iter().collect();
            v.sort();
            v
        })
    }

    #[test]
    fn named_paths_collect_their_tags() {
        assert_eq!(
            req("/a/b/c"),
            Some(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(req("//item"), Some(vec!["item".into()]));
        assert_eq!(
            req("//item[bid > 3]/name"),
            Some(vec!["bid".into(), "item".into(), "name".into()])
        );
        assert_eq!(
            req("//a[not(b)] | //c"),
            Some(vec!["a".into(), "b".into(), "c".into()])
        );
        // Attribute name tests ride with their (named) owners.
        assert_eq!(req("//item/@id"), Some(vec!["item".into()]));
        assert_eq!(req("//item[@id = '7']"), Some(vec!["item".into()]));
    }

    #[test]
    fn attribute_tests_never_bail_under_a_pinned_owner() {
        // `@*` and predicates over attributes are exact once the owner is
        // named: all of an element's attributes ride with its subtree.
        assert_eq!(req("//item/@*"), Some(vec!["item".into()]));
        assert_eq!(req("//item[@*]"), Some(vec!["item".into()]));
        assert_eq!(req("//item/@*[position() = 1]"), Some(vec!["item".into()]));
        assert_eq!(
            req("//item[@* = 'x']/name"),
            Some(vec!["item".into(), "name".into()])
        );
        // An unpinned owner can live in a dropped extent: bail so the wave
        // materializes everything (soundness, not just precision).
        assert_eq!(req("//@id"), None);
        assert_eq!(req("//@*"), None);
        assert_eq!(req("//*/@id"), None);
    }

    #[test]
    fn unpinned_attribute_queries_stay_sound_on_lazy_waves() {
        // `//@k`'s owners include elements inside extents; the analysis
        // must refuse partiality or the wave would drop their attributes.
        let xml = "<r><grp><x k='1'>111111111111111111111111</x></grp><y k='2'>2</y></r>";
        let lazy = LazyDocument::with_threshold(xml, 40).unwrap();
        let expr = parse_query("//@k").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        let attrs = |d: &PreparedDocument| {
            d.all_nodes()
                .filter(|&n| matches!(d.kind(n), xpeval_dom::NodeKind::Attribute { .. }))
                .count()
        };
        let eager = parse_xml(xml).unwrap().prepare();
        assert_eq!(attrs(&doc), attrs(&eager));
        assert_eq!(lazy.resident_nodes(), lazy.total_nodes());
    }

    #[test]
    fn pinned_attribute_queries_materialize_a_strict_subset() {
        let xml = "<r><grp><x k='1'>111111111111111111111111</x></grp>\
                   <grp><x k='3'>333333333333333333333333</x></grp><y k='2'>2</y></r>";
        let lazy = LazyDocument::with_threshold(xml, 40).unwrap();
        let expr = parse_query("//y/@*").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(doc.elements_named("y").len(), 1);
        assert!(lazy.resident_nodes() < lazy.total_nodes());
    }

    #[test]
    fn wildcards_pass_through_but_never_terminate() {
        // Unpinned wildcards pass through mid-path and bail as final steps.
        assert_eq!(req("/a/*/b"), Some(vec!["a".into(), "b".into()]));
        assert_eq!(req("//a"), Some(vec!["a".into()]));
        assert_eq!(req("//*"), None);
        assert_eq!(req("/"), None);
    }

    #[test]
    fn downward_wildcards_under_a_pinned_context_are_exact() {
        // A named step pins its results — their subtrees are resident in
        // full — so a downward wildcard cannot leave the wave: it is exact
        // even as a final step, with predicates, or as `text()`.
        assert_eq!(req("/a/b/*"), Some(vec!["a".into(), "b".into()]));
        assert_eq!(req("//a/*"), Some(vec!["a".into()]));
        assert_eq!(req("//item/*[2]"), Some(vec!["item".into()]));
        assert_eq!(req("/a/*[2]/b"), Some(vec!["a".into(), "b".into()]));
        assert_eq!(req("//a/text()"), Some(vec!["a".into()]));
        assert_eq!(req("//a//node()"), Some(vec!["a".into()]));
        // Upward and lateral axes can escape the resident subtree, so a
        // wildcard along them still bails even when the context is pinned.
        assert_eq!(req("//a/*/parent::*"), None);
        assert_eq!(req("//a/following-sibling::*"), None);
        assert_eq!(req("//a/b/.."), None);
    }

    #[test]
    fn wildcard_under_named_ancestor_materializes_a_strict_subset() {
        let xml = "<r><g1><a>111111111111111111111111111111</a></g1>\
                   <g2><b>222222222222222222222222222222</b></g2>\
                   <g3><c>333333333333333333333333333333</c></g3></r>";
        let lazy = LazyDocument::with_threshold(xml, 60).unwrap();
        let expr = parse_query("//g2/*").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(doc.elements_named("b").len(), 1);
        assert!(lazy.resident_nodes() < lazy.total_nodes());
    }

    #[test]
    fn functions_gate_the_analysis() {
        assert_eq!(req("count(//item)"), Some(vec!["item".into()]));
        assert_eq!(req("//a[position() = 2]"), Some(vec!["a".into()]));
        assert_eq!(req("//a[contains(., 'x')]"), Some(vec!["a".into()]));
        assert_eq!(req("//a[string-length() > 2]"), Some(vec!["a".into()]));
        // Context string value with no pinning name test.
        assert_eq!(req("string-length()"), None);
    }

    #[test]
    fn tokenizer_splits_spine_and_extents() {
        let xml = "<root><big><leaf>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</leaf>\
                   <leaf>bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb</leaf></big><tiny>c</tiny></root>";
        let lazy = LazyDocument::with_threshold(xml, 48).unwrap();
        // Each <leaf> and <tiny> is an extent; <big> and <root> are spine.
        assert_eq!(lazy.extent_count(), 3);
        assert!(lazy.spine_tags.contains("root"));
        assert!(lazy.spine_tags.contains("big"));
        assert!(!lazy.spine_tags.contains("leaf"));
        // root + 4 elements... root elem, big, 2 leaves, tiny = 5 elements,
        // 3 text nodes, conceptual root.
        assert_eq!(lazy.total_nodes(), 9);
        assert_eq!(lazy.resident_nodes(), 1);
    }

    #[test]
    fn targeted_query_materializes_a_strict_subset() {
        let xml = "<root><big><leaf>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</leaf>\
                   <leaf>bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb</leaf></big><tiny>c</tiny></root>";
        let lazy = LazyDocument::with_threshold(xml, 48).unwrap();
        let expr = parse_query("//tiny").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(doc.elements_named("tiny").len(), 1);
        assert_eq!(doc.elements_named("leaf").len(), 0);
        assert!(lazy.resident_nodes() < lazy.total_nodes());
        // Growing the set rebuilds; the previous Arc still describes the
        // old wave.
        let expr2 = parse_query("//leaf").unwrap();
        let doc2 = lazy.materialize_for(&expr2).unwrap();
        assert_eq!(doc2.elements_named("leaf").len(), 2);
        assert_eq!(doc2.elements_named("tiny").len(), 1);
        assert_eq!(doc.elements_named("leaf").len(), 0);
    }

    #[test]
    fn unanalyzable_queries_materialize_everything() {
        let xml = "<root><a>xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</a><b>y</b></root>";
        let lazy = LazyDocument::with_threshold(xml, 44).unwrap();
        let expr = parse_query("//*").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(lazy.resident_nodes(), lazy.total_nodes());
        assert_eq!(doc.node_count(), lazy.total_nodes());
    }

    #[test]
    fn spine_tag_queries_materialize_everything() {
        let xml = "<root><big><leaf>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</leaf></big><t>c</t></root>";
        let lazy = LazyDocument::with_threshold(xml, 40).unwrap();
        assert!(lazy.spine_tags.contains("big"));
        let expr = parse_query("//big").unwrap();
        lazy.materialize_for(&expr).unwrap();
        assert_eq!(lazy.resident_nodes(), lazy.total_nodes());
    }

    #[test]
    fn demote_resets_to_cold() {
        let xml = "<root><a>xxxxxxxxxxxxxxxxxxxx</a><b>y</b></root>";
        let lazy = LazyDocument::with_threshold(xml, 30).unwrap();
        lazy.materialize_all().unwrap();
        assert_eq!(lazy.resident_nodes(), lazy.total_nodes());
        lazy.demote();
        assert_eq!(lazy.resident_nodes(), 1);
        assert!(lazy.resident().is_none());
        // Re-materialization works after demotion.
        let expr = parse_query("//b").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(doc.elements_named("b").len(), 1);
    }

    #[test]
    fn demote_to_spine_sheds_extents_but_stays_answerable() {
        let xml = "<root><big><leaf>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</leaf>\
                   <leaf>bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb</leaf></big><tiny>c</tiny></root>";
        let lazy = LazyDocument::with_threshold(xml, 48).unwrap();
        lazy.materialize_all().unwrap();
        assert_eq!(lazy.resident_nodes(), lazy.total_nodes());
        let spine = lazy.demote_to_spine().unwrap();
        assert!(spine.node_count() < lazy.total_nodes());
        assert_eq!(lazy.resident_nodes(), spine.node_count());
        // Spine keeps the containers, sheds the leaf subtrees.
        assert_eq!(spine.elements_named("big").len(), 1);
        assert_eq!(spine.elements_named("leaf").len(), 0);
        // The next targeted wave re-grows from the spine.
        let expr = parse_query("//tiny").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(doc.elements_named("tiny").len(), 1);
    }

    #[test]
    fn single_extent_documents_keep_their_root_in_every_wave() {
        // The whole document fits one extent; a wave must still contain the
        // document element, including after demotion and for queries that
        // match no extent tag.
        let lazy = LazyDocument::with_threshold("<r><a>x</a></r>", 1024).unwrap();
        assert_eq!(lazy.extent_count(), 1);
        let expr = parse_query("//zzz").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        assert_eq!(doc.elements_named("zzz").len(), 0);
        assert_eq!(doc.elements_named("a").len(), 1);
        lazy.demote();
        let spine = lazy.demote_to_spine().unwrap();
        assert_eq!(spine.elements_named("r").len(), 1);
    }

    #[test]
    fn lazy_agrees_with_eager_on_targeted_tags() {
        let xml = "<r><grp><x>111111111111111111111111</x><y>2</y></grp>\
                   <grp><x>333333333333333333333333</x></grp></r>";
        let eager = parse_xml(xml).unwrap().prepare();
        let lazy = LazyDocument::with_threshold(xml, 40).unwrap();
        let expr = parse_query("//y").unwrap();
        let doc = lazy.materialize_for(&expr).unwrap();
        // Same y nodes, by name and string value.
        let eager_y: Vec<String> = eager
            .elements_named("y")
            .iter()
            .map(|&n| eager.string_value(n))
            .collect();
        let lazy_y: Vec<String> = doc
            .elements_named("y")
            .iter()
            .map(|&n| doc.string_value(n))
            .collect();
        assert_eq!(eager_y, lazy_y);
    }

    #[test]
    fn tokenizer_rejects_malformed_input() {
        assert!(LazyDocument::new("<a><b></a></b>").is_err());
        assert!(LazyDocument::new("<a/><b/>").is_err());
        assert!(LazyDocument::new("<a k=v/>").is_err());
        assert!(LazyDocument::new("").is_err());
    }
}
