//! Monotone boolean circuits.
//!
//! The circuits follow the conventions of the proof of Theorem 3.2: `M`
//! input gates `G1 … GM` followed by `N` internal ∧/∨ gates `G(M+1) … G(M+N)`
//! numbered so that no gate depends on a gate with a larger index; the last
//! gate is the output.  Fan-in is unbounded (the proof explicitly permits
//! this, including fan-in one).

use std::fmt;

/// Identifier of a gate.  The paper's `G1 … G(M+N)` numbering corresponds to
/// `GateId(0) … GateId(M+N-1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub usize);

impl GateId {
    /// Zero-based index into the gate table.
    pub fn index(self) -> usize {
        self.0
    }

    /// The paper's 1-based name `G{i}`.
    pub fn paper_name(self) -> String {
        format!("G{}", self.0 + 1)
    }
}

/// The kind of a gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// An input gate (no incoming wires).
    Input,
    /// A conjunction of all incoming wires.
    And,
    /// A disjunction of all incoming wires.
    Or,
}

/// One gate: its kind and the gates feeding into it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    pub kind: GateKind,
    pub inputs: Vec<GateId>,
}

/// Errors detected by [`MonotoneCircuit::validate`] / the builder methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references a gate with an index that is not smaller than its
    /// own (violating the topological numbering required by Theorem 3.2).
    ForwardReference { gate: GateId, input: GateId },
    /// An input gate has incoming wires, or an internal gate has none.
    BadFanIn { gate: GateId },
    /// The circuit has no internal gate (nothing to evaluate).
    NoOutput,
    /// The number of supplied input values differs from the number of input
    /// gates.
    WrongInputCount { expected: usize, got: usize },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ForwardReference { gate, input } => write!(
                f,
                "gate {} references {} which does not precede it",
                gate.paper_name(),
                input.paper_name()
            ),
            CircuitError::BadFanIn { gate } => {
                write!(f, "gate {} has an invalid fan-in", gate.paper_name())
            }
            CircuitError::NoOutput => write!(f, "circuit has no internal gate"),
            CircuitError::WrongInputCount { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A monotone boolean circuit in the paper's ordered-gate form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonotoneCircuit {
    num_inputs: usize,
    gates: Vec<Gate>,
}

impl MonotoneCircuit {
    /// Creates a circuit with `num_inputs` input gates `G1 … GM` and no
    /// internal gates yet.
    pub fn new(num_inputs: usize) -> Self {
        let gates = (0..num_inputs)
            .map(|_| Gate {
                kind: GateKind::Input,
                inputs: Vec::new(),
            })
            .collect();
        MonotoneCircuit { num_inputs, gates }
    }

    /// Number of input gates (`M` in the paper).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of internal (non-input) gates (`N` in the paper).
    pub fn num_internal(&self) -> usize {
        self.gates.len() - self.num_inputs
    }

    /// Total number of gates `M + N`.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit has no gates at all.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in index order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate table entry for `id`.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The i-th input gate (0-based).
    pub fn input(&self, i: usize) -> GateId {
        assert!(i < self.num_inputs, "input index out of range");
        GateId(i)
    }

    /// The output gate `G(M+N)` (the last gate).
    pub fn output(&self) -> GateId {
        GateId(self.gates.len() - 1)
    }

    /// True if `id` is an input gate.
    pub fn is_input(&self, id: GateId) -> bool {
        id.index() < self.num_inputs
    }

    /// Adds an internal gate fed by `inputs`, returning its id.  Inputs must
    /// refer to already existing gates, preserving the ordering invariant.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: Vec<GateId>,
    ) -> Result<GateId, CircuitError> {
        let id = GateId(self.gates.len());
        if kind == GateKind::Input {
            return Err(CircuitError::BadFanIn { gate: id });
        }
        if inputs.is_empty() {
            return Err(CircuitError::BadFanIn { gate: id });
        }
        for &i in &inputs {
            if i.index() >= id.index() {
                return Err(CircuitError::ForwardReference { gate: id, input: i });
            }
        }
        self.gates.push(Gate { kind, inputs });
        Ok(id)
    }

    /// Convenience: adds an ∧-gate.
    pub fn and(&mut self, inputs: Vec<GateId>) -> GateId {
        self.add_gate(GateKind::And, inputs)
            .expect("invalid and-gate")
    }

    /// Convenience: adds an ∨-gate.
    pub fn or(&mut self, inputs: Vec<GateId>) -> GateId {
        self.add_gate(GateKind::Or, inputs)
            .expect("invalid or-gate")
    }

    /// Checks the structural invariants (ordering, fan-in, presence of an
    /// output gate).
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.num_internal() == 0 {
            return Err(CircuitError::NoOutput);
        }
        for (ix, gate) in self.gates.iter().enumerate() {
            let id = GateId(ix);
            match gate.kind {
                GateKind::Input => {
                    if !gate.inputs.is_empty() {
                        return Err(CircuitError::BadFanIn { gate: id });
                    }
                }
                GateKind::And | GateKind::Or => {
                    if gate.inputs.is_empty() {
                        return Err(CircuitError::BadFanIn { gate: id });
                    }
                    for &i in &gate.inputs {
                        if i.index() >= ix {
                            return Err(CircuitError::ForwardReference { gate: id, input: i });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates every gate under the given input assignment and returns the
    /// per-gate values (`values[i]` is the value of gate `G(i+1)`).
    pub fn evaluate_all(&self, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        if inputs.len() != self.num_inputs {
            return Err(CircuitError::WrongInputCount {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        self.validate()?;
        let mut values = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match gate.kind {
                GateKind::Input => inputs[values.len()],
                GateKind::And => gate.inputs.iter().all(|&i| values[i.index()]),
                GateKind::Or => gate.inputs.iter().any(|&i| values[i.index()]),
            };
            values.push(v);
        }
        Ok(values)
    }

    /// Evaluates the circuit's output gate.
    pub fn evaluate(&self, inputs: &[bool]) -> Result<bool, CircuitError> {
        Ok(*self
            .evaluate_all(inputs)?
            .last()
            .expect("validated circuit has gates"))
    }

    /// Maximum fan-in over all internal gates.
    pub fn max_fan_in(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).max().unwrap_or(0)
    }

    /// Depth of the circuit: the longest path (in internal gates) from an
    /// input to the output.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (ix, gate) in self.gates.iter().enumerate() {
            if gate.kind != GateKind::Input {
                depth[ix] = 1 + gate
                    .inputs
                    .iter()
                    .map(|&i| depth[i.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        depth.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example: carry bit of a 2-bit adder (Figure 2), built by
    /// hand here to keep this module self-contained.
    fn carry() -> MonotoneCircuit {
        let mut c = MonotoneCircuit::new(4); // a1 b1 a0 b0  = G1..G4
        let (a1, b1, a0, b0) = (GateId(0), GateId(1), GateId(2), GateId(3));
        let g5 = c.and(vec![a0, b0]); // c0
        let g6 = c.and(vec![a1, b1]);
        let g7 = c.and(vec![a1, g5]);
        let g8 = c.and(vec![b1, g5]);
        let _g9 = c.or(vec![g6, g7, g8]);
        c
    }

    #[test]
    fn carry_bit_truth_table() {
        let c = carry();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_internal(), 5);
        // carry of a1a0 + b1b0: overflow iff a + b >= 4.
        for a in 0..4u8 {
            for b in 0..4u8 {
                let inputs = [a & 2 != 0, b & 2 != 0, a & 1 != 0, b & 1 != 0];
                let expected = (a + b) >= 4;
                assert_eq!(c.evaluate(&inputs).unwrap(), expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn evaluate_all_reports_every_gate() {
        let c = carry();
        let values = c.evaluate_all(&[true, true, true, true]).unwrap();
        assert_eq!(values.len(), 9);
        assert!(values.iter().all(|&v| v));
        let values = c.evaluate_all(&[false, false, false, false]).unwrap();
        assert!(values[4..].iter().all(|&v| !v));
    }

    #[test]
    fn ordering_invariant_is_enforced() {
        let mut c = MonotoneCircuit::new(2);
        let err = c.add_gate(GateKind::And, vec![GateId(5)]).unwrap_err();
        assert!(matches!(err, CircuitError::ForwardReference { .. }));
        let err = c.add_gate(GateKind::And, vec![]).unwrap_err();
        assert!(matches!(err, CircuitError::BadFanIn { .. }));
        let err = c.add_gate(GateKind::Input, vec![]).unwrap_err();
        assert!(matches!(err, CircuitError::BadFanIn { .. }));
    }

    #[test]
    fn validation_errors() {
        let c = MonotoneCircuit::new(3);
        assert_eq!(c.validate(), Err(CircuitError::NoOutput));
        let c = carry();
        assert!(c.validate().is_ok());
        assert_eq!(
            c.evaluate(&[true, true]),
            Err(CircuitError::WrongInputCount {
                expected: 4,
                got: 2
            })
        );
    }

    #[test]
    fn fan_in_one_gates_are_allowed() {
        // The Theorem 3.2 encoding explicitly permits fan-in one ("dummy"
        // propagation gates).
        let mut c = MonotoneCircuit::new(1);
        let g = c.and(vec![GateId(0)]);
        let g2 = c.or(vec![g]);
        assert!(c.evaluate(&[true]).unwrap());
        assert!(!c.evaluate(&[false]).unwrap());
        assert_eq!(c.output(), g2);
    }

    #[test]
    fn depth_and_fan_in_metrics() {
        let c = carry();
        assert_eq!(c.depth(), 3); // G9 ← G7 ← G5 ← inputs
        assert_eq!(c.max_fan_in(), 3); // the output or-gate
        assert_eq!(c.len(), 9);
        assert!(!c.is_empty());
        assert!(c.is_input(GateId(0)));
        assert!(!c.is_input(GateId(8)));
        assert_eq!(c.input(2), GateId(2));
        assert_eq!(c.output().paper_name(), "G9");
        assert_eq!(c.gate(GateId(8)).kind, GateKind::Or);
    }

    #[test]
    #[should_panic(expected = "input index out of range")]
    fn input_accessor_bounds() {
        carry().input(4);
    }

    #[test]
    fn error_display() {
        let e = CircuitError::ForwardReference {
            gate: GateId(4),
            input: GateId(7),
        };
        assert!(e.to_string().contains("G5"));
        assert!(e.to_string().contains("G8"));
        assert!(CircuitError::NoOutput
            .to_string()
            .contains("no internal gate"));
    }
}
