//! The layered gate serialization of Figure 3.
//!
//! The proof of Theorem 3.2 treats the circuit "as if layered, with all
//! gates of a layer of the same type (∧ or ∨) and only exactly one with
//! fan-in greater than one": layer `L_k` (for `k = 1 … N`) computes the real
//! gate `G(M+k)` and propagates all previously available values
//! `G1 … G(M+k−1)` through "dummy" gates of fan-in one.  This module makes
//! that serialized view explicit; the reductions crate uses it to assign the
//! `I_k`/`O_k` labels and the tests use it to double-check that the
//! serialized circuit computes the same function as the original one.

use crate::monotone::{GateId, GateKind, MonotoneCircuit};

/// One layer of the serialized circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layer {
    /// 1-based layer index `k`; the layer computes gate `G(M+k)`.
    pub k: usize,
    /// The single gate of fan-in possibly greater than one in this layer.
    pub real_gate: GateId,
    /// Its type, which by convention is the type of every gate in the layer
    /// (the types of the fan-in-one dummies do not matter, see footnote 7).
    pub kind: GateKind,
    /// The gates whose values are propagated by dummy fan-in-one gates:
    /// `G1 … G(M+k−1)`.
    pub dummies: Vec<GateId>,
    /// The inputs of the real gate (the wires labelled `I_k` in Figure 3).
    pub inputs: Vec<GateId>,
}

/// The layered serialization of a monotone circuit (Figure 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layering {
    num_inputs: usize,
    layers: Vec<Layer>,
}

impl Layering {
    /// Serializes a circuit into layers `L_1 … L_N`.
    pub fn new(circuit: &MonotoneCircuit) -> Self {
        let m = circuit.num_inputs();
        let layers = (0..circuit.num_internal())
            .map(|i| {
                let gate_id = GateId(m + i);
                let gate = circuit.gate(gate_id);
                Layer {
                    k: i + 1,
                    real_gate: gate_id,
                    kind: gate.kind,
                    dummies: (0..m + i).map(GateId).collect(),
                    inputs: gate.inputs.clone(),
                }
            })
            .collect();
        Layering {
            num_inputs: m,
            layers,
        }
    }

    /// Number of layers (`N`).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layers in order `L_1 … L_N`.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layer computing gate `G(M+k)` (1-based `k`).
    pub fn layer(&self, k: usize) -> &Layer {
        &self.layers[k - 1]
    }

    /// Evaluates the circuit layer by layer, exactly in the serialized
    /// order, returning the value available for every gate after the last
    /// layer.  Agreement with [`MonotoneCircuit::evaluate_all`] is the
    /// correctness check for the serialization.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "wrong number of circuit inputs"
        );
        let mut values: Vec<bool> = inputs.to_vec();
        for layer in &self.layers {
            let new_value = match layer.kind {
                GateKind::And => layer.inputs.iter().all(|&i| values[i.index()]),
                GateKind::Or => layer.inputs.iter().any(|&i| values[i.index()]),
                GateKind::Input => unreachable!("internal gates are never inputs"),
            };
            // Dummies propagate existing values unchanged; only the real
            // gate adds a new one.
            values.push(new_value);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{carry_bit_circuit, random_monotone_circuit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn carry_bit_layering_matches_figure_3() {
        let c = carry_bit_circuit();
        let layering = Layering::new(&c);
        assert_eq!(layering.num_layers(), 5);
        // Layers L1..L4 are ∧, L5 is ∨ — exactly as in Figure 3.
        for k in 1..=4 {
            assert_eq!(layering.layer(k).kind, GateKind::And, "layer {k}");
        }
        assert_eq!(layering.layer(5).kind, GateKind::Or);
        // Layer k propagates G1..G(M+k-1) through dummies.
        assert_eq!(layering.layer(1).dummies.len(), 4);
        assert_eq!(layering.layer(5).dummies.len(), 8);
        assert_eq!(layering.layer(5).real_gate, GateId(8));
        assert_eq!(
            layering.layer(5).inputs,
            vec![GateId(5), GateId(6), GateId(7)]
        );
    }

    #[test]
    fn layered_evaluation_agrees_with_direct_evaluation() {
        let c = carry_bit_circuit();
        let layering = Layering::new(&c);
        for bits in 0..16u8 {
            let inputs = [bits & 8 != 0, bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            assert_eq!(layering.evaluate(&inputs), c.evaluate_all(&inputs).unwrap());
        }
    }

    #[test]
    fn layered_evaluation_agrees_on_random_circuits() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let (circuit, inputs) = random_monotone_circuit(&mut rng, 5, 12);
            let layering = Layering::new(&circuit);
            assert_eq!(
                layering.evaluate(&inputs),
                circuit.evaluate_all(&inputs).unwrap()
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong number of circuit inputs")]
    fn wrong_input_count_panics() {
        let layering = Layering::new(&carry_bit_circuit());
        layering.evaluate(&[true]);
    }
}
