//! Example circuits and random circuit generators.
//!
//! [`carry_bit_circuit`] is the running example of the paper (Figure 2): the
//! carry bit of a two-bit full adder, with gates numbered exactly as in the
//! figure.  The random generators produce ordered monotone circuits and
//! semi-unbounded circuits for the property tests and benches of the
//! reduction experiments (E3 and E4 in DESIGN.md).

use crate::monotone::{GateId, GateKind, MonotoneCircuit};
use crate::sac1::Sac1Circuit;
use rand::Rng;

/// The 2-bit full-adder carry-bit circuit of Figure 2.
///
/// Inputs (in order): `a1, b1, a0, b0` — gates `G1 … G4`.  The carry bit is
/// `c1 = (a1 ∧ b1) ∨ (a1 ∧ c0) ∨ (b1 ∧ c0)` with `c0 = a0 ∧ b0`; the gates
/// `G5 … G9` are created in exactly the paper's numbering (`G5 = c0`,
/// `G9` the output ∨-gate).
pub fn carry_bit_circuit() -> MonotoneCircuit {
    let mut c = MonotoneCircuit::new(4);
    let (a1, b1, a0, b0) = (GateId(0), GateId(1), GateId(2), GateId(3));
    let g5 = c.and(vec![a0, b0]); // c0 = a0 ∧ b0
    let g6 = c.and(vec![a1, b1]);
    let g7 = c.and(vec![a1, g5]);
    let g8 = c.and(vec![b1, g5]);
    let g9 = c.or(vec![g6, g7, g8]);
    debug_assert_eq!(g9, GateId(8));
    c
}

/// Input assignment `(a1, b1, a0, b0)` for [`carry_bit_circuit`] given the
/// two 2-bit numbers `a` and `b` (values 0–3).
pub fn carry_bit_inputs(a: u8, b: u8) -> [bool; 4] {
    [a & 0b10 != 0, b & 0b10 != 0, a & 0b01 != 0, b & 0b01 != 0]
}

/// Generates a random ordered monotone circuit with `num_inputs` inputs and
/// `num_internal` internal gates (random kinds, random fan-in 1–4 drawn from
/// earlier gates) together with a random input assignment.
pub fn random_monotone_circuit<R: Rng>(
    rng: &mut R,
    num_inputs: usize,
    num_internal: usize,
) -> (MonotoneCircuit, Vec<bool>) {
    assert!(num_inputs >= 1 && num_internal >= 1);
    let mut circuit = MonotoneCircuit::new(num_inputs);
    for _ in 0..num_internal {
        let available = circuit.len();
        let fan_in = rng.gen_range(1..=4.min(available));
        let mut inputs: Vec<GateId> = Vec::with_capacity(fan_in);
        for _ in 0..fan_in {
            inputs.push(GateId(rng.gen_range(0..available)));
        }
        inputs.sort();
        inputs.dedup();
        let kind = if rng.gen_bool(0.5) {
            GateKind::And
        } else {
            GateKind::Or
        };
        circuit
            .add_gate(kind, inputs)
            .expect("generated gate is valid");
    }
    let assignment = (0..num_inputs).map(|_| rng.gen_bool(0.5)).collect();
    (circuit, assignment)
}

/// Generates a random semi-unbounded circuit (∧ fan-in exactly ≤ 2, ∨ fan-in
/// up to 4) with a random input assignment.
pub fn random_sac1_circuit<R: Rng>(
    rng: &mut R,
    num_inputs: usize,
    num_internal: usize,
) -> (Sac1Circuit, Vec<bool>) {
    assert!(num_inputs >= 1 && num_internal >= 1);
    let mut circuit = MonotoneCircuit::new(num_inputs);
    for _ in 0..num_internal {
        let available = circuit.len();
        let kind = if rng.gen_bool(0.5) {
            GateKind::And
        } else {
            GateKind::Or
        };
        let max_fan_in = match kind {
            GateKind::And => 2.min(available),
            _ => 4.min(available),
        };
        let fan_in = rng.gen_range(1..=max_fan_in);
        let mut inputs: Vec<GateId> = Vec::with_capacity(fan_in);
        for _ in 0..fan_in {
            inputs.push(GateId(rng.gen_range(0..available)));
        }
        inputs.sort();
        inputs.dedup();
        circuit
            .add_gate(kind, inputs)
            .expect("generated gate is valid");
    }
    let assignment = (0..num_inputs).map(|_| rng.gen_bool(0.5)).collect();
    (
        Sac1Circuit::new(circuit).expect("generated circuit is semi-unbounded"),
        assignment,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn carry_bit_matches_arithmetic() {
        let c = carry_bit_circuit();
        for a in 0..4u8 {
            for b in 0..4u8 {
                let expected = a + b >= 4;
                assert_eq!(
                    c.evaluate(&carry_bit_inputs(a, b)).unwrap(),
                    expected,
                    "{a}+{b}"
                );
            }
        }
    }

    #[test]
    fn carry_bit_has_the_figure_2_shape() {
        let c = carry_bit_circuit();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_internal(), 5);
        assert_eq!(c.gate(GateId(8)).kind, GateKind::Or);
        assert_eq!(c.gate(GateId(8)).inputs.len(), 3);
        for k in 4..8 {
            assert_eq!(c.gate(GateId(k)).kind, GateKind::And);
            assert_eq!(c.gate(GateId(k)).inputs.len(), 2);
        }
    }

    #[test]
    fn random_monotone_circuits_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let (c, inputs) = random_monotone_circuit(&mut rng, 6, 20);
            assert!(c.validate().is_ok());
            assert_eq!(inputs.len(), 6);
            c.evaluate(&inputs).unwrap();
        }
    }

    #[test]
    fn random_sac1_circuits_are_semi_unbounded() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let (c, inputs) = random_sac1_circuit(&mut rng, 5, 15);
            assert!(c
                .circuit()
                .gates()
                .iter()
                .all(|g| { g.kind != GateKind::And || g.inputs.len() <= 2 }));
            c.evaluate(&inputs).unwrap();
        }
    }

    #[test]
    fn generators_are_deterministic_under_a_seed() {
        let (c1, i1) = random_monotone_circuit(&mut StdRng::seed_from_u64(9), 4, 8);
        let (c2, i2) = random_monotone_circuit(&mut StdRng::seed_from_u64(9), 4, 8);
        assert_eq!(c1, c2);
        assert_eq!(i1, i2);
    }
}
