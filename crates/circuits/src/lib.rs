//! # xpeval-circuits — boolean circuits for the paper's hardness reductions
//!
//! The P-hardness and LOGCFL-hardness results of
//! *"The Complexity of XPath Query Evaluation"* (PODS 2003) are proved by
//! reductions from circuit value problems:
//!
//! * Theorem 3.2 reduces the **monotone circuit value problem** to Core
//!   XPath evaluation,
//! * Theorem 4.2 reduces the **SAC¹ circuit value problem** (semi-unbounded
//!   circuits of logarithmic depth, Definition 2.1/Proposition 2.2) to
//!   positive Core XPath evaluation,
//! * Theorem 5.7 reuses the monotone construction for pWF with iterated
//!   predicates.
//!
//! This crate provides the circuit substrate those reductions need:
//! [`MonotoneCircuit`] with its ordered-gate invariant, evaluation and
//! random generation, the layered serialization of Figure 3
//! ([`layering::Layering`]), semi-unbounded circuits ([`sac1`]), and the
//! 2-bit full-adder carry-bit circuit of Figure 2
//! ([`examples::carry_bit_circuit`]).

pub mod examples;
pub mod layering;
pub mod monotone;
pub mod sac1;

pub use examples::{
    carry_bit_circuit, carry_bit_inputs, random_monotone_circuit, random_sac1_circuit,
};
pub use layering::Layering;
pub use monotone::{CircuitError, Gate, GateId, GateKind, MonotoneCircuit};
pub use sac1::Sac1Circuit;
