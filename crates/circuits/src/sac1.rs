//! Semi-unbounded circuits (SAC¹).
//!
//! Definition 2.1 of the paper: a *semi-unbounded* circuit is a monotone
//! circuit whose ∧-gates have bounded fan-in (w.l.o.g. two) while ∨-gates may
//! have unbounded fan-in; SAC¹ is the class of problems solvable by
//! L-uniform families of such circuits of depth `O(log n)`.  By
//! Proposition 2.2 the SAC¹ circuit value problem is LOGCFL-complete, which
//! is why Theorem 4.2 reduces it to positive Core XPath.

use crate::monotone::{CircuitError, GateKind, MonotoneCircuit};

/// A monotone circuit validated to be semi-unbounded (∧ fan-in ≤ 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sac1Circuit {
    circuit: MonotoneCircuit,
}

/// Why a circuit failed the semi-unboundedness check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sac1Error {
    /// Underlying structural problem.
    Circuit(CircuitError),
    /// An ∧-gate has fan-in greater than two.
    WideAnd { gate_index: usize, fan_in: usize },
}

impl std::fmt::Display for Sac1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sac1Error::Circuit(e) => write!(f, "{e}"),
            Sac1Error::WideAnd { gate_index, fan_in } => {
                write!(f, "and-gate G{} has fan-in {fan_in} > 2", gate_index + 1)
            }
        }
    }
}

impl std::error::Error for Sac1Error {}

impl Sac1Circuit {
    /// Validates that `circuit` is semi-unbounded and wraps it.
    pub fn new(circuit: MonotoneCircuit) -> Result<Self, Sac1Error> {
        circuit.validate().map_err(Sac1Error::Circuit)?;
        for (ix, gate) in circuit.gates().iter().enumerate() {
            if gate.kind == GateKind::And && gate.inputs.len() > 2 {
                return Err(Sac1Error::WideAnd {
                    gate_index: ix,
                    fan_in: gate.inputs.len(),
                });
            }
        }
        Ok(Sac1Circuit { circuit })
    }

    /// The underlying monotone circuit.
    pub fn circuit(&self) -> &MonotoneCircuit {
        &self.circuit
    }

    /// Evaluates the circuit.
    pub fn evaluate(&self, inputs: &[bool]) -> Result<bool, CircuitError> {
        self.circuit.evaluate(inputs)
    }

    /// Circuit depth (longest input-to-output path through internal gates).
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }

    /// Is the depth within `c · ⌈log₂(size)⌉`?  SAC¹ families must have
    /// logarithmic depth; the reproduction uses this check when generating
    /// workloads for Theorem 4.2 (whose query size is exponential in the
    /// ∧-depth and therefore polynomial only for logarithmic depth).
    pub fn has_log_depth(&self, c: usize) -> bool {
        let size = self.circuit.len().max(2);
        let log = (usize::BITS - (size - 1).leading_zeros()) as usize;
        self.depth() <= c * log.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monotone::GateId;

    fn small_sac1() -> MonotoneCircuit {
        let mut c = MonotoneCircuit::new(4);
        let g5 = c.or(vec![GateId(0), GateId(1), GateId(2), GateId(3)]); // wide or is fine
        let g6 = c.and(vec![GateId(0), GateId(1)]);
        let _g7 = c.or(vec![g5, g6]);
        c
    }

    #[test]
    fn accepts_semi_unbounded_circuits() {
        let sac = Sac1Circuit::new(small_sac1()).unwrap();
        assert!(sac.evaluate(&[true, false, false, false]).unwrap());
        assert!(!sac.evaluate(&[false, false, false, false]).unwrap());
        assert_eq!(sac.depth(), 2);
        assert!(sac.has_log_depth(2));
        assert_eq!(sac.circuit().len(), 7);
    }

    #[test]
    fn rejects_wide_and_gates() {
        let mut c = MonotoneCircuit::new(3);
        c.and(vec![GateId(0), GateId(1), GateId(2)]);
        let err = Sac1Circuit::new(c).unwrap_err();
        assert!(matches!(err, Sac1Error::WideAnd { fan_in: 3, .. }));
        assert!(err.to_string().contains("fan-in 3"));
    }

    #[test]
    fn rejects_structurally_invalid_circuits() {
        let c = MonotoneCircuit::new(2);
        assert!(matches!(
            Sac1Circuit::new(c),
            Err(Sac1Error::Circuit(CircuitError::NoOutput))
        ));
    }

    #[test]
    fn log_depth_check() {
        // A long and-chain has linear depth: not SAC¹ for small constants.
        let mut c = MonotoneCircuit::new(1);
        let mut prev = GateId(0);
        for _ in 0..40 {
            prev = c.and(vec![prev]);
        }
        let sac = Sac1Circuit::new(c).unwrap();
        assert_eq!(sac.depth(), 40);
        assert!(!sac.has_log_depth(2));
        assert!(sac.has_log_depth(10));
    }
}
