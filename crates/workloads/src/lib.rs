//! # xpeval-workloads — synthetic workload generators
//!
//! Document, query and graph generators used by the benchmark harness
//! (crate `xpeval-bench`), the examples and the workspace-level property
//! tests.  Every generator is deterministic under a caller-supplied RNG
//! seed so that the experiments recorded in EXPERIMENTS.md are
//! reproducible.

pub mod documents;
pub mod graphs;
pub mod queries;

pub use documents::{
    auction_site_document, binary_tree_document, chain_document, random_tree_document,
    wide_document,
};
pub use graphs::{layered_dag, random_digraph};
pub use queries::{
    blowup_document, blowup_query, core_xpath_query_corpus, oscillating_query, pwf_query_corpus,
    random_core_query, random_pf_query, random_pwf_query, star_chain_query,
};
