//! Synthetic XML document generators.
//!
//! The shapes cover the regimes the paper's complexity bounds distinguish:
//! wide flat documents (large fan-out, the shape of the Theorem 3.2 gate
//! documents), deep chains (worst case for ancestor/descendant axes),
//! balanced binary trees, uniformly random trees and a small
//! auction-site-flavoured document (realistic tag distribution in the style
//! of the XMark benchmark) for the examples.

use rand::Rng;
use xpeval_dom::{Document, DocumentBuilder};

/// A flat document: a root with `width` children, each with `leaf_children`
/// leaves below.  Tags cycle through `a`, `b`, `c`, `d`.
pub fn wide_document(width: usize, leaf_children: usize) -> Document {
    let tags = ["a", "b", "c", "d"];
    let mut b = DocumentBuilder::new();
    b.open_element("root");
    for i in 0..width {
        b.open_element(tags[i % tags.len()]);
        for j in 0..leaf_children {
            b.leaf_element(tags[(i + j + 1) % tags.len()]);
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// A chain of depth `depth`, tags cycling through `a`, `b`, `c`; the deepest
/// element is tagged `leaf`.
pub fn chain_document(depth: usize) -> Document {
    let tags = ["a", "b", "c"];
    let mut b = DocumentBuilder::new();
    for i in 0..depth {
        b.open_element(tags[i % tags.len()]);
    }
    b.leaf_element("leaf");
    b.finish()
}

/// A complete binary tree of the given depth (≥ 0); inner nodes are tagged
/// `n`, leaves `leaf`, and every node carries an `id` attribute.
pub fn binary_tree_document(depth: usize) -> Document {
    let mut b = DocumentBuilder::new();
    let mut counter = 0usize;
    build_binary(&mut b, depth, &mut counter);
    b.finish()
}

fn build_binary(b: &mut DocumentBuilder, depth: usize, counter: &mut usize) {
    let tag = if depth == 0 { "leaf" } else { "n" };
    b.open_element(tag);
    b.attribute("id", counter.to_string());
    *counter += 1;
    if depth > 0 {
        build_binary(b, depth - 1, counter);
        build_binary(b, depth - 1, counter);
    }
    b.close_element();
}

/// A uniformly random tree with `nodes` elements: each new element is
/// attached to a random previously created element (preferring recent ones
/// to keep the depth moderate).  Tags are drawn from `tags`.
pub fn random_tree_document<R: Rng>(rng: &mut R, nodes: usize, tags: &[&str]) -> Document {
    assert!(!tags.is_empty(), "need at least one tag");
    // Build the parent structure first, then emit it in document order with
    // the (iterative) builder to avoid recursion on deep random trees.
    let mut parents: Vec<usize> = vec![0];
    for i in 1..nodes.max(1) {
        // Bias towards recent nodes: pick from the last 8 or anywhere.
        let parent = if rng.gen_bool(0.7) {
            let lo = i.saturating_sub(8);
            rng.gen_range(lo..i)
        } else {
            rng.gen_range(0..i)
        };
        parents.push(parent);
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.max(1)];
    for (i, &p) in parents.iter().enumerate().skip(1) {
        children[p].push(i);
    }
    let mut b = DocumentBuilder::new();
    // Iterative DFS emit.
    let mut stack: Vec<(usize, bool)> = vec![(0, true)];
    while let Some((node, entering)) = stack.pop() {
        if entering {
            let tag = tags[rng.gen_range(0..tags.len())];
            b.open_element(tag);
            stack.push((node, false));
            for &c in children[node].iter().rev() {
                stack.push((c, true));
            }
        } else {
            b.close_element();
        }
    }
    b.finish()
}

/// A small auction-site document (XMark-flavoured): `items` items across
/// four regions, each with a seller, a description and a variable number of
/// bids.  Used by the examples and the data-complexity experiment.
pub fn auction_site_document<R: Rng>(rng: &mut R, items: usize) -> Document {
    let regions = ["europe", "asia", "namerica", "samerica"];
    let mut b = DocumentBuilder::new();
    b.open_element("site");
    b.open_element("regions");
    for (r, region) in regions.iter().enumerate() {
        b.open_element(*region);
        for i in 0..items {
            if i % regions.len() != r {
                continue;
            }
            b.open_element("item");
            b.attribute("id", format!("item{i}"));
            b.open_element("name");
            b.text(format!("Item number {i}"));
            b.close_element();
            b.open_element("seller");
            b.attribute(
                "person",
                format!("person{}", rng.gen_range(0..items.max(1))),
            );
            b.close_element();
            b.open_element("description");
            b.text("A reproduction artifact of considerable value.");
            b.close_element();
            let bids = rng.gen_range(0..5);
            for bid in 0..bids {
                b.open_element("bid");
                b.attribute("increase", format!("{}", (bid + 1) * 3));
                b.close_element();
            }
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    b.open_element("people");
    for p in 0..items {
        b.open_element("person");
        b.attribute("id", format!("person{p}"));
        b.open_element("name");
        b.text(format!("Person {p}"));
        b.close_element();
        b.close_element();
    }
    b.close_element();
    b.close_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wide_document_shape() {
        let d = wide_document(10, 3);
        let root = d.first_child(d.root()).unwrap();
        assert_eq!(d.name(root), Some("root"));
        assert_eq!(d.element_count(), 1 + 10 + 30);
        assert_eq!(d.height(), 3);
    }

    #[test]
    fn chain_document_shape() {
        let d = chain_document(50);
        assert_eq!(d.height(), 51);
        assert_eq!(d.element_count(), 51);
    }

    #[test]
    fn binary_tree_shape() {
        let d = binary_tree_document(4);
        // 2^(depth+1) - 1 elements.
        assert_eq!(d.element_count(), 31);
        // Height counts the id attribute nodes hanging off the deepest leaf.
        assert_eq!(d.height(), 6);
        // Every element has an id attribute.
        for e in d.all_elements() {
            assert!(d.attribute_value(e, "id").is_some());
        }
    }

    #[test]
    fn random_tree_is_reproducible_and_sized() {
        let d1 = random_tree_document(&mut StdRng::seed_from_u64(3), 200, &["a", "b", "c"]);
        let d2 = random_tree_document(&mut StdRng::seed_from_u64(3), 200, &["a", "b", "c"]);
        assert_eq!(d1.element_count(), 200);
        assert_eq!(d2.element_count(), 200);
        assert_eq!(xpeval_dom::serialize(&d1), xpeval_dom::serialize(&d2));
    }

    #[test]
    fn random_tree_handles_tiny_sizes() {
        let d = random_tree_document(&mut StdRng::seed_from_u64(1), 1, &["x"]);
        assert_eq!(d.element_count(), 1);
        let d = random_tree_document(&mut StdRng::seed_from_u64(1), 0, &["x"]);
        assert_eq!(d.element_count(), 1);
    }

    #[test]
    fn auction_document_contains_expected_structure() {
        let d = auction_site_document(&mut StdRng::seed_from_u64(9), 20);
        let items = d
            .all_elements()
            .filter(|&n| d.name(n) == Some("item"))
            .count();
        assert_eq!(items, 20);
        let people = d
            .all_elements()
            .filter(|&n| d.name(n) == Some("person"))
            .count();
        assert_eq!(people, 20);
        let site = d.first_child(d.root()).unwrap();
        assert_eq!(d.name(site), Some("site"));
    }
}
