//! Random digraph generators for the reachability experiment (Theorem 4.3).

use rand::Rng;
use xpeval_reductions::DirectedGraph;

/// An Erdős–Rényi style random digraph on `n` vertices where every ordered
/// pair (u ≠ t) carries an edge with probability `p`.
pub fn random_digraph<R: Rng>(rng: &mut R, n: usize, p: f64) -> DirectedGraph {
    let mut g = DirectedGraph::new(n);
    for u in 1..=n {
        for t in 1..=n {
            if u != t && rng.gen_bool(p) {
                g.add_edge(u, t);
            }
        }
    }
    g
}

/// A layered DAG with `layers` layers of `width` vertices each; every vertex
/// has `out_degree` random edges into the next layer.  Vertex 1 is in the
/// first layer and vertex `layers·width` in the last, so long positive
/// reachability chains exist by construction.
pub fn layered_dag<R: Rng>(
    rng: &mut R,
    layers: usize,
    width: usize,
    out_degree: usize,
) -> DirectedGraph {
    assert!(layers >= 1 && width >= 1);
    let n = layers * width;
    let mut g = DirectedGraph::new(n);
    for layer in 0..layers - 1 {
        for i in 0..width {
            let u = layer * width + i + 1;
            for _ in 0..out_degree {
                let t = (layer + 1) * width + rng.gen_range(0..width) + 1;
                g.add_edge(u, t);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_digraph_properties() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_digraph(&mut rng, 10, 0.3);
        assert_eq!(g.num_vertices(), 10);
        assert!(g.num_edges() <= 90);
        // No self loops from the generator.
        for u in 1..=10 {
            assert!(!g.has_edge(u, u));
        }
        // Deterministic under the seed.
        let g2 = random_digraph(&mut StdRng::seed_from_u64(3), 10, 0.3);
        assert_eq!(g, g2);
    }

    #[test]
    fn dense_graph_is_strongly_connected_in_practice() {
        let g = random_digraph(&mut StdRng::seed_from_u64(5), 8, 0.9);
        for u in 1..=8 {
            for t in 1..=8 {
                assert!(g.reachable(u, t), "{u} -> {t}");
            }
        }
    }

    #[test]
    fn layered_dag_reachability_runs_forward_only() {
        let g = layered_dag(&mut StdRng::seed_from_u64(7), 4, 3, 2);
        assert_eq!(g.num_vertices(), 12);
        // No edge goes backwards.
        for (u, t) in g.edges() {
            assert!(t > u.min(t), "edge {u}->{t}");
            assert!(
                (u - 1) / 3 + 1 == (t - 1) / 3,
                "edge {u}->{t} skips a layer"
            );
        }
        // Vertices in the last layer reach nothing.
        for t in 10..=12 {
            for other in 1..=9 {
                assert!(!g.reachable(t, other));
            }
        }
    }

    #[test]
    fn single_layer_dag_has_no_edges() {
        let g = layered_dag(&mut StdRng::seed_from_u64(1), 1, 5, 3);
        assert_eq!(g.num_edges(), 0);
    }
}
