//! Synthetic XPath query generators, one family per experiment.

use rand::Rng;
use xpeval_dom::{Axis, NodeTest};
use xpeval_syntax::{Expr, LocationPath, RelOp, Step};

/// The companion document for [`blowup_query`]: a single `a` element with
/// `fan_out` children tagged `b`.  On this document the naive evaluator's
/// intermediate list grows as `fan_out^reps`.
pub fn blowup_document(fan_out: usize) -> xpeval_dom::Document {
    let mut b = xpeval_dom::DocumentBuilder::new();
    b.open_element("a");
    for _ in 0..fan_out {
        b.leaf_element("b");
    }
    b.close_element();
    b.finish()
}

/// The exponential-blow-up family of the paper's introduction:
/// `//a/b/parent::a/b/…` with `reps` repetitions of `/b/parent::a`.
/// Naive (re-evaluation) engines take time `k^reps` on a document whose `a`
/// element has `k` children `b`; the context-value-table evaluator stays
/// polynomial.
pub fn blowup_query(reps: usize) -> Expr {
    let mut steps = vec![
        Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode),
        Step::new(Axis::Child, NodeTest::name("a")),
    ];
    for _ in 0..reps {
        steps.push(Step::new(Axis::Child, NodeTest::name("b")));
        steps.push(Step::new(Axis::Parent, NodeTest::name("a")));
    }
    Expr::Path(LocationPath::absolute(steps))
}

/// A PF chain query of `len` steps alternating `descendant` and `child`
/// over the given tag alphabet — used for the Core XPath / PF scaling
/// experiments (|Q| sweeps).
pub fn star_chain_query(len: usize, tags: &[&str]) -> Expr {
    let mut steps = Vec::with_capacity(len);
    for i in 0..len {
        let axis = if i % 2 == 0 {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let test = if tags.is_empty() {
            NodeTest::Star
        } else {
            NodeTest::name(tags[i % tags.len()])
        };
        steps.push(Step::new(axis, test));
    }
    Expr::Path(LocationPath::absolute(steps))
}

/// A PF query of `len` steps that never produces an empty intermediate node
/// set on any non-empty document: it alternates `descendant-or-self::node()`
/// and `ancestor-or-self::node()`.  Used by the query-complexity experiments
/// (E11), where the work per step must stay proportional to |D| so that the
/// total work is Θ(|D|·|Q|) rather than collapsing to zero once a forward
/// chain runs off the bottom of the tree.
pub fn oscillating_query(len: usize) -> Expr {
    let mut steps = Vec::with_capacity(len);
    for i in 0..len {
        let axis = if i % 2 == 0 {
            Axis::DescendantOrSelf
        } else {
            Axis::AncestorOrSelf
        };
        steps.push(Step::new(axis, NodeTest::AnyNode));
    }
    Expr::Path(LocationPath::absolute(steps))
}

/// A random PF query (location path without conditions) of the given length.
pub fn random_pf_query<R: Rng>(rng: &mut R, len: usize, tags: &[&str]) -> Expr {
    const AXES: [Axis; 6] = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Parent,
        Axis::AncestorOrSelf,
        Axis::FollowingSibling,
    ];
    let mut steps = vec![Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode)];
    for _ in 0..len {
        let axis = AXES[rng.gen_range(0..AXES.len())];
        let test = if rng.gen_bool(0.3) || tags.is_empty() {
            NodeTest::Star
        } else {
            NodeTest::name(tags[rng.gen_range(0..tags.len())])
        };
        steps.push(Step::new(axis, test));
    }
    Expr::Path(LocationPath::absolute(steps))
}

/// A random Core XPath query: a short location path whose steps carry
/// randomly nested conditions built from `and` / `or` / `not` and relative
/// paths.  `depth` bounds the nesting of conditions.
pub fn random_core_query<R: Rng>(rng: &mut R, depth: usize, tags: &[&str]) -> Expr {
    let steps = vec![
        Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode),
        Step::with_predicate(
            Axis::Child,
            random_test(rng, tags),
            random_condition(rng, depth, tags, true),
        ),
    ];
    Expr::Path(LocationPath::absolute(steps))
}

fn random_test<R: Rng>(rng: &mut R, tags: &[&str]) -> NodeTest {
    if rng.gen_bool(0.3) || tags.is_empty() {
        NodeTest::Star
    } else {
        NodeTest::name(tags[rng.gen_range(0..tags.len())])
    }
}

fn random_condition<R: Rng>(rng: &mut R, depth: usize, tags: &[&str], allow_not: bool) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        // A relative path atom.
        let axis = match rng.gen_range(0..4) {
            0 => Axis::Child,
            1 => Axis::Descendant,
            2 => Axis::FollowingSibling,
            _ => Axis::AncestorOrSelf,
        };
        return Expr::Path(LocationPath::relative(vec![Step::new(
            axis,
            random_test(rng, tags),
        )]));
    }
    match rng.gen_range(0..3) {
        0 => Expr::and(
            random_condition(rng, depth - 1, tags, allow_not),
            random_condition(rng, depth - 1, tags, allow_not),
        ),
        1 => Expr::or(
            random_condition(rng, depth - 1, tags, allow_not),
            random_condition(rng, depth - 1, tags, allow_not),
        ),
        _ if allow_not => Expr::not(random_condition(rng, depth - 1, tags, allow_not)),
        _ => random_condition(rng, depth - 1, tags, allow_not),
    }
}

/// A fixed corpus of Core XPath queries over the `a`/`b`/`c`/`d` tag
/// alphabet of the synthetic documents; used by E12 (linear-time Core XPath)
/// and the evaluator-agreement property tests.
pub fn core_xpath_query_corpus() -> Vec<(&'static str, Expr)> {
    let parse = |s: &str| xpeval_syntax::parse_query(s).expect("corpus query parses");
    vec![
        ("child chain", parse("/root/a/b")),
        ("descendant", parse("//c")),
        ("single condition", parse("//a[child::b]")),
        ("negated condition", parse("//a[not(child::b)]")),
        ("conjunction", parse("//a[child::b and descendant::c]")),
        ("disjunction", parse("//b[child::a or child::c]")),
        (
            "nested negation",
            parse("//a[not(child::b[not(child::c)])]"),
        ),
        (
            "sibling navigation",
            parse("//b[following-sibling::c]/parent::a"),
        ),
        (
            "ancestor test",
            parse("//d[ancestor::a and not(ancestor::b)]"),
        ),
        ("union", parse("//a[child::b] | //c[parent::a]")),
    ]
}

/// A fixed corpus of pWF queries (arithmetic + position/last, single
/// predicates, no negation); used by E6/E7.
pub fn pwf_query_corpus() -> Vec<(&'static str, Expr)> {
    let parse = |s: &str| xpeval_syntax::parse_query(s).expect("corpus query parses");
    vec![
        ("positional", parse("//a[position() = 2]")),
        ("last", parse("//b[position() = last()]")),
        ("arithmetic", parse("//a[position() + 1 = last()]")),
        (
            "structural and positional",
            parse("//a[child::b and position() < 4]"),
        ),
        ("comparison to constant", parse("//item[@id = 'item3']")),
        ("bid filter", parse("//item[bid/@increase > 6]/name")),
        (
            "existential",
            parse("//person[starts-with(@id, 'person1')]"),
        ),
    ]
}

/// A random pWF predicate query of the form
/// `//tag[position() <op> f(last())]` used by the parallel-speed-up sweep.
pub fn random_pwf_query<R: Rng>(rng: &mut R, tags: &[&str]) -> Expr {
    let tag = tags[rng.gen_range(0..tags.len())];
    let op = match rng.gen_range(0..4) {
        0 => RelOp::Le,
        1 => RelOp::Lt,
        2 => RelOp::Ge,
        _ => RelOp::Ne,
    };
    let bound = Expr::arithmetic(
        xpeval_syntax::ArithOp::Div,
        Expr::last(),
        Expr::Number(rng.gen_range(2..5) as f64),
    );
    Expr::Path(LocationPath::absolute(vec![
        Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode),
        Step::with_predicate(
            Axis::Child,
            NodeTest::name(tag),
            Expr::relational(op, Expr::position(), bound),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xpeval_syntax::{classify, Fragment};

    #[test]
    fn blowup_query_shape() {
        let q = blowup_query(3);
        let path = q.as_path().unwrap();
        assert_eq!(path.steps.len(), 2 + 6);
        assert_eq!(classify(&q).fragment, Fragment::PF);
        assert_eq!(
            q.to_string(),
            "/descendant-or-self::node()/child::a/child::b/parent::a/child::b/parent::a/child::b/parent::a"
        );
    }

    #[test]
    fn star_chain_is_pf() {
        let q = star_chain_query(7, &["a", "b"]);
        assert_eq!(q.as_path().unwrap().steps.len(), 7);
        assert_eq!(classify(&q).fragment, Fragment::PF);
        let q = star_chain_query(3, &[]);
        assert_eq!(classify(&q).fragment, Fragment::PF);
    }

    #[test]
    fn random_pf_queries_are_pf() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let q = random_pf_query(&mut rng, 6, &["a", "b", "c"]);
            assert_eq!(classify(&q).fragment, Fragment::PF);
        }
    }

    #[test]
    fn random_core_queries_stay_in_core_xpath() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let q = random_core_query(&mut rng, 3, &["a", "b", "c", "d"]);
            let frag = classify(&q).fragment;
            assert!(frag <= Fragment::CoreXPath, "{q} classified as {frag}");
        }
    }

    #[test]
    fn corpora_classify_where_expected() {
        for (name, q) in core_xpath_query_corpus() {
            let frag = classify(&q).fragment;
            assert!(frag <= Fragment::CoreXPath, "{name} => {frag}");
        }
        for (name, q) in pwf_query_corpus() {
            let frag = classify(&q).fragment;
            assert!(
                frag == Fragment::PWF || frag == Fragment::PXPath,
                "{name} => {frag}"
            );
        }
    }

    #[test]
    fn random_pwf_queries_classify_as_pwf() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..30 {
            let q = random_pwf_query(&mut rng, &["a", "b"]);
            assert_eq!(classify(&q).fragment, Fragment::PWF, "{q}");
        }
    }

    #[test]
    fn generated_queries_round_trip_through_the_parser() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            for q in [
                blowup_query(4),
                star_chain_query(5, &["a", "b", "c"]),
                random_pf_query(&mut rng, 5, &["a", "b"]),
                random_core_query(&mut rng, 3, &["a", "b", "c"]),
                random_pwf_query(&mut rng, &["a", "b"]),
            ] {
                let printed = q.to_string();
                let reparsed = xpeval_syntax::parse_query(&printed)
                    .unwrap_or_else(|e| panic!("{printed}: {e}"));
                assert_eq!(q, reparsed);
            }
        }
    }
}
