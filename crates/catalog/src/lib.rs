//! # xpeval-catalog — the named multi-document store
//!
//! The pipeline below this crate amortizes work along two axes: a
//! [`CompiledQuery`](xpeval_core::CompiledQuery) is compiled once per
//! *query*, a [`PreparedDocument`](xpeval_dom::PreparedDocument) is
//! indexed once per *document*.  A serving system over many documents
//! needs a third axis — the (query × document) pair — and a way to *name*
//! documents at all: `Arc` pointers cannot be shared across submission
//! boundaries, replaced atomically, or evicted by policy.
//!
//! [`Catalog`] is that layer:
//!
//! * **Named ingestion** — [`Catalog::insert_xml`] /
//!   [`Catalog::insert_document`] parse and prepare once and store the
//!   document under a human-readable name plus a stable [`DocId`] (never
//!   reused).  Re-inserting a name **replaces** the document and bumps its
//!   generation counter; capacity is bounded with LRU eviction; per-entry
//!   usage counters are observable ([`DocInfo`]).
//! * **(query × document) plan artifacts** — the first evaluation of a
//!   query against a document generation builds a [`PlanArtifact`]: the
//!   source-aware strategy choice pinned into a specialized plan, the
//!   final-step name tests resolved to the document's interned
//!   [`TagId`](xpeval_dom::TagId)s, and the candidate bound (zero bound ⇒
//!   empty result without evaluating).  Artifacts are cached keyed by
//!   (query, [`DocId`], generation), so a replacement invalidates exactly
//!   that document's artifacts and nothing else.
//! * **Fan-out evaluation** — [`Catalog::evaluate_on`] targets one name;
//!   [`Catalog::evaluate_on_all`] and [`Catalog::evaluate_matching`] (glob
//!   selection) run one query across many documents, returning
//!   per-document [`FanOut`] results.
//! * **Pluggable storage backends** — beyond the eager default,
//!   [`Catalog::insert_lazy`] stores a tokenized document that
//!   materializes subtree extents on demand (each query grows the
//!   resident wave; `EvalStats::nodes_materialized` witnesses how little
//!   a targeted query parsed), [`Catalog::insert_snapshot`] pins a
//!   zero-copy `PreparedSnapshot`, and [`Catalog::insert_tree`] accepts
//!   any non-XML `TreeProvider` (e.g. JSON).  Artifacts are additionally
//!   keyed by [`BackendKind`]; [`CatalogBuilder::node_budget`] bounds
//!   total *resident* nodes, demoting lazy entries back to their spine
//!   before evicting anyone.
//! * **Observability** — [`CatalogStats`] counts inserts, replacements,
//!   evictions, demotions, resolve hits, artifact
//!   hits/misses/invalidations, with a one-line
//!   [`Display`](std::fmt::Display) form in the family of `CacheStats`
//!   and `ServeStats`.
//!
//! ## Quickstart
//!
//! ```
//! use xpeval_catalog::Catalog;
//!
//! let catalog = Catalog::builder().capacity(64).build();
//! catalog.insert_xml("orders", "<orders><order id='1'/><order id='2'/></orders>").unwrap();
//! catalog.insert_xml("invoices", "<invoices><invoice/></invoices>").unwrap();
//!
//! // Target one document by name; repeats hit the artifact cache.
//! for _ in 0..10 {
//!     let out = catalog.evaluate_on("orders", "count(//order)").unwrap();
//!     assert_eq!(out.value, xpeval_core::Value::Number(2.0));
//! }
//! assert!(catalog.stats().artifact_hits >= 9);
//!
//! // Fan one query out over every document.
//! let results = catalog.evaluate_on_all("count(//*)");
//! assert_eq!(results.len(), 2);
//!
//! // Replacing a document bumps its generation and invalidates exactly
//! // its artifacts.
//! catalog.insert_xml("orders", "<orders/>").unwrap();
//! assert_eq!(catalog.generation("orders"), Some(2));
//! ```
//!
//! The serving layer (`xpeval-serve`) accepts a catalog reference so
//! asynchronous submissions can target documents by name too.

pub mod artifact;
pub(crate) mod glob;
pub mod stats;
pub mod store;

pub use artifact::{ArtifactScope, PlanArtifact};
pub use stats::{CatalogStats, DocInfo};
pub use store::{Catalog, CatalogBuilder, CatalogError, DocId, FanOut, MutationOutcome};
pub use xpeval_backends::BackendKind;
pub use xpeval_live::{LiveDocument, PendingEdits};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xpeval_core::{EvalError, Value};
    use xpeval_dom::parse_xml;

    #[test]
    fn insert_resolve_get_roundtrip() {
        let catalog = Catalog::new();
        let id = catalog.insert_xml("a", "<r><x/></r>").unwrap();
        assert_eq!(catalog.resolve("a"), Some(id));
        assert!(catalog.contains("a"));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.generation("a"), Some(1));
        let prepared = catalog.get("a").unwrap();
        assert_eq!(prepared.node_count(), 3);
        assert!(Arc::ptr_eq(&prepared, &catalog.get_by_id(id).unwrap()));
        assert_eq!(catalog.resolve("nosuch"), None);
        let s = catalog.stats();
        assert_eq!((s.inserts, s.resolve_hits, s.resolve_misses), (1, 2, 1));
    }

    #[test]
    fn insert_xml_reports_parse_errors() {
        let catalog = Catalog::new();
        let err = catalog.insert_xml("bad", "<r><unclosed>").unwrap_err();
        assert!(matches!(err, CatalogError::Xml(_)), "{err:?}");
        assert!(!catalog.contains("bad"));
    }

    #[test]
    fn replacement_keeps_the_id_and_bumps_the_generation() {
        let catalog = Catalog::new();
        let id1 = catalog.insert_xml("doc", "<r><a/></r>").unwrap();
        let id2 = catalog.insert_xml("doc", "<r><a/><a/></r>").unwrap();
        assert_eq!(id1, id2);
        assert_eq!(catalog.generation("doc"), Some(2));
        assert_eq!(catalog.len(), 1);
        let out = catalog.evaluate_on("doc", "count(//a)").unwrap();
        assert_eq!(out.value, Value::Number(2.0));
        let s = catalog.stats();
        assert_eq!((s.inserts, s.replacements), (1, 1));
    }

    #[test]
    fn evaluate_on_repeats_hit_the_artifact_cache() {
        let catalog = Catalog::new();
        catalog.insert_xml("d", "<r><a/><b/><a/></r>").unwrap();
        for _ in 0..5 {
            let out = catalog.evaluate_on("d", "//a").unwrap();
            assert_eq!(out.value.expect_nodes().len(), 2);
        }
        let s = catalog.stats();
        assert_eq!(s.artifact_misses, 1, "{s}");
        assert_eq!(s.artifact_hits, 4, "{s}");
        assert_eq!(s.evaluations, 5, "{s}");
        let info = catalog.info("d").unwrap();
        assert_eq!((info.evaluations, info.artifact_hits), (5, 4));
    }

    #[test]
    fn replacement_invalidates_only_its_own_artifacts() {
        let catalog = Catalog::new();
        catalog.insert_xml("left", "<r><a/></r>").unwrap();
        catalog.insert_xml("right", "<r><a/><a/></r>").unwrap();
        catalog.evaluate_on("left", "//a").unwrap();
        catalog.evaluate_on("right", "//a").unwrap();
        assert_eq!(catalog.stats().artifact_len, 2);

        catalog.insert_xml("left", "<r/>").unwrap();
        let s = catalog.stats();
        assert_eq!(s.artifact_len, 1, "{s}");
        assert_eq!(s.artifact_invalidations, 1, "{s}");

        // The replaced document evaluates against its new generation...
        assert_eq!(
            catalog.evaluate_on("left", "//a").unwrap().value,
            Value::NodeSet(Vec::new())
        );
        // ...and the untouched document still hits its artifact.
        let hits_before = catalog.stats().artifact_hits;
        catalog.evaluate_on("right", "//a").unwrap();
        assert_eq!(catalog.stats().artifact_hits, hits_before + 1);
    }

    #[test]
    fn identical_documents_share_one_artifact() {
        let catalog = Catalog::new();
        let xml = "<library><book><title/></book><book><title/></book></library>";
        catalog.insert_xml("mirror-a", xml).unwrap();
        catalog.insert_xml("mirror-b", xml).unwrap();

        let a = catalog.evaluate_on("mirror-a", "//book/title").unwrap();
        let b = catalog.evaluate_on("mirror-b", "//book/title").unwrap();
        assert_eq!(a.value, b.value);

        let s = catalog.stats();
        // One build served both names: the second evaluation hit the
        // artifact built for the first document.
        assert_eq!(s.artifact_misses, 1, "{s}");
        assert_eq!(s.artifact_hits, 1, "{s}");
        assert_eq!(s.artifact_len, 1, "{s}");
        assert_eq!(s.artifact_cross_doc_hits, 1, "{s}");
        assert!(s.to_string().contains("cross_doc_hits 1"), "{s}");

        // Divergence ends the sharing: replacing one copy with different
        // content leaves the other copy's artifact alive and hot.
        catalog.insert_xml("mirror-a", "<library/>").unwrap();
        let hits = catalog.stats().artifact_hits;
        catalog.evaluate_on("mirror-b", "//book/title").unwrap();
        let s = catalog.stats();
        assert_eq!(s.artifact_hits, hits + 1, "{s}");
        assert_eq!(s.artifact_len, 1, "{s}");
    }

    #[test]
    fn replacement_with_identical_content_keeps_the_shared_artifact() {
        let catalog = Catalog::new();
        let xml = "<r><a/><b/><a/></r>";
        catalog.insert_xml("d", xml).unwrap();
        catalog.evaluate_on("d", "//a").unwrap();
        assert_eq!(catalog.stats().artifact_misses, 1);

        // Re-inserting byte-identical content under the same name bumps
        // the generation but lands on the same content hash, so the
        // artifact survives and the next evaluation is a hit.
        catalog.insert_xml("d", xml).unwrap();
        let out = catalog.evaluate_on("d", "//a").unwrap();
        assert_eq!(out.value.expect_nodes().len(), 2);
        let s = catalog.stats();
        assert_eq!(s.replacements, 1, "{s}");
        assert_eq!(s.artifact_misses, 1, "{s}");
        assert_eq!(s.artifact_hits, 1, "{s}");
        assert_eq!(s.artifact_invalidations, 0, "{s}");
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_document() {
        let catalog = Catalog::builder().capacity(2).build();
        catalog.insert_xml("a", "<a/>").unwrap();
        catalog.insert_xml("b", "<b/>").unwrap();
        catalog.evaluate_on("a", "count(//*)").unwrap(); // touch a
        catalog.insert_xml("c", "<c/>").unwrap(); // evicts b
        assert!(catalog.contains("a"));
        assert!(!catalog.contains("b"));
        assert!(catalog.contains("c"));
        let s = catalog.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.documents, 2);
        assert!(matches!(
            catalog.evaluate_on("b", "count(//*)"),
            Err(CatalogError::UnknownDocument { .. })
        ));
    }

    #[test]
    fn remove_retires_the_name_and_purges_artifacts() {
        let catalog = Catalog::new();
        catalog.insert_xml("d", "<r><a/></r>").unwrap();
        catalog.evaluate_on("d", "//a").unwrap();
        assert_eq!(catalog.stats().artifact_len, 1);
        assert!(catalog.remove("d"));
        assert!(!catalog.remove("d"));
        assert_eq!(catalog.stats().artifact_len, 0);
        assert_eq!(catalog.stats().removals, 1);
        assert!(catalog.get("d").is_none());
    }

    #[test]
    fn fan_out_covers_all_and_glob_selects() {
        let catalog = Catalog::new();
        catalog.insert_xml("orders-1", "<r><x/></r>").unwrap();
        catalog.insert_xml("orders-2", "<r><x/><x/></r>").unwrap();
        catalog.insert_xml("invoices", "<r/>").unwrap();

        let all = catalog.evaluate_on_all("count(//x)");
        assert_eq!(all.len(), 3);
        // Sorted by name.
        let names: Vec<&str> = all.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["invoices", "orders-1", "orders-2"]);
        assert_eq!(all[1].result.as_ref().unwrap().value, Value::Number(1.0));

        let some = catalog.evaluate_matching("orders-*", "count(//x)");
        assert_eq!(some.len(), 2);
        assert_eq!(some[1].result.as_ref().unwrap().value, Value::Number(2.0));
        assert!(catalog.evaluate_matching("nomatch-*", "1").is_empty());
    }

    #[test]
    fn fan_out_does_not_poison_on_a_failing_document() {
        // A query that is fine on one document shape and errors on
        // another is hard to construct (evaluation is total); a failing
        // *compile* errors on every document, which still exercises the
        // per-document Result slots.
        let catalog = Catalog::new();
        catalog.insert_xml("a", "<r/>").unwrap();
        catalog.insert_xml("b", "<r/>").unwrap();
        let results = catalog.evaluate_on_all("//[");
        assert_eq!(results.len(), 2);
        for f in &results {
            assert!(matches!(f.result, Err(EvalError::Parse { .. })), "{f:?}");
        }
    }

    #[test]
    fn handles_share_the_store() {
        let catalog = Catalog::new();
        let clone = catalog.clone();
        catalog.insert_xml("d", "<r/>").unwrap();
        assert!(clone.contains("d"));
        clone.evaluate_on("d", "count(//*)").unwrap();
        assert_eq!(catalog.stats().evaluations, 1);
    }

    #[test]
    fn ids_are_never_reused() {
        let catalog = Catalog::new();
        let id1 = catalog.insert_xml("a", "<a/>").unwrap();
        assert!(catalog.remove("a"));
        let id2 = catalog.insert_xml("a", "<a/>").unwrap();
        assert_ne!(id1, id2, "a removed id must not be recycled");
        assert_eq!(catalog.resolve("a"), Some(id2));
    }

    #[test]
    fn catalogs_sharing_an_engine_do_not_collide_on_keyed_indexes() {
        // DocIds come from one process-global counter, so two catalogs on
        // one engine can never collide on a stable key — and removing
        // from one catalog must not discard the other's live index.
        let engine = xpeval_core::Engine::builder().build();
        let a = Catalog::builder().engine(engine.clone()).build();
        let b = Catalog::builder().engine(engine.clone()).build();
        let id_a = a.insert_xml("d", "<r><x/></r>").unwrap();
        let id_b = b.insert_xml("d", "<r/>").unwrap();
        assert_ne!(id_a, id_b, "ids are process-unique");
        assert_eq!(engine.document_cache_stats().len, 2, "no collision");
        assert!(a.remove("d"));
        assert_eq!(
            engine.document_cache_stats().len,
            1,
            "b's index must survive a's removal"
        );
        assert_eq!(
            b.evaluate_on("d", "count(//*)").unwrap().value,
            Value::Number(1.0)
        );
    }

    #[test]
    fn insert_prepared_replacement_drops_the_stale_keyed_index() {
        use xpeval_dom::PreparedDocument;
        let catalog = Catalog::new();
        // v1 enters through the engine cache (insert_document path)...
        catalog.insert_xml("d", "<r><x/></r>").unwrap();
        assert_eq!(catalog.engine().document_cache_stats().len, 1);
        // ...and a replacement that bypasses the engine cache must not
        // leave v1's index pinned under the id's stable key.
        let v2 = Arc::new(PreparedDocument::new(parse_xml("<r/>").unwrap()));
        catalog.insert_prepared("d", v2);
        assert_eq!(catalog.engine().document_cache_stats().len, 0);
        assert_eq!(catalog.generation("d"), Some(2));
        assert_eq!(
            catalog.evaluate_on("d", "count(//x)").unwrap().value,
            Value::Number(0.0)
        );
    }

    #[test]
    fn retiring_a_document_releases_its_keyed_index() {
        // remove() must drop the engine document-cache entry keyed by the
        // retired DocId — otherwise the dead prepared index stays pinned
        // until LRU pressure happens to find it.
        let catalog = Catalog::new();
        catalog.insert_xml("a", "<r><x/></r>").unwrap();
        catalog.insert_xml("b", "<r/>").unwrap();
        assert_eq!(catalog.engine().document_cache_stats().len, 2);
        assert!(catalog.remove("a"));
        assert_eq!(catalog.engine().document_cache_stats().len, 1);

        // Same for LRU eviction out of a bounded catalog.
        let catalog = Catalog::builder().capacity(2).build();
        catalog.insert_xml("a", "<a/>").unwrap();
        catalog.insert_xml("b", "<b/>").unwrap();
        catalog.insert_xml("c", "<c/>").unwrap(); // evicts a
        assert_eq!(catalog.stats().evictions, 1);
        assert_eq!(catalog.engine().document_cache_stats().len, 2);
    }

    #[test]
    fn unnamed_documents_share_the_engine_caches() {
        // The catalog evaluates through its engine: plans compiled by
        // catalog evaluations are plan-cache hits for direct engine users
        // and vice versa.
        let catalog = Catalog::new();
        catalog.insert_xml("d", "<r><a/></r>").unwrap();
        catalog.evaluate_on("d", "//a").unwrap();
        let engine = catalog.engine().clone();
        let doc = Arc::new(parse_xml("<r><a/></r>").unwrap());
        engine.evaluate_str(&doc, "//a").unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.misses, s.hits), (1, 1), "{s:?}");
    }

    #[test]
    fn list_is_sorted_and_carries_usage() {
        let catalog = Catalog::new();
        catalog.insert_xml("b", "<r/>").unwrap();
        catalog.insert_xml("a", "<r><x/></r>").unwrap();
        catalog.evaluate_on("a", "count(//x)").unwrap();
        let list = catalog.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "a");
        assert_eq!(list[0].node_count, 3);
        assert_eq!(list[0].evaluations, 1);
        assert_eq!(list[1].name, "b");
        assert_eq!(catalog.names(), ["a", "b"]);
        assert_eq!(catalog.info("nosuch"), None);
    }

    #[test]
    fn mutate_named_edits_in_place_and_bumps_the_revision() {
        let catalog = Catalog::new();
        catalog.insert_xml("d", "<r><item/><item/></r>").unwrap();
        assert_eq!(catalog.revision("d"), Some(0));
        let out = catalog
            .mutate_named("d", |live| {
                let r = live.first_child(live.root()).unwrap();
                live.insert_subtree(r, 2, &parse_xml("<item new=\"1\"/>").unwrap())
                    .map(|o| o.inserted.len())
            })
            .unwrap();
        assert_eq!(out.value.unwrap(), 2, "element + attribute");
        assert_eq!(out.revision, 1);
        assert_eq!(out.generation, 1, "mutation does not bump the generation");
        let edits = out.edits.unwrap();
        assert_eq!(edits.edits, 1);
        assert!(!edits.renumbered);
        assert_eq!(catalog.revision("d"), Some(1));
        assert_eq!(catalog.generation("d"), Some(1));
        assert_eq!(
            catalog.evaluate_on("d", "count(//item)").unwrap().value,
            Value::Number(3.0)
        );
        let info = catalog.info("d").unwrap();
        assert_eq!((info.generation, info.revision), (1, 1));
        assert_eq!(catalog.stats().mutations, 1);
        // By-id addressing reaches the same entry.
        let id = catalog.resolve("d").unwrap();
        let out = catalog
            .mutate(id, |live| {
                let item = live.elements_named("item")[0];
                live.remove_subtree(item).map(|o| o.removed)
            })
            .unwrap();
        assert!(out.value.is_ok());
        assert_eq!(out.revision, 2);
        assert_eq!(
            catalog.evaluate_on("d", "count(//item)").unwrap().value,
            Value::Number(2.0)
        );
    }

    #[test]
    fn mutate_errors_on_unknown_targets() {
        let catalog = Catalog::new();
        assert!(matches!(
            catalog.mutate_named("nosuch", |_| ()),
            Err(CatalogError::UnknownDocument { .. })
        ));
        let foreign = DocId::from_raw(u64::MAX);
        assert!(matches!(
            catalog.mutate(foreign, |_| ()),
            Err(CatalogError::UnknownDocId { .. })
        ));
    }

    #[test]
    fn a_no_op_mutation_publishes_nothing() {
        let catalog = Catalog::new();
        catalog.insert_xml("d", "<r><a/></r>").unwrap();
        catalog.evaluate_on("d", "//a").unwrap();
        let before = catalog.get("d").unwrap();
        // A closure that only *fails* to edit also publishes nothing.
        let out = catalog
            .mutate_named("d", |live| {
                let root = live.root();
                live.remove_subtree(root).unwrap_err()
            })
            .unwrap();
        assert_eq!(out.revision, 0);
        assert!(out.edits.is_none());
        assert_eq!(catalog.stats().mutations, 0);
        assert!(Arc::ptr_eq(&before, &catalog.get("d").unwrap()));
        // The cached artifact is still live (same revision key).
        let hits = catalog.stats().artifact_hits;
        catalog.evaluate_on("d", "//a").unwrap();
        assert_eq!(catalog.stats().artifact_hits, hits + 1);
    }

    #[test]
    fn mutation_kills_intersecting_artifacts_and_preserves_the_rest() {
        let catalog = Catalog::new();
        catalog
            .insert_xml("d", "<r><left><a/></left><right><b/><b/></right></r>")
            .unwrap();
        // Cache three artifacts: one whose candidates live in the edited
        // subtree, one outside it, one verified-empty.
        assert_eq!(
            catalog
                .evaluate_on("d", "//a")
                .unwrap()
                .value
                .expect_nodes()
                .len(),
            1
        );
        assert_eq!(
            catalog
                .evaluate_on("d", "//b")
                .unwrap()
                .value
                .expect_nodes()
                .len(),
            2
        );
        assert_eq!(
            catalog.evaluate_on("d", "//nosuch").unwrap().value,
            Value::NodeSet(Vec::new())
        );
        assert_eq!(catalog.stats().artifact_len, 3);

        let out = catalog
            .mutate_named("d", |live| {
                let left = live.elements_named("left")[0];
                live.insert_subtree(left, 1, &parse_xml("<a/>").unwrap())
                    .unwrap();
            })
            .unwrap();
        assert_eq!(out.artifacts_killed, 1, "only //a intersects the edit");
        assert_eq!(out.artifacts_preserved, 2);

        // The preserved artifacts answer the new revision as cache hits —
        // //nosuch keeps its verified-empty shortcut (zero work counters).
        let hits = catalog.stats().artifact_hits;
        assert_eq!(
            catalog
                .evaluate_on("d", "//b")
                .unwrap()
                .value
                .expect_nodes()
                .len(),
            2
        );
        let empty = catalog.evaluate_on("d", "//nosuch").unwrap();
        assert_eq!(empty.value, Value::NodeSet(Vec::new()));
        assert_eq!(empty.stats.evaluations, 0, "verified shortcut survived");
        assert_eq!(catalog.stats().artifact_hits, hits + 2);
        // The killed artifact re-specializes and sees the edit.
        assert_eq!(
            catalog
                .evaluate_on("d", "//a")
                .unwrap()
                .value
                .expect_nodes()
                .len(),
            2
        );
        let s = catalog.stats();
        assert_eq!(s.artifact_scope_killed, 1, "{s}");
        assert_eq!(s.artifact_scope_preserved, 2, "{s}");
        let line = s.to_string();
        assert!(line.contains("scope_killed 1"), "{line}");
        assert!(line.contains("scope_preserved 2"), "{line}");

        // A removal inside `right` kills //b (candidates in the *old*
        // snapshot intersect the dirty interval) and preserves //a.
        let out = catalog
            .mutate_named("d", |live| {
                let b = live.elements_named("b")[0];
                live.remove_subtree(b).unwrap();
            })
            .unwrap();
        assert_eq!(out.artifacts_killed, 1);
        assert_eq!(out.artifacts_preserved, 2);
        assert_eq!(
            catalog.evaluate_on("d", "count(//b)").unwrap().value,
            Value::Number(1.0)
        );
        assert_eq!(
            catalog.evaluate_on("d", "count(//a)").unwrap().value,
            Value::Number(2.0)
        );
    }

    #[test]
    fn replacement_still_resets_the_revision() {
        let catalog = Catalog::new();
        catalog.insert_xml("d", "<r><a/></r>").unwrap();
        catalog
            .mutate_named("d", |live| {
                let a = live.elements_named("a")[0];
                live.set_attribute(a, "k", "v").unwrap();
            })
            .unwrap();
        assert_eq!(catalog.revision("d"), Some(1));
        catalog.insert_xml("d", "<r/>").unwrap();
        assert_eq!(catalog.generation("d"), Some(2));
        assert_eq!(catalog.revision("d"), Some(0));
    }

    #[test]
    fn display_line_mentions_the_moving_parts() {
        let catalog = Catalog::builder().capacity(8).build();
        catalog.insert_xml("d", "<r/>").unwrap();
        catalog.evaluate_on("d", "count(//*)").unwrap();
        catalog.evaluate_on("d", "count(//*)").unwrap();
        let line = catalog.stats().to_string();
        assert!(line.contains("docs 1/8"), "{line}");
        assert!(line.contains("hits 1/2 (50.0%)"), "{line}");
    }

    /// A 3-group document whose leaf subtrees are comfortably above the
    /// tiny-document collapse and give lazy tokenization real extents
    /// under the default threshold... sized so each <g> is < 1024 bytes
    /// (an extent) while the whole document is > 1024 (root on the spine).
    fn grouped_xml() -> String {
        let mut xml = String::from("<r>");
        for g in 0..3 {
            xml.push_str(&format!("<g{g}>"));
            for i in 0..20 {
                xml.push_str(&format!("<leaf{g} n='{i}'>payload {g} {i}</leaf{g}>"));
            }
            xml.push_str(&format!("</g{g}>"));
        }
        xml.push_str("</r>");
        xml
    }

    #[test]
    fn lazy_entries_materialize_per_query_and_witness_it() {
        let catalog = Catalog::new();
        let xml = grouped_xml();
        catalog.insert_lazy("d", &xml).unwrap();
        assert_eq!(catalog.backend_kind("d"), Some(BackendKind::Lazy));
        let total = xpeval_dom::parse_xml(&xml).unwrap().prepare().node_count();
        // The cold entry holds only the spine wave.
        let spine = catalog.info("d").unwrap().node_count;
        assert!(spine < total, "spine {spine} vs total {total}");

        // A targeted query materializes its group only — and the stats
        // witness the resident count.
        let out = catalog.evaluate_on("d", "count(//leaf1)").unwrap();
        assert_eq!(out.value, Value::Number(20.0));
        let resident = out.stats.nodes_materialized as usize;
        assert!(resident > spine && resident < total, "resident {resident}");
        assert_eq!(catalog.info("d").unwrap().node_count, resident);
        // Each wave bumps the revision (node ids are not stable across
        // waves, so artifacts must not survive).
        assert_eq!(catalog.revision("d"), Some(1));

        // Repeating the query does not grow the wave again...
        let repeat = catalog.evaluate_on("d", "count(//leaf1)").unwrap();
        assert_eq!(repeat.value, Value::Number(20.0));
        assert_eq!(catalog.revision("d"), Some(1));
        assert!(catalog.stats().artifact_hits >= 1);

        // ...and the lazy answers agree with an eager insert.
        catalog.insert_xml("eager", &xml).unwrap();
        for q in ["count(//leaf0)", "count(//leaf2)", "//leaf1[@n = '3']"] {
            let lazy = catalog.evaluate_on("d", q).unwrap();
            let eager = catalog.evaluate_on("eager", q).unwrap();
            match (&lazy.value, &eager.value) {
                (Value::NodeSet(a), Value::NodeSet(b)) => assert_eq!(a.len(), b.len(), "{q}"),
                (a, b) => assert_eq!(a, b, "{q}"),
            }
        }
        assert_eq!(catalog.info("d").unwrap().node_count, total);
    }

    #[test]
    fn wildcard_under_named_ancestor_stays_lazy() {
        // `//g1/*` pins the context at <g1>, so the wildcard child step
        // needs only that group's extent — the wave stays a strict subset
        // and `nodes_materialized` witnesses it.
        let catalog = Catalog::new();
        let xml = grouped_xml();
        catalog.insert_lazy("d", &xml).unwrap();
        let total = xpeval_dom::parse_xml(&xml).unwrap().prepare().node_count();
        let spine = catalog.info("d").unwrap().node_count;
        let out = catalog.evaluate_on("d", "count(//g1/*)").unwrap();
        assert_eq!(out.value, Value::Number(20.0));
        let resident = out.stats.nodes_materialized as usize;
        assert!(
            resident > spine && resident < total,
            "resident {resident} spine {spine} total {total}"
        );
    }

    #[test]
    fn mutating_a_lazy_entry_promotes_it_to_eager() {
        let catalog = Catalog::new();
        catalog.insert_lazy("d", &grouped_xml()).unwrap();
        let out = catalog
            .mutate_named("d", |live| {
                let leaf = live.elements_named("leaf2")[0];
                live.set_attribute(leaf, "edited", "yes").unwrap();
            })
            .unwrap();
        assert!(out.edits.is_some());
        assert_eq!(catalog.backend_kind("d"), Some(BackendKind::Eager));
        let hit = catalog
            .evaluate_on("d", "count(//leaf2[@edited = 'yes'])")
            .unwrap();
        assert_eq!(hit.value, Value::Number(1.0));
        // Eager entries do not stamp the laziness witness.
        assert_eq!(hit.stats.nodes_materialized, 0);
    }

    #[test]
    fn node_budget_demotes_lazy_entries_before_evicting_anyone() {
        let xml = grouped_xml();
        let total = xpeval_dom::parse_xml(&xml).unwrap().prepare().node_count();
        // Budget fits both documents at spine size plus one materialized
        // wave, but not both fully materialized.
        let catalog = Catalog::builder().node_budget(total + total / 2).build();
        catalog.insert_lazy("a", &xml).unwrap();
        catalog.insert_lazy("b", &xml).unwrap();
        // Materialize both fully (wildcard bails the tag analysis).
        catalog.evaluate_on("a", "count(//*)").unwrap();
        catalog.evaluate_on("b", "count(//*)").unwrap();
        let stats = catalog.stats();
        // Both documents survived: demotion, not eviction, paid the debt.
        assert_eq!(stats.documents, 2, "{stats}");
        assert_eq!(stats.evictions, 0, "{stats}");
        assert!(stats.demotions >= 1, "{stats}");
        assert!(stats.resident_nodes <= stats.node_budget, "{stats}");
        // "a" (the LRU entry) was demoted back to its spine; it still
        // answers queries by re-growing.
        assert!(catalog.info("a").unwrap().node_count < total);
        assert_eq!(
            catalog.evaluate_on("a", "count(//leaf0)").unwrap().value,
            Value::Number(20.0)
        );
    }

    #[test]
    fn node_budget_evicts_lru_eager_entries_but_never_the_newest() {
        let catalog = Catalog::builder().node_budget(10).build();
        catalog.insert_xml("old", "<r><a/><a/><a/></r>").unwrap();
        catalog.insert_xml("huge", &grouped_xml()).unwrap();
        // "huge" alone exceeds the budget: the LRU entry goes, the newest
        // stays (over budget, alone).
        assert!(!catalog.contains("old"));
        assert!(catalog.contains("huge"));
        assert_eq!(catalog.stats().evictions, 1);
    }

    #[test]
    fn snapshot_entries_share_the_decoded_document() {
        use xpeval_backends::PreparedSnapshot;
        let prepared = xpeval_dom::parse_xml("<r><a/><b/><a/></r>")
            .unwrap()
            .prepare();
        let bytes = PreparedSnapshot::to_bytes(&prepared);
        let snapshot = Arc::new(PreparedSnapshot::from_bytes(bytes).unwrap());
        let catalog = Catalog::new();
        catalog.insert_snapshot("d", &snapshot).unwrap();
        assert_eq!(catalog.backend_kind("d"), Some(BackendKind::Snapshot));
        assert_eq!(
            catalog.evaluate_on("d", "count(//a)").unwrap().value,
            Value::Number(2.0)
        );
        // The catalog holds the snapshot's own decode, not a second copy.
        assert!(Arc::ptr_eq(
            &catalog.get("d").unwrap(),
            &snapshot.document().unwrap()
        ));
        // Mutation promotes to eager (the byte image is released).
        catalog
            .mutate_named("d", |live| {
                let a = live.elements_named("a")[0];
                live.set_attribute(a, "k", "v").unwrap();
            })
            .unwrap();
        assert_eq!(catalog.backend_kind("d"), Some(BackendKind::Eager));
    }

    #[test]
    fn corrupt_snapshots_surface_as_backend_errors() {
        use xpeval_backends::PreparedSnapshot;
        let prepared = xpeval_dom::parse_xml("<r/>").unwrap().prepare();
        let mut bytes = PreparedSnapshot::to_bytes(&prepared);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(PreparedSnapshot::from_bytes(bytes).is_err());
    }

    #[test]
    fn tree_provider_documents_enter_the_catalog() {
        use xpeval_backends::JsonProvider;
        let catalog = Catalog::new();
        let provider = JsonProvider::new(r#"{"item": [{"@id": "1"}, {"@id": "2"}]}"#);
        catalog.insert_tree("j", &provider).unwrap();
        assert_eq!(catalog.backend_kind("j"), Some(BackendKind::Tree));
        assert_eq!(
            catalog.evaluate_on("j", "count(//item)").unwrap().value,
            Value::Number(2.0)
        );
        let bad = JsonProvider::new("{broken");
        assert!(matches!(
            catalog.insert_tree("bad", &bad),
            Err(CatalogError::Backend { .. })
        ));
        assert!(!catalog.contains("bad"));
    }
}
