//! Document-specialized plan artifacts: the (query × document) half of the
//! catalog.
//!
//! A [`CompiledQuery`] is document-independent by design; every prepared
//! evaluation therefore re-derives the document-*dependent* parts of the
//! plan on each call — resolve the final step's name tests against the tag
//! index (string hashes), read off the candidate bound, and run the
//! source-aware strategy selection (`strategy_for_source`).  For a catalog
//! serving the same (query, document) pairs over and over, that work is
//! pure amortizable overhead.
//!
//! [`PlanArtifact`] materializes it once per (query, document, generation):
//!
//! * the **pinned strategy** — the `strategy_for_source` choice is baked
//!   into a specialized copy of the plan
//!   ([`CompiledQuery::specialize_for_source`]), so repeated runs skip
//!   selectivity probing and strategy selection entirely;
//! * the **resolved tag ids** — the query's final-step name tests mapped to
//!   the document's interned [`TagId`]s
//!   ([`xpeval_dom::PreparedDocument::tag_id`]), paying those string hashes
//!   once per generation (they feed the candidate bound below and are
//!   exposed for observability; the evaluators' own per-step name tests
//!   still go through the tag index's hash lookups — threading `TagId`s
//!   through `AxisSource` is future work);
//! * the **candidate bound** — the size of the name-bounded result
//!   universe; a bound of zero short-circuits evaluation to the empty node
//!   set without dispatching an evaluator at all.
//!
//! Artifacts are only valid for the exact document snapshot they were
//! built against (tag ids and counts are per-snapshot); the catalog's
//! internal artifact cache keys them by (query, [`ArtifactScope`],
//! backend kind).  The scope is the novelty: an unmutated eager entry is
//! keyed by its **document content hash**
//! ([`xpeval_dom::PreparedDocument::content_hash`]) rather than its
//! `(DocId, generation)` coordinates, so equal-shaped documents — two
//! names inserted from the same bytes, a replacement that re-installs
//! identical content — resolve to **one shared artifact**, result cache
//! included.  Equal content hashes imply identical node numbering, so
//! even node-set results transfer across holder documents verbatim.
//! Lazy entries and post-mutation revisions fall back to a private
//! `(DocId, generation, revision)` scope; their snapshots are not
//! content-comparable across documents.
//!
//! Shared groups are reference-held: the cache tracks which documents
//! hold each `(content, kind)` scope and drops the group only when the
//! last holder is replaced, removed or evicted.  In-place mutations
//! ([`crate::Catalog::mutate_named`]) diverge the mutated document from
//! the shared content: while other holders remain, the mutating document
//! simply releases its hold (the others keep every artifact); the sole
//! holder instead re-targets the group into its post-edit private scope —
//! `ArtifactCache::retarget` **kills** only the artifacts whose
//! name-bounded candidates intersect the edit's dirty preorder interval
//! (in either snapshot) and **rebases** every other artifact onto the new
//! snapshot — the specialized plan, pinned strategy and verified-empty
//! shortcut all survive the edit.

use crate::stats::CatalogStats;
use crate::DocId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use xpeval_backends::BackendKind;
use xpeval_core::steps::final_step_tag_names;
use xpeval_core::{
    Bindings, CompiledQuery, EvalError, EvalStats, EvalStrategy, QueryOutput, Value,
};
use xpeval_dom::{PreparedDocument, TagId};

/// The cache-key namespace a [`PlanArtifact`] lives in (see the
/// [module docs](self)).
///
/// * [`ArtifactScope::Shared`] — the document is an unmutated, fully
///   materialized snapshot, keyed by its content hash: every document
///   holding equal content answers from (and contributes to) the same
///   artifact group.
/// * [`ArtifactScope::Private`] — lazy waves and post-mutation revisions,
///   keyed by exact `(DocId, generation, revision)` coordinates as
///   before: their node numbering is not comparable across documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactScope {
    /// Keyed by [`xpeval_dom::PreparedDocument::content_hash`]; shared by
    /// every unmutated document with equal content.
    Shared {
        /// The structural fingerprint of the snapshot.
        content: u64,
    },
    /// Keyed by exact document coordinates; never shared.
    Private {
        /// The owning document.
        doc: DocId,
        /// Its replacement generation.
        generation: u64,
        /// Its in-place edit (or lazy wave) revision within the
        /// generation.
        revision: u64,
    },
}

impl ArtifactScope {
    /// The scope rule, written once: an entry shares iff it is not
    /// lazy-backed (wave node ids are never content-comparable) and has
    /// not been edited in place (revision 0).  The content hash is
    /// memoized on the prepared document, so repeated calls are O(1).
    pub(crate) fn of(
        doc: DocId,
        generation: u64,
        revision: u64,
        kind: BackendKind,
        prepared: &PreparedDocument,
    ) -> ArtifactScope {
        if kind != BackendKind::Lazy && revision == 0 {
            ArtifactScope::Shared {
                content: prepared.content_hash(),
            }
        } else {
            ArtifactScope::Private {
                doc,
                generation,
                revision,
            }
        }
    }
}

/// A query plan specialized for one document generation: pinned strategy,
/// pre-resolved tag ids, pre-computed candidate bound.  See the
/// [module docs](self).
#[derive(Debug)]
pub struct PlanArtifact {
    /// The specialized plan: a copy of the compiled query with the
    /// source-aware strategy choice pinned as its fixed strategy.
    plan: Arc<CompiledQuery>,
    /// The exact document snapshot every field below is specialized for.
    /// Owned by the artifact so [`PlanArtifact::run`] *cannot* be aimed
    /// at a different document — the pinned strategy, resolved tag ids
    /// and candidate bound would all be silently wrong for one.
    prepared: Arc<PreparedDocument>,
    doc: DocId,
    generation: u64,
    revision: u64,
    /// The storage backend the snapshot came from.  Part of the cache key:
    /// a lazy entry's waves and an eager replacement of the same id must
    /// never answer each other's lookups, even if their version
    /// coordinates collide.
    kind: BackendKind,
    /// The cache-key namespace this artifact lives in, derived once at
    /// build time ([`ArtifactScope::of`]).
    scope: ArtifactScope,
    strategy: EvalStrategy,
    /// The final-step name tests resolved against the document's tag
    /// index: `None` for the id when the tag does not occur in this
    /// generation (contributing zero candidates).  `None` overall when the
    /// query's result is not name-bounded.
    resolved_tags: Option<Vec<(String, Option<TagId>)>>,
    /// Size of the name-bounded candidate universe; `Some(0)` proves the
    /// *value* empty — but not that the configured strategy would accept
    /// the query at all, hence `verified` below.
    candidate_bound: Option<usize>,
    /// Set once a full run of the plan succeeded.  Only then may a zero
    /// candidate bound short-circuit later runs: evaluation is
    /// deterministic per (query, document generation, strategy), so one
    /// successful run proves every repeat returns the same `Ok` — whereas
    /// skipping the *first* run could mask an error the plan would raise
    /// (an unsupported-fragment strategy override, an unknown function in
    /// a predicate) behind a semantically-plausible empty result.
    verified: std::sync::atomic::AtomicBool,
    /// The root-context result, cached after the first successful run.
    /// Sound because the artifact owns an immutable snapshot and a pinned
    /// strategy, so every run is deterministic; errors are never cached
    /// (they must re-surface on every run).  Shared-scope artifacts hand
    /// this result to every holder document — equal content hashes imply
    /// identical node numbering, so node-set values transfer verbatim.
    /// Rebasing onto a post-edit snapshot resets the cache.
    root_result: OnceLock<QueryOutput>,
}

impl PlanArtifact {
    /// Specializes `plan` for one document generation: computes the
    /// strategy choice, resolves the final-step tags, reads off the
    /// candidate bound.  This is the artifact-cache *miss* path; the work
    /// here is exactly what every subsequent hit skips.
    pub fn build(
        plan: &Arc<CompiledQuery>,
        doc: DocId,
        generation: u64,
        revision: u64,
        kind: BackendKind,
        prepared: &Arc<PreparedDocument>,
    ) -> Self {
        let specialized = plan.specialize_for_source(prepared.as_ref());
        let strategy = specialized.strategy();
        let resolved_tags: Option<Vec<(String, Option<TagId>)>> = final_step_tag_names(plan.expr())
            .map(|names| {
                names
                    .into_iter()
                    .map(|name| (name.to_string(), prepared.tag_id(name)))
                    .collect()
            });
        let candidate_bound = Self::bound_of(resolved_tags.as_deref(), prepared);
        PlanArtifact {
            plan: Arc::new(specialized),
            prepared: Arc::clone(prepared),
            doc,
            generation,
            revision,
            kind,
            scope: ArtifactScope::of(doc, generation, revision, kind, prepared),
            strategy,
            resolved_tags,
            candidate_bound,
            verified: std::sync::atomic::AtomicBool::new(false),
            root_result: OnceLock::new(),
        }
    }

    fn bound_of(
        tags: Option<&[(String, Option<TagId>)]>,
        prepared: &PreparedDocument,
    ) -> Option<usize> {
        tags.map(|tags| {
            tags.iter()
                .map(|(_, id)| id.map_or(0, |id| prepared.tag_count_by_id(id)))
                .sum()
        })
    }

    /// Re-targets this artifact at the post-edit snapshot of the *same*
    /// document lineage, preserving everything an in-place edit outside
    /// the candidate set cannot change: the specialized plan `Arc` (tag
    /// ids are interned append-only, so baked-in ids stay valid across
    /// edits), the pinned strategy, and the verified flag (one successful
    /// run proved the plan *accepts* the query — a property of the plan,
    /// not the snapshot).  Tag ids and the candidate bound are re-derived
    /// against the new snapshot; the caller ([`ArtifactCache::retarget`])
    /// only rebases artifacts whose candidates are disjoint from the
    /// edit's dirty interval, so the re-derived bound always matches the
    /// old one.
    ///
    /// `doc`/`generation` are the *mutating* document's coordinates: a
    /// shared-scope artifact may have been built by a different (since
    /// departed) holder of the same content, and the rebased artifact
    /// belongs to the sole holder that edited.  The cached root result
    /// does **not** carry over — the document changed.
    fn rebase(
        &self,
        doc: DocId,
        generation: u64,
        revision: u64,
        prepared: &Arc<PreparedDocument>,
    ) -> PlanArtifact {
        use std::sync::atomic::Ordering;
        let resolved_tags: Option<Vec<(String, Option<TagId>)>> =
            self.resolved_tags.as_ref().map(|tags| {
                tags.iter()
                    .map(|(name, _)| (name.clone(), prepared.tag_id(name)))
                    .collect()
            });
        let candidate_bound = Self::bound_of(resolved_tags.as_deref(), prepared);
        PlanArtifact {
            plan: Arc::clone(&self.plan),
            prepared: Arc::clone(prepared),
            doc,
            generation,
            revision,
            kind: self.kind,
            scope: ArtifactScope::Private {
                doc,
                generation,
                revision,
            },
            strategy: self.strategy,
            resolved_tags,
            candidate_bound,
            verified: std::sync::atomic::AtomicBool::new(self.verified.load(Ordering::Relaxed)),
            root_result: OnceLock::new(),
        }
    }

    /// Does any of this artifact's name-bounded candidates live inside the
    /// half-open dirty preorder-key interval, in the given snapshot?  Tag
    /// element lists are sorted by document order, so each tag costs one
    /// binary search.
    fn candidates_intersect(&self, prepared: &PreparedDocument, dirty: (u32, u32)) -> bool {
        let Some(tags) = self.resolved_tags.as_deref() else {
            // Not name-bounded: no candidate set to scope by.
            return true;
        };
        let doc = prepared.document();
        tags.iter().any(|(name, _)| {
            let elements = prepared.elements_named(name);
            let lo = elements.partition_point(|&el| doc.pre(el) < dirty.0);
            elements.get(lo).is_some_and(|&el| doc.pre(el) < dirty.1)
        })
    }

    /// The document snapshot this artifact is specialized for (and runs
    /// against).
    pub fn prepared(&self) -> &Arc<PreparedDocument> {
        &self.prepared
    }

    /// The document this artifact is specialized for.
    pub fn doc(&self) -> DocId {
        self.doc
    }

    /// The document generation this artifact is valid for.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The in-place edit revision (within the generation) this artifact is
    /// valid for: 0 for a freshly installed document, bumped by every
    /// [`crate::Catalog::mutate_named`] edit.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The storage backend kind of the entry this artifact was built for
    /// (part of the cache key).
    pub fn backend(&self) -> BackendKind {
        self.kind
    }

    /// The cache-key namespace this artifact lives in: content-hash
    /// shared, or document-private.
    pub fn scope(&self) -> ArtifactScope {
        self.scope
    }

    /// Whether a root-context result is cached (observability for tests
    /// and stats; repeats of a cached artifact run no evaluator at all).
    pub fn has_cached_result(&self) -> bool {
        self.root_result.get().is_some()
    }

    /// The pinned strategy choice (what `strategy_for_source` returned at
    /// build time).
    pub fn strategy(&self) -> EvalStrategy {
        self.strategy
    }

    /// The specialized plan itself.
    pub fn plan(&self) -> &Arc<CompiledQuery> {
        &self.plan
    }

    /// The final-step name tests resolved to this document's tag ids
    /// (`None` for tags absent from this generation), or `None` when the
    /// query is not name-bounded.
    pub fn resolved_tags(&self) -> Option<&[(String, Option<TagId>)]> {
        self.resolved_tags.as_deref()
    }

    /// Size of the name-bounded candidate universe for this generation,
    /// when the query has one.
    pub fn candidate_bound(&self) -> Option<usize> {
        self.candidate_bound
    }

    /// Runs the specialized plan against the document snapshot it was
    /// built for (owned by the artifact, so it cannot be aimed at any
    /// other document).
    ///
    /// Once one full run has succeeded, a candidate bound of zero answers
    /// every later run without dispatching an evaluator: the final step
    /// names a tag this generation does not contain, so the result is the
    /// empty node set (the bound conditions guarantee the query is
    /// node-set-typed), and the verified first run proves the plan
    /// *accepts* the query — an unverified shortcut could mask an
    /// unsupported-fragment or unknown-function error behind a plausible
    /// empty result.
    ///
    /// Beyond the shortcut, the first successful run's output is cached
    /// (`root_result`): every later run clones it without
    /// dispatching an evaluator.  Errors are never cached — a failing
    /// plan keeps failing observably on every run.
    pub fn run(&self) -> Result<QueryOutput, EvalError> {
        use std::sync::atomic::Ordering;
        if self.candidate_bound == Some(0) && self.verified.load(Ordering::Relaxed) {
            return Ok(QueryOutput {
                value: Value::NodeSet(Vec::new()),
                stats: EvalStats::default(),
                fragment: self.plan.fragment(),
            });
        }
        if let Some(cached) = self.root_result.get() {
            return Ok(cached.clone());
        }
        let out = self.plan.run_prepared(&self.prepared)?;
        self.verified.store(true, Ordering::Relaxed);
        let _ = self.root_result.set(out.clone());
        Ok(out)
    }

    /// [`PlanArtifact::run`] with external variable bindings for the
    /// query's `$name` references.
    ///
    /// A variable-free plan ignores the bindings and keeps every `run`
    /// shortcut (cached result, verified empty answer).  A plan with
    /// variables always dispatches: its result is parameterized by the
    /// binding values, and the artifact's cached result — like its cache
    /// key — is deliberately binding-independent.
    pub fn run_bound(&self, bindings: &Bindings) -> Result<QueryOutput, EvalError> {
        if self.plan.variables().is_empty() {
            return self.run();
        }
        self.plan.run_prepared_bound(&self.prepared, bindings)
    }
}

#[derive(Debug)]
struct ArtifactEntry {
    artifact: Arc<PlanArtifact>,
    last_used: u64,
}

/// The bounded LRU cache of [`PlanArtifact`]s, keyed by
/// (query, [`ArtifactScope`], backend kind) — the catalog's third cache,
/// next to the engine's plan cache (per query) and document cache (per
/// document).
///
/// The key is split in two levels — an outer `(scope, kind)` map over
/// inner per-query maps — so the hot-path lookup borrows the query
/// `&str` (no allocation; `HashMap<String, _>` answers `&str` probes via
/// `Borrow`), document-level invalidation is an outer-key sweep, and a
/// mutation's revision bump re-targets one whole group at once
/// ([`ArtifactCache::retarget`]).  Shared scopes are reference-held: the
/// `holders` table mirrors which documents currently carry each
/// `(content, kind)` scope (it tracks the doc store, not cache contents,
/// and so survives [`ArtifactCache::clear`]); a shared group is dropped
/// only when its last holder departs ([`ArtifactCache::release_doc`]).
///
/// Same discipline as the other two caches: `get` under the lock, build
/// outside it, `insert` racing benignly (last writer wins; both artifacts
/// are valid).  Invalidation is by document:
/// [`ArtifactCache::release_doc`] drops every private group of a
/// document and releases its shared hold when the catalog replaces,
/// removes or evicts it.
#[derive(Debug)]
pub(crate) struct ArtifactCache {
    capacity: usize,
    inner: Mutex<ArtifactInner>,
}

/// One in-place edit as [`ArtifactCache::retarget`] sees it: which
/// pre-edit scope's group moves into the post-edit private revision, and
/// the dirty preorder interval the kill-or-rebase rule tests against.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Retarget {
    pub(crate) doc: DocId,
    pub(crate) generation: u64,
    /// The mutating entry's pre-edit scope — shared (content hash) for an
    /// unmutated eager entry, private for a re-edit.
    pub(crate) old_scope: ArtifactScope,
    pub(crate) new_revision: u64,
    /// The entry's backend kind (unchanged by an in-place edit; mutations
    /// that *promote* a backing purge instead of re-targeting).
    pub(crate) kind: BackendKind,
    pub(crate) dirty: (u32, u32),
    pub(crate) renumbered: bool,
}

#[derive(Debug, Default)]
struct ArtifactInner {
    /// (scope, backend kind) → query source → artifact.
    groups: HashMap<(ArtifactScope, BackendKind), HashMap<String, ArtifactEntry>>,
    /// Which documents currently hold each shared `(content, kind)`
    /// scope, with hold counts (a replacement registers the incoming
    /// generation *before* releasing the outgoing one, so identical
    /// content replacing itself keeps the group alive throughout).
    /// Mirrors the doc store, not cache contents: survives `clear`.
    holders: HashMap<(u64, BackendKind), HashMap<DocId, u32>>,
    /// Total entries across all groups (the capacity the bound applies
    /// to).
    len: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    scope_killed: u64,
    scope_preserved: u64,
}

impl ArtifactInner {
    /// Removes the least-recently-used entry across all groups.
    fn evict_lru(&mut self) {
        // Scan by reference; only the winning key is cloned (the borrow
        // must end before the removal below).
        let victim = self
            .groups
            .iter()
            .flat_map(|(&group, queries)| {
                queries
                    .iter()
                    .map(move |(query, entry)| (entry.last_used, group, query))
            })
            .min_by_key(|(last_used, ..)| *last_used)
            .map(|(_, group, query)| (group, query.clone()));
        if let Some((group, query)) = victim {
            if let Some(queries) = self.groups.get_mut(&group) {
                queries.remove(&query);
                if queries.is_empty() {
                    self.groups.remove(&group);
                }
            }
            self.len -= 1;
            self.evictions += 1;
        }
    }

    /// Drops `doc`'s hold on a shared `(content, kind)` scope, returning
    /// whether the scope lost its **last** holder (the caller then drops
    /// the group).  A scope with no holder record at all reads as
    /// released — conservative-drop is always safe (artifacts are
    /// rebuildable derived state).
    fn release_hold(&mut self, content: u64, kind: BackendKind, doc: DocId) -> bool {
        let Some(holders) = self.holders.get_mut(&(content, kind)) else {
            return true;
        };
        if let Some(count) = holders.get_mut(&doc) {
            *count -= 1;
            if *count == 0 {
                holders.remove(&doc);
            }
        }
        if holders.is_empty() {
            self.holders.remove(&(content, kind));
            true
        } else {
            false
        }
    }
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifacts; 0 disables
    /// caching (every evaluation re-specializes).
    pub(crate) fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity,
            inner: Mutex::new(ArtifactInner::default()),
        }
    }

    /// Looks up the artifact for (query, scope, kind), refreshing its
    /// recency on a hit.  Allocation-free.
    pub(crate) fn get(
        &self,
        scope: ArtifactScope,
        kind: BackendKind,
        query: &str,
    ) -> Option<Arc<PlanArtifact>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner
            .groups
            .get_mut(&(scope, kind))
            .and_then(|queries| queries.get_mut(query))
        {
            Some(entry) => {
                entry.last_used = tick;
                let artifact = Arc::clone(&entry.artifact);
                inner.hits += 1;
                Some(artifact)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores an artifact under its own (query, scope, kind) key,
    /// evicting the least-recently-used entry when full.
    pub(crate) fn insert(&self, query: &str, artifact: &Arc<PlanArtifact>) {
        if self.capacity == 0 {
            return;
        }
        let group = (artifact.scope(), artifact.backend());
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let replaces_existing = inner
            .groups
            .get(&group)
            .is_some_and(|queries| queries.contains_key(query));
        if inner.len >= self.capacity && !replaces_existing {
            inner.evict_lru();
        }
        let entry = ArtifactEntry {
            artifact: Arc::clone(artifact),
            last_used: tick,
        };
        if inner
            .groups
            .entry(group)
            .or_default()
            .insert(query.to_string(), entry)
            .is_none()
        {
            inner.len += 1;
        }
    }

    /// Records that `doc` now holds the given scope (no-op for private
    /// scopes).  Called on install; a replacement registers the new
    /// generation's scope *before* releasing the old one, so identical
    /// content replacing itself keeps its shared artifacts alive.
    pub(crate) fn register(&self, scope: ArtifactScope, kind: BackendKind, doc: DocId) {
        if let ArtifactScope::Shared { content } = scope {
            let mut inner = self.inner.lock().unwrap();
            *inner
                .holders
                .entry((content, kind))
                .or_default()
                .entry(doc)
                .or_insert(0) += 1;
        }
    }

    /// Releases everything `doc` contributed under `scope`: its private
    /// groups (all generations and revisions) always die with it; its
    /// hold on a shared scope is released, and the shared group is
    /// dropped only when `doc` was the last holder.  Called when the
    /// catalog replaces, removes or evicts the document.  Returns the
    /// number of artifacts dropped (counted as invalidations).
    pub(crate) fn release_doc(&self, doc: DocId, scope: ArtifactScope, kind: BackendKind) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let mut dropped = 0usize;
        inner.groups.retain(|&(scope, _), queries| match scope {
            ArtifactScope::Private { doc: d, .. } if d == doc => {
                dropped += queries.len();
                false
            }
            _ => true,
        });
        if let ArtifactScope::Shared { content } = scope {
            if inner.release_hold(content, kind, doc) {
                if let Some(queries) = inner.groups.remove(&(scope, kind)) {
                    dropped += queries.len();
                }
            }
        }
        inner.len -= dropped;
        inner.invalidations += dropped as u64;
        dropped
    }

    /// Moves a mutated document's artifacts from the pre-edit scope group
    /// to the post-edit private one: the **subtree-scoped invalidation**
    /// an in-place edit buys over whole-document replacement.  Returns
    /// `(killed, preserved)`.
    ///
    /// When the pre-edit scope is shared and *other documents still hold
    /// it*, the mutating document merely releases its hold and the sweep
    /// is skipped entirely — the edit diverged this document from the
    /// shared content, but the other holders' artifacts are untouched
    /// (returns `(0, 0)`; the mutated document re-specializes privately
    /// on its next evaluation).  Only the sole holder migrates the group.
    ///
    /// Per artifact the rule is: **kill** it (drop it, counted as an
    /// invalidation — the next evaluation re-specializes from scratch)
    /// when the edit could have changed what it caches —
    ///
    /// * the whole document was renumbered (`renumbered`): pre-edit keys
    ///   are incomparable with post-edit ones, so no interval test is
    ///   meaningful;
    /// * the query is not name-bounded (`resolved_tags` is `None`): there
    ///   is no candidate set to scope by;
    /// * any candidate element's preorder key falls inside the dirty
    ///   interval in **either** snapshot — the old one catches removals
    ///   (the removed elements only exist there), the new one catches
    ///   insertions;
    ///
    /// — and otherwise **rebase** it onto the new snapshot
    /// ([`PlanArtifact::rebase`]): specialized plan, pinned strategy and
    /// verified-empty shortcut all survive.  Rebasing is always *sound*
    /// (artifacts re-run their plan against the snapshot they own); the
    /// kill rule exists so the cached candidate bound and the pinned
    /// strategy are re-derived whenever the edit touched the result
    /// universe they were derived from.
    pub(crate) fn retarget(
        &self,
        edit: Retarget,
        new_prepared: &Arc<PreparedDocument>,
    ) -> (u64, u64) {
        let Retarget {
            doc,
            generation,
            old_scope,
            new_revision,
            kind,
            dirty,
            renumbered,
        } = edit;
        let mut inner = self.inner.lock().unwrap();
        if let ArtifactScope::Shared { content } = old_scope {
            if !inner.release_hold(content, kind, doc) {
                // Other holders remain: their artifacts stay; the mutated
                // document simply left the shared scope.
                return (0, 0);
            }
        }
        let Some(old_group) = inner.groups.remove(&(old_scope, kind)) else {
            return (0, 0);
        };
        inner.len -= old_group.len();
        let new_scope = ArtifactScope::Private {
            doc,
            generation,
            revision: new_revision,
        };
        let (mut killed, mut preserved) = (0u64, 0u64);
        for (query, entry) in old_group {
            let artifact = &entry.artifact;
            let kill = renumbered
                || artifact.candidates_intersect(&artifact.prepared, dirty)
                || artifact.candidates_intersect(new_prepared, dirty);
            if kill {
                killed += 1;
                continue;
            }
            preserved += 1;
            let rebased = ArtifactEntry {
                artifact: Arc::new(artifact.rebase(doc, generation, new_revision, new_prepared)),
                last_used: entry.last_used,
            };
            // A racing evaluation may have built a fresh artifact under
            // the new revision already; keep whichever lands last (both
            // are valid for the new snapshot).
            if inner
                .groups
                .entry((new_scope, kind))
                .or_default()
                .insert(query, rebased)
                .is_none()
            {
                inner.len += 1;
            }
        }
        inner.invalidations += killed;
        inner.scope_killed += killed;
        inner.scope_preserved += preserved;
        (killed, preserved)
    }

    /// Drops every artifact (counters are kept; the shared-scope holder
    /// table mirrors the doc store, not cache contents, so it survives —
    /// re-built artifacts land back in their still-held shared groups).
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.groups.clear();
        inner.len = 0;
    }

    /// Copies this cache's counters into the artifact fields of a
    /// [`CatalogStats`] snapshot.
    pub(crate) fn fill_stats(&self, stats: &mut CatalogStats) {
        let inner = self.inner.lock().unwrap();
        stats.artifact_len = inner.len;
        stats.artifact_capacity = self.capacity;
        stats.artifact_hits = inner.hits;
        stats.artifact_misses = inner.misses;
        stats.artifact_evictions = inner.evictions;
        stats.artifact_invalidations = inner.invalidations;
        stats.artifact_scope_killed = inner.scope_killed;
        stats.artifact_scope_preserved = inner.scope_preserved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    fn prepared(xml: &str) -> Arc<PreparedDocument> {
        Arc::new(parse_xml(xml).unwrap().prepare())
    }

    fn plan(src: &str) -> Arc<CompiledQuery> {
        Arc::new(CompiledQuery::compile(src).unwrap())
    }

    #[test]
    fn build_resolves_tags_and_pins_the_strategy() {
        let doc = prepared("<r><a/><b/><a/></r>");
        let q = plan("//a");
        let artifact = PlanArtifact::build(&q, DocId::from_raw(1), 1, 0, BackendKind::Eager, &doc);
        assert_eq!(artifact.candidate_bound(), Some(2));
        let tags = artifact.resolved_tags().unwrap();
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].0, "a");
        assert_eq!(tags[0].1, doc.tag_id("a"));
        assert_eq!(artifact.strategy(), artifact.plan().strategy());
        // The specialized plan no longer re-tunes per source.
        assert_eq!(
            artifact.plan().strategy_for_source(doc.as_ref()),
            artifact.strategy()
        );
        let out = artifact.run().unwrap();
        assert_eq!(out.value.expect_nodes().len(), 2);
    }

    #[test]
    fn zero_candidate_bound_short_circuits_after_one_verified_run() {
        let doc = prepared("<r><a/></r>");
        let q = plan("//nosuch");
        let artifact = PlanArtifact::build(&q, DocId::from_raw(1), 1, 0, BackendKind::Eager, &doc);
        assert_eq!(artifact.candidate_bound(), Some(0));
        // The first run is a full evaluation (it must surface any error
        // the plan would raise), still empty.
        let first = artifact.run().unwrap();
        assert_eq!(first.value, Value::NodeSet(Vec::new()));
        assert!(first.stats.evaluations > 0, "{:?}", first.stats);
        // Every repeat takes the shortcut: zero work counters witness
        // that no evaluator ran.
        let repeat = artifact.run().unwrap();
        assert_eq!(repeat.value, Value::NodeSet(Vec::new()));
        assert_eq!(repeat.stats, EvalStats::default());
        // Unions of present and absent tags keep the sum bound.
        let union = plan("//a | //nosuch");
        let artifact =
            PlanArtifact::build(&union, DocId::from_raw(1), 1, 0, BackendKind::Eager, &doc);
        assert_eq!(artifact.candidate_bound(), Some(1));
        assert_eq!(artifact.run().unwrap().value.expect_nodes().len(), 1);
    }

    #[test]
    fn the_shortcut_never_masks_a_plan_error() {
        let doc = prepared("<r><a/></r>");
        // Zero-bound query forced onto a strategy that rejects its
        // fragment: every run must keep erroring, shortcut or not.
        let q = Arc::new(
            CompiledQuery::compile("//nosuch[@id = 3]")
                .unwrap()
                .with_strategy(EvalStrategy::CoreXPathLinear),
        );
        let artifact = PlanArtifact::build(&q, DocId::from_raw(1), 1, 0, BackendKind::Eager, &doc);
        assert_eq!(artifact.candidate_bound(), Some(0));
        for _ in 0..3 {
            assert!(matches!(
                artifact.run(),
                Err(EvalError::UnsupportedFragment { .. })
            ));
        }
    }

    #[test]
    fn non_name_bounded_queries_have_no_bound() {
        let doc = prepared("<r><a/></r>");
        for q in ["count(//a)", "//a/@id", "//node()"] {
            let artifact =
                PlanArtifact::build(&plan(q), DocId::from_raw(1), 1, 0, BackendKind::Eager, &doc);
            assert_eq!(artifact.candidate_bound(), None, "{q}");
            assert!(artifact.resolved_tags().is_none(), "{q}");
            // And evaluation still works through the pinned plan.
            assert!(artifact.run().is_ok(), "{q}");
        }
    }

    #[test]
    fn cache_hits_evicts_and_purges() {
        let doc1 = prepared("<r><a/></r>");
        let doc2 = prepared("<r><a/><a/></r>");
        let cache = ArtifactCache::new(2);
        let d1 = DocId::from_raw(1);
        let d2 = DocId::from_raw(2);
        let s1 = ArtifactScope::of(d1, 1, 0, BackendKind::Eager, &doc1);
        let s2 = ArtifactScope::of(d2, 1, 0, BackendKind::Eager, &doc2);
        assert_ne!(s1, s2, "different content, different scope");
        assert!(cache.get(s1, BackendKind::Eager, "//a").is_none());
        let a1 = Arc::new(PlanArtifact::build(
            &plan("//a"),
            d1,
            1,
            0,
            BackendKind::Eager,
            &doc1,
        ));
        assert_eq!(a1.scope(), s1);
        cache.register(s1, BackendKind::Eager, d1);
        cache.insert("//a", &a1);
        assert!(Arc::ptr_eq(
            &cache.get(s1, BackendKind::Eager, "//a").unwrap(),
            &a1
        ));
        // A mutated revision is a different (private) key.
        let rev1 = ArtifactScope::Private {
            doc: d1,
            generation: 1,
            revision: 1,
        };
        assert!(cache.get(rev1, BackendKind::Eager, "//a").is_none());

        let a2 = Arc::new(PlanArtifact::build(
            &plan("//a"),
            d2,
            1,
            0,
            BackendKind::Eager,
            &doc2,
        ));
        cache.register(s2, BackendKind::Eager, d2);
        cache.insert("//a", &a2);
        // Capacity 2: a third entry evicts the LRU one (d1's group was
        // touched most recently via get, so the victim is d2's).
        cache.get(s1, BackendKind::Eager, "//a").unwrap();
        let a3 = Arc::new(PlanArtifact::build(
            &plan("//r"),
            d1,
            1,
            0,
            BackendKind::Eager,
            &doc1,
        ));
        cache.insert("//r", &a3);
        assert!(cache.get(s2, BackendKind::Eager, "//a").is_none());

        // Releasing d1 (sole holder of its content) drops all its
        // artifacts.
        let dropped = cache.release_doc(d1, s1, BackendKind::Eager);
        assert_eq!(dropped, 2);
        let mut stats = CatalogStats::default();
        cache.fill_stats(&mut stats);
        assert_eq!(stats.artifact_len, 0);
        assert_eq!(stats.artifact_invalidations, 2);
        assert_eq!(stats.artifact_evictions, 1);
    }

    #[test]
    fn equal_content_shares_one_group_until_the_last_holder_leaves() {
        let doc1 = prepared("<r><a/></r>");
        let doc2 = prepared("<r><a/></r>");
        assert_eq!(doc1.content_hash(), doc2.content_hash());
        let cache = ArtifactCache::new(8);
        let d1 = DocId::from_raw(1);
        let d2 = DocId::from_raw(2);
        let s1 = ArtifactScope::of(d1, 1, 0, BackendKind::Eager, &doc1);
        let s2 = ArtifactScope::of(d2, 3, 0, BackendKind::Eager, &doc2);
        assert_eq!(s1, s2, "scope is content, not coordinates");
        cache.register(s1, BackendKind::Eager, d1);
        cache.register(s2, BackendKind::Eager, d2);
        let a = Arc::new(PlanArtifact::build(
            &plan("//a"),
            d1,
            1,
            0,
            BackendKind::Eager,
            &doc1,
        ));
        cache.insert("//a", &a);
        // d2 answers from d1's artifact.
        assert!(Arc::ptr_eq(
            &cache.get(s2, BackendKind::Eager, "//a").unwrap(),
            &a
        ));
        // Releasing one holder keeps the group for the other...
        assert_eq!(cache.release_doc(d1, s1, BackendKind::Eager), 0);
        assert!(cache.get(s2, BackendKind::Eager, "//a").is_some());
        // ...and releasing the last holder drops it.
        assert_eq!(cache.release_doc(d2, s2, BackendKind::Eager), 1);
        assert!(cache.get(s2, BackendKind::Eager, "//a").is_none());
    }

    #[test]
    fn lazy_and_mutated_snapshots_stay_private() {
        let doc = prepared("<r><a/></r>");
        let d = DocId::from_raw(1);
        assert!(matches!(
            ArtifactScope::of(d, 1, 0, BackendKind::Lazy, &doc),
            ArtifactScope::Private { .. }
        ));
        assert!(matches!(
            ArtifactScope::of(d, 1, 2, BackendKind::Eager, &doc),
            ArtifactScope::Private { .. }
        ));
        assert!(matches!(
            ArtifactScope::of(d, 1, 0, BackendKind::Snapshot, &doc),
            ArtifactScope::Shared { .. }
        ));
    }

    #[test]
    fn the_first_successful_run_caches_the_root_result() {
        let doc = prepared("<r><a/><a/></r>");
        let artifact = PlanArtifact::build(
            &plan("//a"),
            DocId::from_raw(1),
            1,
            0,
            BackendKind::Eager,
            &doc,
        );
        assert!(!artifact.has_cached_result());
        let first = artifact.run().unwrap();
        assert!(artifact.has_cached_result());
        let repeat = artifact.run().unwrap();
        assert_eq!(first, repeat, "repeats clone the cached output");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let doc = prepared("<r><a/></r>");
        let cache = ArtifactCache::new(0);
        let a = Arc::new(PlanArtifact::build(
            &plan("//a"),
            DocId::from_raw(1),
            1,
            0,
            BackendKind::Eager,
            &doc,
        ));
        cache.insert("//a", &a);
        assert!(cache.get(a.scope(), BackendKind::Eager, "//a").is_none());
    }
}
