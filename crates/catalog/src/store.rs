//! The named, concurrent document store: [`Catalog`], its builder, ids,
//! errors and the fan-out evaluation surface.
//!
//! A catalog owns ingestion end to end: [`Catalog::insert_xml`] parses and
//! prepares once, hands back a stable [`DocId`], and keeps the
//! [`PreparedDocument`] behind the human-readable name.  Replacing a name
//! bumps the entry's **generation** and purges its (query × document)
//! artifacts; capacity is bounded with LRU eviction; every entry carries
//! its own usage counters ([`DocInfo`]).
//!
//! Evaluation goes through the artifact cache: the first
//! [`Catalog::evaluate_on`] for a (query, document, generation) triple
//! compiles the query through the engine's plan cache and specializes it
//! for the document ([`PlanArtifact`]); every repeat skips the per-call
//! selectivity probing and strategy selection (the artifact's tag
//! resolutions and candidate bound are computed once per generation, and
//! a verified zero bound skips evaluation itself).  [`Catalog::evaluate_on_all`] and
//! [`Catalog::evaluate_matching`] fan one query out over many documents.
//!
//! **Locking.**  The store is a single `RwLock` over two small maps; the
//! artifact cache and every counter are outside it.  Evaluation holds the
//! read lock only long enough to clone out an `Arc` of the entry —
//! documents and artifacts are immutable, so queries never serialize on
//! the store.  Writers (insert/replace/remove) purge artifacts *after*
//! dropping the write lock; a concurrent evaluation racing a replacement
//! may finish against the old generation (and may leave an old-generation
//! artifact in the cache, unreachable by key, until it ages out) — it
//! never sees a mix of generations.

use crate::artifact::{ArtifactCache, ArtifactScope, PlanArtifact, Retarget};
use crate::glob::glob_match;
use crate::stats::{CatalogStats, DocInfo};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use xpeval_backends::{BackendKind, LazyDocument, PreparedSnapshot};
use xpeval_core::{Bindings, Engine, EvalError, QueryOutput};
use xpeval_dom::{parse_xml, Document, PreparedDocument, TreeProvider, XmlParseError};
use xpeval_live::{LiveDocument, PendingEdits};

/// Stable identity of a catalog document.
///
/// Ids are assigned at first insert, never reused, and survive
/// replacement: replacing the document behind a name keeps the `DocId` and
/// bumps the entry's generation instead.  This is the key the engine's
/// document cache and the artifact cache use — a stable name, unlike the
/// `Arc`-address keying of the legacy path (see
/// `xpeval_core::cache::DocKey` for that hazard).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(u64);

impl DocId {
    /// The raw id value — also the document's stable key in the engine's
    /// document cache.  Ids are minted from one process-global counter, so
    /// catalogs sharing an engine never collide on a key.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a `DocId` from [`DocId::as_u64`] — for tests and external
    /// id plumbing; the catalog only honours ids it minted itself.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        DocId(raw)
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// Why a catalog operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum CatalogError {
    /// The named document is not in the catalog (never inserted, removed,
    /// or evicted).
    UnknownDocument {
        /// The name that failed to resolve.
        name: String,
    },
    /// The id is not in the catalog (document removed or evicted, or the
    /// id was minted by another catalog).
    UnknownDocId {
        /// The id that failed to resolve.
        id: DocId,
    },
    /// [`Catalog::insert_xml`] was given XML that does not parse.
    Xml(XmlParseError),
    /// A storage backend failed to produce a document: a snapshot failed
    /// validation or decoding ([`Catalog::insert_snapshot`]), or a tree
    /// provider reported a build error ([`Catalog::insert_tree`]).
    Backend {
        /// The backend's own description of the failure.
        message: String,
    },
    /// The query failed to compile or evaluate.
    Eval(EvalError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownDocument { name } => {
                write!(f, "no document named '{name}' in the catalog")
            }
            CatalogError::UnknownDocId { id } => {
                write!(f, "no document with id {id} in the catalog")
            }
            CatalogError::Xml(e) => write!(f, "document does not parse: {e}"),
            CatalogError::Backend { message } => {
                write!(f, "storage backend failed: {message}")
            }
            CatalogError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::UnknownDocument { .. }
            | CatalogError::UnknownDocId { .. }
            | CatalogError::Backend { .. } => None,
            CatalogError::Xml(e) => Some(e),
            CatalogError::Eval(e) => Some(e),
        }
    }
}

impl From<EvalError> for CatalogError {
    fn from(e: EvalError) -> Self {
        CatalogError::Eval(e)
    }
}

impl From<XmlParseError> for CatalogError {
    fn from(e: XmlParseError) -> Self {
        CatalogError::Xml(e)
    }
}

/// One document's result in a fan-out evaluation
/// ([`Catalog::evaluate_on_all`], [`Catalog::evaluate_matching`]).
#[derive(Clone, Debug)]
pub struct FanOut {
    /// The document's catalog name.
    pub name: String,
    /// Its stable id.
    pub doc: DocId,
    /// The generation the query ran against.
    pub generation: u64,
    /// The per-document outcome; one failing document does not poison the
    /// fan-out.
    pub result: Result<QueryOutput, EvalError>,
}

/// What a [`Catalog::mutate_named`] / [`Catalog::mutate`] call did: the
/// closure's return value, the document's post-edit version coordinates,
/// the drained edit batch, and how precisely the artifact cache was
/// invalidated.
#[derive(Debug)]
pub struct MutationOutcome<T> {
    /// Whatever the mutation closure returned.
    pub value: T,
    /// The document's stable id.
    pub doc: DocId,
    /// The (unchanged) generation the edits landed in.
    pub generation: u64,
    /// The post-edit revision (unchanged when the closure made no edit).
    pub revision: u64,
    /// The edit batch the closure applied — dirty preorder interval,
    /// counts — or `None` when it edited nothing.
    pub edits: Option<PendingEdits>,
    /// Artifacts dropped because their candidates intersect the dirty
    /// interval (they re-specialize on next evaluation).
    pub artifacts_killed: u64,
    /// Artifacts rebased onto the post-edit snapshot with their
    /// specialized plan, pinned strategy and verified shortcut intact.
    pub artifacts_preserved: u64,
}

/// Usage counters of one named slot, shared by every generation of the
/// entry behind an `Arc`: a replacement clones the handle instead of
/// copying values, so increments made through an old generation's
/// `Arc<CatalogEntry>` (an evaluation racing the replacement) land on the
/// same counters and are never lost.
#[derive(Debug, Default)]
struct SlotCounters {
    evaluations: AtomicU64,
    artifact_hits: AtomicU64,
}

/// How an entry's document is stored behind its `prepared` snapshot.
///
/// `Eager` holds nothing extra (the snapshot *is* the storage — also the
/// promotion target when a mutation diverges an entry from its backend).
/// `Lazy` keeps the tokenized source whose resident wave `prepared`
/// currently is; `spine_nodes` is the node count of the cold spine wave,
/// so budget enforcement knows whether a demotion would free anything.
/// `Snapshot` pins the zero-copy byte image the document was decoded
/// from (shared with every other holder of the snapshot).
#[derive(Clone, Debug)]
enum Backing {
    Eager,
    Lazy {
        doc: Arc<LazyDocument>,
        spine_nodes: usize,
    },
    Snapshot(#[allow(dead_code)] Arc<PreparedSnapshot>),
}

/// One live entry of the store.  Shared out by `Arc` so evaluation never
/// holds the store lock; the atomics are the entry's own usage counters.
#[derive(Debug)]
struct CatalogEntry {
    name: String,
    id: DocId,
    generation: u64,
    /// In-place edits applied within this generation
    /// ([`Catalog::mutate_named`]); resets to 0 whenever the generation
    /// bumps (whole-document replacement).  Lazy entries also bump it on
    /// every materialization wave — node ids are not stable across waves,
    /// so a wave invalidates artifacts exactly like an edit batch would.
    revision: u64,
    prepared: Arc<PreparedDocument>,
    /// Which storage backend produced `prepared` (part of every artifact
    /// key; see [`DocInfo::backend`]).
    kind: BackendKind,
    backing: Backing,
    /// Global-tick recency stamp for LRU eviction (updated through a
    /// shared read lock — hence atomic).
    last_used: AtomicU64,
    /// Shared across the slot's generations; see [`SlotCounters`].
    counters: Arc<SlotCounters>,
}

impl CatalogEntry {
    /// The artifact-cache namespace this entry answers from: its content
    /// hash while unmutated and fully materialized, its exact coordinates
    /// otherwise ([`ArtifactScope::of`]).  O(1): the hash is primed at
    /// install time and memoized on the prepared document.
    fn scope(&self) -> ArtifactScope {
        ArtifactScope::of(
            self.id,
            self.generation,
            self.revision,
            self.kind,
            &self.prepared,
        )
    }
}

#[derive(Debug, Default)]
struct DocStore {
    by_name: HashMap<String, DocId>,
    entries: HashMap<DocId, Arc<CatalogEntry>>,
}

/// Mints process-unique [`DocId`]s: one global counter shared by every
/// catalog, so an id doubles as the document's stable key in a shared
/// engine's document cache with no per-catalog namespacing, no
/// truncation, and no collision — ever (2⁶⁴ inserts are unreachable).
fn mint_doc_id() -> DocId {
    static NEXT_DOC_ID: AtomicU64 = AtomicU64::new(1);
    DocId(NEXT_DOC_ID.fetch_add(1, Ordering::Relaxed))
}

#[derive(Debug)]
struct CatalogShared {
    engine: Engine,
    capacity: usize,
    node_budget: usize,
    docs: RwLock<DocStore>,
    artifacts: ArtifactCache,
    tick: AtomicU64,
    inserts: AtomicU64,
    replacements: AtomicU64,
    mutations: AtomicU64,
    removals: AtomicU64,
    evictions: AtomicU64,
    demotions: AtomicU64,
    resolve_hits: AtomicU64,
    resolve_misses: AtomicU64,
    evaluations: AtomicU64,
    /// Artifact-cache hits answered by an artifact built for a *different*
    /// document with equal content — the witness that content-hash
    /// keying actually shares work across documents.
    artifact_cross_doc_hits: AtomicU64,
}

/// Configures and builds a [`Catalog`].
#[derive(Debug)]
pub struct CatalogBuilder {
    engine: Option<Engine>,
    capacity: usize,
    node_budget: usize,
    artifact_capacity: usize,
}

impl CatalogBuilder {
    /// Default configuration: room for 256 documents, 1024 plan
    /// artifacts, no node budget, and a default [`Engine`] whose document
    /// cache is sized to the catalog (so stable-keyed prepared indexes do
    /// not churn).
    pub fn new() -> Self {
        CatalogBuilder {
            engine: None,
            capacity: 256,
            node_budget: 0,
            artifact_capacity: 1024,
        }
    }

    /// Evaluates through this engine (a clone of the handle; plan and
    /// document caches are shared with the caller and with any serving
    /// pool built on the same engine).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Maximum number of documents; inserting beyond it evicts the
    /// least-recently-used entry (and its artifacts).  0 = unbounded.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Capacity of the (query × document) artifact cache in entries;
    /// 0 disables artifact caching (every evaluation re-specializes).
    pub fn artifact_capacity(mut self, capacity: usize) -> Self {
        self.artifact_capacity = capacity;
        self
    }

    /// Upper bound on the total number of *resident* arena nodes across
    /// all entries; 0 = unbounded (the default).
    ///
    /// [`CatalogBuilder::capacity`] counts entries, so a few huge
    /// documents can blow the memory that bound was meant to cap while
    /// staying far under it.  The node budget weighs every entry by the
    /// node count of its currently materialized snapshot instead.
    /// Enforcement (after every insert and lazy materialization wave)
    /// first **demotes** least-recently-used lazy entries back to their
    /// spine wave — shedding their materialized extents while keeping
    /// them answerable — and only then evicts whole least-recently-used
    /// entries.  The most recently used entry is never evicted, so a
    /// single document larger than the budget still works (over budget,
    /// alone).
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = nodes;
        self
    }

    /// Builds the catalog.
    pub fn build(self) -> Catalog {
        let engine = self.engine.unwrap_or_else(|| {
            let doc_cache = if self.capacity == 0 {
                64
            } else {
                self.capacity
            };
            Engine::builder().document_cache_capacity(doc_cache).build()
        });
        Catalog {
            shared: Arc::new(CatalogShared {
                engine,
                capacity: self.capacity,
                node_budget: self.node_budget,
                docs: RwLock::new(DocStore::default()),
                artifacts: ArtifactCache::new(self.artifact_capacity),
                tick: AtomicU64::new(0),
                inserts: AtomicU64::new(0),
                replacements: AtomicU64::new(0),
                mutations: AtomicU64::new(0),
                removals: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                demotions: AtomicU64::new(0),
                resolve_hits: AtomicU64::new(0),
                resolve_misses: AtomicU64::new(0),
                evaluations: AtomicU64::new(0),
                artifact_cross_doc_hits: AtomicU64::new(0),
            }),
        }
    }
}

impl Default for CatalogBuilder {
    fn default() -> Self {
        CatalogBuilder::new()
    }
}

/// A concurrent, named multi-document store with (query × document) plan
/// artifacts and fan-out evaluation.  See the [module docs](self) and the
/// crate docs for the model.
///
/// `Catalog` is a cheap-to-clone *handle* (like [`Engine`]): clones share
/// the store, the artifact cache and the engine, so a serving pool can
/// hand every worker its own handle.
#[derive(Clone, Debug)]
pub struct Catalog {
    shared: Arc<CatalogShared>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// A catalog with default configuration.
    pub fn new() -> Self {
        CatalogBuilder::new().build()
    }

    /// Starts configuring a catalog.
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::new()
    }

    /// The engine the catalog evaluates through (shared handle).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    fn next_tick(&self) -> u64 {
        self.shared.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The id the name resolves to, or a freshly minted one (the flag
    /// says which).  Ids are reserved *before* the O(|D|) preparation so
    /// the prepared index can be cached under its stable key.  The
    /// reservation is only a hint: [`Catalog::install`] re-resolves under
    /// its own write lock and discards a reservation the store moved
    /// under (name inserted, removed or evicted concurrently) — a wasted
    /// id is never installed, so ids are genuinely never reused.
    fn reserve_id(&self, name: &str) -> (DocId, bool) {
        let docs = self.shared.docs.read().unwrap();
        match docs.by_name.get(name) {
            Some(&id) => (id, false),
            None => (mint_doc_id(), true),
        }
    }

    /// Parses, prepares and stores XML under `name`.  Replaces (generation
    /// bump) if the name exists.
    pub fn insert_xml(&self, name: &str, xml: &str) -> Result<DocId, CatalogError> {
        let doc = parse_xml(xml)?;
        Ok(self.insert_document(name, doc))
    }

    /// Prepares and stores a document under `name`, routing the index
    /// build through the engine's document cache keyed by the stable
    /// [`DocId`] (never by `Arc` address).  Replaces (generation bump) if
    /// the name exists.
    pub fn insert_document(&self, name: &str, doc: impl Into<Arc<Document>>) -> DocId {
        let doc = doc.into();
        let (reserved, fresh) = self.reserve_id(name);
        let prepared = self.shared.engine.prepare_keyed(reserved.as_u64(), &doc);
        self.install(
            name,
            reserved,
            fresh,
            true,
            prepared,
            BackendKind::Eager,
            Backing::Eager,
        )
    }

    /// Stores an already-prepared document under `name`.  Replaces
    /// (generation bump) if the name exists.
    pub fn insert_prepared(&self, name: &str, prepared: Arc<PreparedDocument>) -> DocId {
        let (reserved, fresh) = self.reserve_id(name);
        self.install(
            name,
            reserved,
            fresh,
            false,
            prepared,
            BackendKind::Eager,
            Backing::Eager,
        )
    }

    /// Tokenizes `xml` into a [`LazyDocument`] and stores it under `name`
    /// holding only its **spine wave**: subtree extents materialize on
    /// demand, query by query ([`Catalog::evaluate_on`] grows the wave to
    /// cover each query before evaluating, bumping the entry's revision —
    /// node ids are not stable across waves).  Replaces (generation bump)
    /// if the name exists.
    pub fn insert_lazy(&self, name: &str, xml: &str) -> Result<DocId, CatalogError> {
        let lazy = Arc::new(LazyDocument::new(xml)?);
        let spine = lazy.demote_to_spine()?;
        let spine_nodes = spine.node_count();
        let (reserved, fresh) = self.reserve_id(name);
        Ok(self.install(
            name,
            reserved,
            fresh,
            false,
            spine,
            BackendKind::Lazy,
            Backing::Lazy {
                doc: lazy,
                spine_nodes,
            },
        ))
    }

    /// Stores the document decoded from a zero-copy
    /// [`PreparedSnapshot`] under `name`, pinning the snapshot's byte
    /// image for the entry's lifetime (the decode happens at most once
    /// per snapshot and is shared with every other holder).  Replaces
    /// (generation bump) if the name exists.
    pub fn insert_snapshot(
        &self,
        name: &str,
        snapshot: &Arc<PreparedSnapshot>,
    ) -> Result<DocId, CatalogError> {
        let prepared = snapshot.document().map_err(|e| CatalogError::Backend {
            message: e.to_string(),
        })?;
        let (reserved, fresh) = self.reserve_id(name);
        Ok(self.install(
            name,
            reserved,
            fresh,
            false,
            prepared,
            BackendKind::Snapshot,
            Backing::Snapshot(Arc::clone(snapshot)),
        ))
    }

    /// Builds a document from a non-XML [`TreeProvider`] (for example the
    /// JSON provider in `xpeval-backends`) and stores it under `name`.
    /// Replaces (generation bump) if the name exists.
    pub fn insert_tree(
        &self,
        name: &str,
        provider: &dyn TreeProvider,
    ) -> Result<DocId, CatalogError> {
        let prepared = provider
            .build_prepared()
            .map_err(|e| CatalogError::Backend {
                message: e.to_string(),
            })?;
        let (reserved, fresh) = self.reserve_id(name);
        Ok(self.install(
            name,
            reserved,
            fresh,
            false,
            Arc::new(prepared),
            BackendKind::Tree,
            Backing::Eager,
        ))
    }

    /// `via_engine_cache` says whether `prepared` was just built through
    /// [`Engine::prepare_keyed`] under the installed id's stable key — if
    /// it was not (the `insert_prepared` path), a replacement must also
    /// drop the id's keyed entry, or the *previous* generation's index
    /// would stay pinned there.
    #[allow(clippy::too_many_arguments)] // private installer; every call site names the flags
    fn install(
        &self,
        name: &str,
        reserved: DocId,
        fresh: bool,
        via_engine_cache: bool,
        prepared: Arc<PreparedDocument>,
        kind: BackendKind,
        backing: Backing,
    ) -> DocId {
        let shared = &self.shared;
        let tick = self.next_tick();
        // Prime the content hash outside every lock: entry scopes (and the
        // shared-artifact keying they drive) read it on hot paths, and the
        // one O(|D|) computation is memoized on the prepared document.
        if !matches!(backing, Backing::Lazy { .. }) {
            prepared.content_hash();
        }
        let mut purge: Vec<Arc<CatalogEntry>> = Vec::new();
        let installed;
        let id;
        {
            let mut docs = shared.docs.write().unwrap();
            if let Some(&existing) = docs.by_name.get(name) {
                // Replacement: same id, next generation; usage counters
                // describe the named slot and carry over.
                let old = docs
                    .entries
                    .get(&existing)
                    .cloned()
                    .expect("name index points at a live entry");
                let entry = Arc::new(CatalogEntry {
                    name: name.to_string(),
                    id: existing,
                    generation: old.generation + 1,
                    revision: 0,
                    prepared: Arc::clone(&prepared),
                    kind,
                    backing,
                    last_used: AtomicU64::new(tick),
                    counters: Arc::clone(&old.counters),
                });
                installed = Arc::clone(&entry);
                docs.entries.insert(existing, entry);
                shared.replacements.fetch_add(1, Ordering::Relaxed);
                purge.push(old);
                id = existing;
            } else {
                if shared.capacity > 0 && docs.entries.len() >= shared.capacity {
                    if let Some(victim) = docs
                        .entries
                        .values()
                        .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                        .map(|e| e.id)
                    {
                        let gone = docs.entries.remove(&victim).expect("victim is live");
                        docs.by_name.remove(&gone.name);
                        shared.evictions.fetch_add(1, Ordering::Relaxed);
                        purge.push(gone);
                    }
                }
                // A reservation that was *not* freshly minted named an
                // entry that has since been removed or evicted: that id
                // is retired and must not be resurrected (a reborn id at
                // generation 1 could climb back to a generation whose
                // stale artifacts still linger).  Mint a genuinely new
                // id instead.
                id = if fresh { reserved } else { mint_doc_id() };
                let entry = Arc::new(CatalogEntry {
                    name: name.to_string(),
                    id,
                    generation: 1,
                    revision: 0,
                    prepared: Arc::clone(&prepared),
                    kind,
                    backing,
                    last_used: AtomicU64::new(tick),
                    counters: Arc::new(SlotCounters::default()),
                });
                installed = Arc::clone(&entry);
                docs.by_name.insert(name.to_string(), id);
                docs.entries.insert(id, entry);
                shared.inserts.fetch_add(1, Ordering::Relaxed);
            }
            // Publish the installed index into the keyed document cache
            // *inside* the store's critical section: the prepare_keyed
            // calls above race unserialized, so two replacements of one
            // name could otherwise leave the cache holding the superseded
            // generation's index (pinned, and a guaranteed cold rebuild
            // for the live one).  Publishing here makes the cache agree
            // with installation order.  O(1) — no index is built under
            // the lock; the documents mutex nests inside the store lock
            // only on this path, and nothing locks in the other order.
            if via_engine_cache {
                shared.engine.cache_keyed(id.as_u64(), &prepared);
            }
            // Keyed-cache *discards* stay inside the critical section
            // too: deferred outside it, our cleanup could run after a
            // concurrent installer's publish and drop their live index —
            // the exact superseded-state outcome publishing under the
            // lock exists to prevent.  Each discard is O(1).  Dropped
            // here: evicted victims' entries, a replaced entry the
            // engine cache was bypassed for (`insert_prepared` — the
            // previous generation's index must not stay pinned), and a
            // reservation the store moved under (its speculatively
            // cached index was never installed).
            for e in &purge {
                if e.id != id || !via_engine_cache {
                    shared.engine.discard_keyed(e.id.as_u64());
                }
            }
            if reserved != id {
                shared.engine.discard_keyed(reserved.as_u64());
            }
        }
        // Register the installed entry's scope hold *before* releasing the
        // replaced/evicted entries below: a replacement that re-installs
        // identical content keeps its shared artifacts alive through the
        // swap (the hold count never touches zero).
        shared
            .artifacts
            .register(installed.scope(), installed.kind, id);
        // Outside the write lock: the artifact release takes the artifact
        // cache's own mutex, can sweep many entries, and evaluation must
        // not wait on it.  A release deferred past the lock can race an
        // evaluation of the *new* generation and drop its freshly built
        // artifact too — benign: artifacts are rebuildable derived state,
        // so the cost is one re-specialize on the next evaluation, never
        // a wrong result.
        for e in purge {
            shared.artifacts.release_doc(e.id, e.scope(), e.kind);
        }
        self.enforce_node_budget();
        id
    }

    /// Brings the total resident node count back under the configured
    /// [`CatalogBuilder::node_budget`] (no-op when unbounded).  Two-phase:
    /// first demote least-recently-used **lazy** entries back to their
    /// spine wave (the document stays answerable; its materialized extents
    /// — usually the bulk of its nodes — are freed), then evict whole
    /// least-recently-used entries.  The most recently used entry is never
    /// evicted.
    fn enforce_node_budget(&self) {
        let budget = self.shared.node_budget;
        if budget == 0 {
            return;
        }
        enum Action {
            Demote(Arc<CatalogEntry>),
            Evict(DocId),
            Done,
        }
        // Entries already demoted (or that failed to demote) this round;
        // guarantees progress even when demotion frees nothing.
        let mut tried: Vec<DocId> = Vec::new();
        loop {
            let action = {
                let docs = self.shared.docs.read().unwrap();
                let resident: usize = docs.entries.values().map(|e| e.prepared.node_count()).sum();
                if resident <= budget {
                    Action::Done
                } else {
                    let demotable = docs
                        .entries
                        .values()
                        .filter(|e| !tried.contains(&e.id))
                        .filter(|e| match &e.backing {
                            Backing::Lazy { spine_nodes, .. } => {
                                e.prepared.node_count() > *spine_nodes
                            }
                            _ => false,
                        })
                        .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                        .cloned();
                    match demotable {
                        Some(entry) => Action::Demote(entry),
                        None => {
                            let mru = docs
                                .entries
                                .values()
                                .map(|e| e.last_used.load(Ordering::Relaxed))
                                .max()
                                .unwrap_or(0);
                            docs.entries
                                .values()
                                .filter(|e| e.last_used.load(Ordering::Relaxed) != mru)
                                .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                                .map(|e| e.id)
                                .map_or(Action::Done, Action::Evict)
                        }
                    }
                }
            };
            match action {
                Action::Done => return,
                Action::Demote(entry) => {
                    tried.push(entry.id);
                    let Backing::Lazy { doc: lazy, .. } = &entry.backing else {
                        unreachable!("demotion candidates are lazy-backed");
                    };
                    // The spine re-parse happens outside every lock.
                    let Ok(spine) = lazy.demote_to_spine() else {
                        continue; // tokenized input no longer parses; skip
                    };
                    let demoted = {
                        let mut docs = self.shared.docs.write().unwrap();
                        let cur = docs.entries.get(&entry.id).cloned();
                        match cur {
                            // Only demote the generation we selected; a
                            // replacement racing us wins.
                            Some(cur)
                                if cur.generation == entry.generation
                                    && matches!(cur.backing, Backing::Lazy { .. }) =>
                            {
                                let next = Arc::new(CatalogEntry {
                                    name: cur.name.clone(),
                                    id: cur.id,
                                    generation: cur.generation,
                                    revision: cur.revision + 1,
                                    prepared: spine,
                                    kind: cur.kind,
                                    backing: cur.backing.clone(),
                                    // Keep the old recency: demotion must
                                    // not promote the victim over entries
                                    // that were genuinely used later.
                                    last_used: AtomicU64::new(
                                        cur.last_used.load(Ordering::Relaxed),
                                    ),
                                    counters: Arc::clone(&cur.counters),
                                });
                                docs.entries.insert(cur.id, next);
                                true
                            }
                            _ => false,
                        }
                    };
                    if demoted {
                        self.shared.demotions.fetch_add(1, Ordering::Relaxed);
                        self.shared
                            .artifacts
                            .release_doc(entry.id, entry.scope(), entry.kind);
                    }
                }
                Action::Evict(id) => {
                    let gone = {
                        let mut docs = self.shared.docs.write().unwrap();
                        docs.entries.remove(&id).map(|e| {
                            docs.by_name.remove(&e.name);
                            e
                        })
                    };
                    match gone {
                        Some(e) => {
                            self.shared.evictions.fetch_add(1, Ordering::Relaxed);
                            self.shared.artifacts.release_doc(e.id, e.scope(), e.kind);
                            self.shared.engine.discard_keyed(e.id.as_u64());
                        }
                        // The store changed under us; stop rather than
                        // spin against concurrent writers.
                        None => return,
                    }
                }
            }
        }
    }

    /// Removes the named document (and purges its artifacts and its
    /// stable-keyed entry in the engine's document cache).  Returns
    /// whether it existed.  The id is retired, never reused.
    pub fn remove(&self, name: &str) -> bool {
        let removed = {
            let mut docs = self.shared.docs.write().unwrap();
            docs.by_name
                .remove(name)
                .and_then(|id| docs.entries.remove(&id))
        };
        match removed {
            Some(e) => {
                self.shared.removals.fetch_add(1, Ordering::Relaxed);
                self.shared.artifacts.release_doc(e.id, e.scope(), e.kind);
                self.shared.engine.discard_keyed(e.id.as_u64());
                true
            }
            None => false,
        }
    }

    /// Edits the named document **in place** through a [`LiveDocument`]
    /// view, with incremental index maintenance and subtree-scoped
    /// artifact invalidation — the fine-grained alternative to
    /// whole-document replacement ([`Catalog::insert_xml`]).
    ///
    /// The closure runs under the store's write lock, so edits on a
    /// catalog serialize with each other and with name resolution (racing
    /// readers hold pre-edit snapshots and never observe a half-patched
    /// index; post-edit readers resolve to the published snapshot).  Keep
    /// closures small — parse fragments *before* calling; the incremental
    /// edits themselves are microsecond-scale.  Each successful edit bumps
    /// the entry's **revision**; the generation is untouched (that is the
    /// replacement counter).  After publishing, the document's plan
    /// artifacts are re-targeted at the new revision: only those whose
    /// name-bounded candidates intersect the batch's dirty preorder
    /// interval are dropped, the rest carry their specialized plan,
    /// pinned strategy and verified-empty shortcut across the edit.
    ///
    /// A closure that makes no successful edit (or only failed ones)
    /// publishes nothing: same revision, no invalidation.  Edit errors are
    /// the closure's to handle (e.g. return the `Result` as `T`).
    pub fn mutate_named<T>(
        &self,
        name: &str,
        edit: impl FnOnce(&mut LiveDocument) -> T,
    ) -> Result<MutationOutcome<T>, CatalogError> {
        self.mutate_resolved(
            |docs| docs.by_name.get(name).copied(),
            CatalogError::UnknownDocument {
                name: name.to_string(),
            },
            edit,
        )
    }

    /// [`Catalog::mutate_named`] addressed by stable id instead of name.
    pub fn mutate<T>(
        &self,
        id: DocId,
        edit: impl FnOnce(&mut LiveDocument) -> T,
    ) -> Result<MutationOutcome<T>, CatalogError> {
        self.mutate_resolved(|_| Some(id), CatalogError::UnknownDocId { id }, edit)
    }

    fn mutate_resolved<T>(
        &self,
        resolve: impl FnOnce(&DocStore) -> Option<DocId>,
        missing: CatalogError,
        edit: impl FnOnce(&mut LiveDocument) -> T,
    ) -> Result<MutationOutcome<T>, CatalogError> {
        let shared = &self.shared;
        let tick = self.next_tick();
        let (mut outcome, pending, new_prepared, promoted);
        {
            let mut docs = shared.docs.write().unwrap();
            let entry = resolve(&docs)
                .and_then(|id| docs.entries.get(&id))
                .cloned()
                .ok_or(missing)?;
            // Non-eager backings promote to eager on mutation: an edited
            // document diverges from its storage (a lazy input string, a
            // snapshot byte image), and a lazy wave must be complete
            // before editing (node ids across waves are incomparable).
            let (base, kind, backing) = match &entry.backing {
                Backing::Lazy { doc: lazy, .. } => {
                    let full = lazy.materialize_all().map_err(|e| CatalogError::Backend {
                        message: format!("lazy materialization failed: {e}"),
                    })?;
                    (full, BackendKind::Eager, Backing::Eager)
                }
                Backing::Snapshot(_) => (
                    Arc::clone(&entry.prepared),
                    BackendKind::Eager,
                    Backing::Eager,
                ),
                Backing::Eager => (Arc::clone(&entry.prepared), entry.kind, Backing::Eager),
            };
            promoted = kind != entry.kind || !Arc::ptr_eq(&base, &entry.prepared);
            let mut live = LiveDocument::resume(base, entry.revision);
            let value = edit(&mut live);
            let Some(batch) = live.take_pending() else {
                return Ok(MutationOutcome {
                    value,
                    doc: entry.id,
                    generation: entry.generation,
                    revision: entry.revision,
                    edits: None,
                    artifacts_killed: 0,
                    artifacts_preserved: 0,
                });
            };
            new_prepared = live.snapshot();
            let next = Arc::new(CatalogEntry {
                name: entry.name.clone(),
                id: entry.id,
                generation: entry.generation,
                revision: live.revision(),
                prepared: Arc::clone(&new_prepared),
                kind,
                backing,
                last_used: AtomicU64::new(tick),
                counters: Arc::clone(&entry.counters),
            });
            docs.entries.insert(entry.id, next);
            // Publish the post-edit index under the id's stable key inside
            // the critical section — same protocol as `install`, so the
            // engine's document cache agrees with publication order.
            shared.engine.cache_keyed(entry.id.as_u64(), &new_prepared);
            shared.mutations.fetch_add(1, Ordering::Relaxed);
            outcome = MutationOutcome {
                value,
                doc: entry.id,
                generation: entry.generation,
                revision: live.revision(),
                edits: None,
                artifacts_killed: 0,
                artifacts_preserved: 0,
            };
            pending = (batch, entry.scope(), entry.kind);
        }
        // Outside the write lock: the re-target sweep takes the artifact
        // cache's own mutex and may rebase many entries; evaluation must
        // not wait on it.  An evaluation racing this window may still
        // insert an artifact under the *old* scope — unreachable by this
        // document afterwards, aged out by LRU (or still live for other
        // holders of a shared scope); never a wrong result.
        let (batch, old_scope, old_kind) = pending;
        let (killed, preserved) = if promoted {
            // A promotion changes the backend kind (and, for lazy, the
            // node numbering the edit batch is relative to): no pre-edit
            // artifact is comparable with the post-edit snapshot, so the
            // subtree-scoped rule does not apply — drop this document's
            // artifacts (releasing a shared hold rather than sweeping
            // when other documents still share the content).
            (
                shared
                    .artifacts
                    .release_doc(outcome.doc, old_scope, old_kind) as u64,
                0,
            )
        } else {
            shared.artifacts.retarget(
                Retarget {
                    doc: outcome.doc,
                    generation: outcome.generation,
                    old_scope,
                    new_revision: outcome.revision,
                    kind: old_kind,
                    dirty: batch.dirty,
                    renumbered: batch.renumbered,
                },
                &new_prepared,
            )
        };
        outcome.edits = Some(batch);
        outcome.artifacts_killed = killed;
        outcome.artifacts_preserved = preserved;
        Ok(outcome)
    }

    /// Resolves a name to the live entry, counting the lookup and
    /// touching LRU recency on a hit.
    fn entry(&self, name: &str) -> Option<Arc<CatalogEntry>> {
        let found = {
            let docs = self.shared.docs.read().unwrap();
            docs.by_name
                .get(name)
                .and_then(|id| docs.entries.get(id))
                .cloned()
        };
        match &found {
            Some(entry) => {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                self.shared.resolve_hits.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.shared.resolve_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// The stable id behind a name, if present.
    pub fn resolve(&self, name: &str) -> Option<DocId> {
        self.entry(name).map(|e| e.id)
    }

    /// Is the name in the catalog?  (Uncounted; use [`Catalog::resolve`]
    /// for a counted lookup.)
    pub fn contains(&self, name: &str) -> bool {
        self.shared.docs.read().unwrap().by_name.contains_key(name)
    }

    /// The prepared document behind a name.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedDocument>> {
        self.entry(name).map(|e| Arc::clone(&e.prepared))
    }

    /// The prepared document behind a stable id (uncounted; ids come from
    /// [`Catalog::resolve`] or an insert).
    pub fn get_by_id(&self, id: DocId) -> Option<Arc<PreparedDocument>> {
        let docs = self.shared.docs.read().unwrap();
        docs.entries.get(&id).map(|e| Arc::clone(&e.prepared))
    }

    /// The current generation of a name (1 after first insert, +1 per
    /// replacement).
    pub fn generation(&self, name: &str) -> Option<u64> {
        let docs = self.shared.docs.read().unwrap();
        docs.by_name
            .get(name)
            .and_then(|id| docs.entries.get(id))
            .map(|e| e.generation)
    }

    /// The current in-place edit revision of a name (0 after insert or
    /// replacement, +1 per successful [`Catalog::mutate_named`] edit).
    pub fn revision(&self, name: &str) -> Option<u64> {
        let docs = self.shared.docs.read().unwrap();
        docs.by_name
            .get(name)
            .and_then(|id| docs.entries.get(id))
            .map(|e| e.revision)
    }

    /// Number of documents currently stored.
    pub fn len(&self) -> usize {
        self.shared.docs.read().unwrap().entries.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every stored name, sorted.
    pub fn names(&self) -> Vec<String> {
        let docs = self.shared.docs.read().unwrap();
        let mut names: Vec<String> = docs.by_name.keys().cloned().collect();
        drop(docs);
        names.sort_unstable();
        names
    }

    fn info_of(entry: &CatalogEntry) -> DocInfo {
        DocInfo {
            name: entry.name.clone(),
            id: entry.id,
            generation: entry.generation,
            revision: entry.revision,
            backend: entry.kind,
            node_count: entry.prepared.node_count(),
            evaluations: entry.counters.evaluations.load(Ordering::Relaxed),
            artifact_hits: entry.counters.artifact_hits.load(Ordering::Relaxed),
        }
    }

    /// The storage backend kind behind a name (uncounted lookup).
    pub fn backend_kind(&self, name: &str) -> Option<BackendKind> {
        let docs = self.shared.docs.read().unwrap();
        docs.by_name
            .get(name)
            .and_then(|id| docs.entries.get(id))
            .map(|e| e.kind)
    }

    /// Snapshot of one entry's identity and usage counters (uncounted
    /// lookup).
    pub fn info(&self, name: &str) -> Option<DocInfo> {
        let docs = self.shared.docs.read().unwrap();
        docs.by_name
            .get(name)
            .and_then(|id| docs.entries.get(id))
            .map(|e| Self::info_of(e))
    }

    /// Snapshots of every entry, sorted by name.
    pub fn list(&self) -> Vec<DocInfo> {
        let mut infos: Vec<DocInfo> = {
            let docs = self.shared.docs.read().unwrap();
            docs.entries.values().map(|e| Self::info_of(e)).collect()
        };
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Evaluates one query against the entry, through the artifact cache.
    fn evaluate_entry(
        &self,
        entry: &Arc<CatalogEntry>,
        query: &str,
    ) -> Result<QueryOutput, EvalError> {
        self.evaluate_entry_bound(entry, query, &Bindings::new())
    }

    fn evaluate_entry_bound(
        &self,
        entry: &Arc<CatalogEntry>,
        query: &str,
        bindings: &Bindings,
    ) -> Result<QueryOutput, EvalError> {
        let shared = &self.shared;
        shared.evaluations.fetch_add(1, Ordering::Relaxed);
        entry.counters.evaluations.fetch_add(1, Ordering::Relaxed);
        let entry = self.grown_for(entry, query)?;
        let mut out = if let Some(artifact) = shared.artifacts.get(entry.scope(), entry.kind, query)
        {
            entry.counters.artifact_hits.fetch_add(1, Ordering::Relaxed);
            if artifact.doc() != entry.id {
                // Served by an artifact another document built: the
                // content-hash sharing witness.
                shared
                    .artifact_cross_doc_hits
                    .fetch_add(1, Ordering::Relaxed);
            }
            artifact.run_bound(bindings)?
        } else {
            // Miss: compile through the engine's shared plan cache, then
            // specialize for this document snapshot.  Both steps happen
            // outside every lock.
            let plan = shared.engine.compile(query)?;
            let artifact = Arc::new(PlanArtifact::build(
                &plan,
                entry.id,
                entry.generation,
                entry.revision,
                entry.kind,
                &entry.prepared,
            ));
            shared.artifacts.insert(query, &artifact);
            artifact.run_bound(bindings)?
        };
        if entry.kind == BackendKind::Lazy {
            // Witness the laziness: how many arena nodes the query's wave
            // actually holds (compare with the document's total to see the
            // fraction a targeted query materialized).
            out.stats.nodes_materialized = entry.prepared.node_count() as u64;
        }
        Ok(out)
    }

    /// Grows a lazy entry's resident wave to cover `query` and publishes
    /// the grown wave as a new revision; pass-through for every other
    /// backing.  Node ids are not stable across waves, so a grown wave
    /// invalidates the entry's artifacts exactly like an edit would.
    fn grown_for(
        &self,
        entry: &Arc<CatalogEntry>,
        query: &str,
    ) -> Result<Arc<CatalogEntry>, EvalError> {
        let Backing::Lazy { doc: lazy, .. } = &entry.backing else {
            return Ok(Arc::clone(entry));
        };
        let plan = self.shared.engine.compile(query)?;
        let doc = lazy
            .materialize_for(plan.expr())
            .map_err(|e| EvalError::Unsupported {
                message: format!("lazy materialization failed: {e}"),
            })?;
        if Arc::ptr_eq(&doc, &entry.prepared) {
            return Ok(Arc::clone(entry));
        }
        let tick = self.next_tick();
        let published = {
            let mut docs = self.shared.docs.write().unwrap();
            let cur = docs.entries.get(&entry.id).cloned();
            match cur {
                // Publish only onto the generation we resolved; a racing
                // replacement wins.
                Some(cur)
                    if cur.generation == entry.generation
                        && matches!(cur.backing, Backing::Lazy { .. }) =>
                {
                    let next = Arc::new(CatalogEntry {
                        name: cur.name.clone(),
                        id: cur.id,
                        generation: cur.generation,
                        revision: cur.revision + 1,
                        prepared: Arc::clone(&doc),
                        kind: cur.kind,
                        backing: cur.backing.clone(),
                        last_used: AtomicU64::new(tick),
                        counters: Arc::clone(&cur.counters),
                    });
                    docs.entries.insert(cur.id, Arc::clone(&next));
                    Some(next)
                }
                _ => None,
            }
        };
        match published {
            Some(next) => {
                self.shared
                    .artifacts
                    .release_doc(entry.id, entry.scope(), entry.kind);
                self.enforce_node_budget();
                Ok(next)
            }
            // The entry was replaced while the wave grew: evaluate against
            // our wave without publishing (an artifact inserted under the
            // stale coordinates is unreachable by future lookups and ages
            // out).
            None => Ok(Arc::new(CatalogEntry {
                name: entry.name.clone(),
                id: entry.id,
                generation: entry.generation,
                revision: entry.revision,
                prepared: doc,
                kind: entry.kind,
                backing: entry.backing.clone(),
                last_used: AtomicU64::new(tick),
                counters: Arc::clone(&entry.counters),
            })),
        }
    }

    /// Evaluates a query string against the named document, from the root
    /// context.  Repeated (query, name) pairs are served from the
    /// (query × document) artifact cache: compilation, tag resolution and
    /// strategy selection are all skipped.
    pub fn evaluate_on(&self, name: &str, query: &str) -> Result<QueryOutput, CatalogError> {
        let entry = self
            .entry(name)
            .ok_or_else(|| CatalogError::UnknownDocument {
                name: name.to_string(),
            })?;
        self.evaluate_entry(&entry, query)
            .map_err(CatalogError::Eval)
    }

    /// [`Catalog::evaluate_on`] with external variable bindings for the
    /// query's `$name` references.  The artifact cache key stays the query
    /// string alone — re-binding the same query against the same document
    /// is an artifact hit, never a recompile.
    pub fn evaluate_on_bound(
        &self,
        name: &str,
        query: &str,
        bindings: &Bindings,
    ) -> Result<QueryOutput, CatalogError> {
        let entry = self
            .entry(name)
            .ok_or_else(|| CatalogError::UnknownDocument {
                name: name.to_string(),
            })?;
        self.evaluate_entry_bound(&entry, query, bindings)
            .map_err(CatalogError::Eval)
    }

    /// Entries matching an optional glob, sorted by name, LRU-touched.
    fn select(&self, pattern: Option<&str>) -> Vec<Arc<CatalogEntry>> {
        let mut selected: Vec<Arc<CatalogEntry>> = {
            let docs = self.shared.docs.read().unwrap();
            docs.entries
                .values()
                .filter(|e| pattern.map_or(true, |p| glob_match(p, &e.name)))
                .cloned()
                .collect()
        };
        selected.sort_by(|a, b| a.name.cmp(&b.name));
        for entry in &selected {
            entry.last_used.store(self.next_tick(), Ordering::Relaxed);
        }
        selected
    }

    /// Fans one query out over **every** document, returning per-document
    /// results sorted by name.  One failing document does not poison the
    /// fan-out.
    pub fn evaluate_on_all(&self, query: &str) -> Vec<FanOut> {
        self.fan_out(self.select(None), query, &Bindings::new())
    }

    /// Fans one query out over the documents whose names match the glob
    /// `pattern` (`*` = any run, `?` = one character), sorted by name.  An
    /// empty selection returns an empty vector.
    pub fn evaluate_matching(&self, pattern: &str, query: &str) -> Vec<FanOut> {
        self.fan_out(self.select(Some(pattern)), query, &Bindings::new())
    }

    /// [`Catalog::evaluate_matching`] with one binding set shared by every
    /// selected document — the parameterized fan-out: one compiled plan,
    /// one `$name` environment, many documents.
    pub fn evaluate_matching_bound(
        &self,
        pattern: &str,
        query: &str,
        bindings: &Bindings,
    ) -> Vec<FanOut> {
        self.fan_out(self.select(Some(pattern)), query, bindings)
    }

    fn fan_out(
        &self,
        entries: Vec<Arc<CatalogEntry>>,
        query: &str,
        bindings: &Bindings,
    ) -> Vec<FanOut> {
        entries
            .into_iter()
            .map(|entry| FanOut {
                name: entry.name.clone(),
                doc: entry.id,
                generation: entry.generation,
                result: self.evaluate_entry_bound(&entry, query, bindings),
            })
            .collect()
    }

    /// Drops every cached artifact (counters are kept); documents stay.
    pub fn clear_artifacts(&self) {
        self.shared.artifacts.clear();
    }

    /// Snapshot of the catalog's counters.
    pub fn stats(&self) -> CatalogStats {
        let shared = &self.shared;
        let resident_nodes = {
            let docs = shared.docs.read().unwrap();
            docs.entries.values().map(|e| e.prepared.node_count()).sum()
        };
        let mut stats = CatalogStats {
            documents: self.len(),
            capacity: shared.capacity,
            node_budget: shared.node_budget,
            resident_nodes,
            inserts: shared.inserts.load(Ordering::Relaxed),
            replacements: shared.replacements.load(Ordering::Relaxed),
            mutations: shared.mutations.load(Ordering::Relaxed),
            removals: shared.removals.load(Ordering::Relaxed),
            evictions: shared.evictions.load(Ordering::Relaxed),
            demotions: shared.demotions.load(Ordering::Relaxed),
            resolve_hits: shared.resolve_hits.load(Ordering::Relaxed),
            resolve_misses: shared.resolve_misses.load(Ordering::Relaxed),
            evaluations: shared.evaluations.load(Ordering::Relaxed),
            artifact_cross_doc_hits: shared.artifact_cross_doc_hits.load(Ordering::Relaxed),
            ..CatalogStats::default()
        };
        shared.artifacts.fill_stats(&mut stats);
        stats
    }
}
