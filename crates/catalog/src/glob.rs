//! The minimal glob dialect used to select catalog documents by name:
//! `*` matches any (possibly empty) run of characters, `?` matches exactly
//! one character, everything else matches itself.  No character classes,
//! no escapes — document names are operator-chosen identifiers, not paths.

/// Does `name` match `pattern`?
///
/// Iterative backtracking over byte offsets (chars decoded in place, so
/// `?` is one *character*, not one byte): linear in `|name| · |stars|` in
/// the worst case, allocation-free — the fan-out selection calls this
/// once per catalog entry.  A pattern without metacharacters degrades to
/// plain equality.
pub(crate) fn glob_match(pattern: &str, name: &str) -> bool {
    // Byte offsets into pattern and name; always on char boundaries.
    let (mut p, mut t) = (0usize, 0usize);
    // Offsets to resume from when the last `*` has to swallow one more
    // char: (pattern offset after the star, name offset of the swallow
    // point).
    let mut star: Option<(usize, usize)> = None;
    while t < name.len() {
        let tc = name[t..].chars().next().expect("t is on a char boundary");
        match pattern[p..].chars().next() {
            Some('*') => {
                star = Some((p + 1, t));
                p += 1;
            }
            Some(pc) if pc == '?' || pc == tc => {
                p += pc.len_utf8();
                t += tc.len_utf8();
            }
            _ => match star {
                Some((sp, st)) => {
                    let swallowed = name[st..].chars().next().expect("st is on a char boundary");
                    star = Some((sp, st + swallowed.len_utf8()));
                    p = sp;
                    t = st + swallowed.len_utf8();
                }
                None => return false,
            },
        }
    }
    while pattern[p..].starts_with('*') {
        p += 1;
    }
    p == pattern.len()
}

#[cfg(test)]
mod tests {
    use super::glob_match;

    #[test]
    fn literal_patterns_are_equality() {
        assert!(glob_match("orders", "orders"));
        assert!(!glob_match("orders", "orders-1"));
        assert!(!glob_match("orders-1", "orders"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
    }

    #[test]
    fn star_matches_any_run() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("orders-*", "orders-2024"));
        assert!(glob_match("*-2024", "orders-2024"));
        assert!(glob_match("o*s*4", "orders-2024"));
        assert!(!glob_match("orders-*", "invoices-2024"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-c-y-b"));
    }

    #[test]
    fn star_backtracks_over_multibyte_chars() {
        assert!(glob_match("*é", "ααé"));
        assert!(glob_match("α*?", "αβγ"));
        assert!(!glob_match("*é", "éα"));
    }

    #[test]
    fn question_mark_matches_one_char() {
        assert!(glob_match("doc-?", "doc-1"));
        assert!(!glob_match("doc-?", "doc-12"));
        assert!(!glob_match("doc-?", "doc-"));
        assert!(glob_match("d?c-*", "doc-42"));
        // `?` is one character, not one byte.
        assert!(glob_match("?", "é"));
    }
}
