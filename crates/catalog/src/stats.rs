//! Observable counters of the catalog, in the family of
//! `xpeval_core::CacheStats` and `xpeval_serve::ServeStats`: everything the
//! store and its artifact cache do is countable, so tests and benches can
//! assert hit/miss/invalidation behaviour instead of guessing.
//!
//! [`CatalogStats`] implements `xpeval_obs::MetricSource`, so one field
//! enumeration drives the `Display` summary line, `to_json()`, and
//! publication into a metrics registry for the Prometheus exporter.

use xpeval_obs::{Field, FieldValue, MetricSource};

/// Snapshot of a [`crate::Catalog`]'s counters: the document store on the
/// left, the (query × document) artifact cache on the right.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Documents currently stored.
    pub documents: usize,
    /// Maximum number of documents (0 = unbounded).
    pub capacity: usize,
    /// Upper bound on total resident nodes (0 = unbounded); see
    /// [`crate::CatalogBuilder::node_budget`].
    pub node_budget: usize,
    /// Total arena nodes currently resident across all entries — lazy
    /// entries contribute their current wave, not their full document.
    pub resident_nodes: usize,
    /// Documents inserted under a fresh name.
    pub inserts: u64,
    /// Inserts that replaced an existing name (generation bumps).
    pub replacements: u64,
    /// In-place mutation batches applied through
    /// [`crate::Catalog::mutate_named`] / [`crate::Catalog::mutate`]
    /// (revision bumps; closures that edited nothing are not counted).
    pub mutations: u64,
    /// Documents removed explicitly.
    pub removals: u64,
    /// Documents evicted to respect the capacity bound or the node
    /// budget.
    pub evictions: u64,
    /// Lazy entries demoted back to their spine wave by node-budget
    /// enforcement (the entry survived; only its materialized extents
    /// were freed).
    pub demotions: u64,
    /// Name lookups that found a document.
    pub resolve_hits: u64,
    /// Name lookups for names not in the catalog.
    pub resolve_misses: u64,
    /// Evaluations dispatched through the catalog (all entry points).
    pub evaluations: u64,
    /// Artifact-cache entries currently stored.
    pub artifact_len: usize,
    /// Artifact-cache capacity in entries (0 = caching disabled).
    pub artifact_capacity: usize,
    /// Evaluations answered from a cached (query × document) artifact.
    pub artifact_hits: u64,
    /// Evaluations that built (or rebuilt) an artifact.
    pub artifact_misses: u64,
    /// Artifacts evicted by the artifact cache's own LRU bound.
    pub artifact_evictions: u64,
    /// Artifacts dropped because their document was replaced, removed or
    /// evicted, **or** killed by a mutation whose dirty interval hit their
    /// candidates — every way a live artifact dies other than LRU
    /// eviction.
    pub artifact_invalidations: u64,
    /// Artifacts killed by subtree-scoped invalidation: a mutation's dirty
    /// preorder interval intersected their candidate set (a subset of
    /// [`CatalogStats::artifact_invalidations`]).
    pub artifact_scope_killed: u64,
    /// Artifacts that *survived* a mutation: their candidates were
    /// disjoint from the dirty interval, so they were rebased onto the
    /// post-edit snapshot with specialized plan, pinned strategy and
    /// verified shortcut intact.
    pub artifact_scope_preserved: u64,
    /// Artifact-cache hits answered by an artifact built for a
    /// *different* document with equal content — the witness that
    /// content-hash keying shares (query × document) work across
    /// documents (a subset of [`CatalogStats::artifact_hits`]).
    pub artifact_cross_doc_hits: u64,
}

impl CatalogStats {
    /// Fraction of name lookups that found a document, in `0.0..=1.0`
    /// (0.0 before the first lookup).
    pub fn resolve_hit_rate(&self) -> f64 {
        rate(self.resolve_hits, self.resolve_misses)
    }

    /// Fraction of catalog evaluations served from a cached artifact, in
    /// `0.0..=1.0` (0.0 before the first evaluation).
    pub fn artifact_hit_rate(&self) -> f64 {
        rate(self.artifact_hits, self.artifact_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl MetricSource for CatalogStats {
    fn source_name(&self) -> &'static str {
        "catalog"
    }

    fn fields(&self) -> Vec<Field> {
        vec![
            Field::new(
                "docs",
                FieldValue::Frac {
                    num: self.documents as u64,
                    den: self.capacity as u64,
                },
            ),
            Field::new(
                "resident_nodes",
                FieldValue::Gauge(self.resident_nodes as i64),
            ),
            Field::new("node_budget", FieldValue::Gauge(self.node_budget as i64)),
            Field::new("inserted", FieldValue::Counter(self.inserts)),
            Field::new("replaced", FieldValue::Counter(self.replacements)),
            Field::new("mutated", FieldValue::Counter(self.mutations)),
            Field::new("removed", FieldValue::Counter(self.removals)),
            Field::new("evicted", FieldValue::Counter(self.evictions)),
            Field::new("demoted", FieldValue::Counter(self.demotions)),
            Field::new(
                "resolves",
                FieldValue::Ratio {
                    num: self.resolve_hits,
                    den: self.resolve_hits + self.resolve_misses,
                },
            ),
            Field::new("evals", FieldValue::Counter(self.evaluations)),
            Field::new(
                "artifacts",
                FieldValue::Frac {
                    num: self.artifact_len as u64,
                    den: self.artifact_capacity as u64,
                },
            ),
            Field::new(
                "hits",
                FieldValue::Ratio {
                    num: self.artifact_hits,
                    den: self.artifact_hits + self.artifact_misses,
                },
            ),
            Field::new(
                "artifact_evictions",
                FieldValue::Counter(self.artifact_evictions),
            ),
            Field::new(
                "invalidated",
                FieldValue::Counter(self.artifact_invalidations),
            ),
            Field::new(
                "scope_killed",
                FieldValue::Counter(self.artifact_scope_killed),
            ),
            Field::new(
                "scope_preserved",
                FieldValue::Counter(self.artifact_scope_preserved),
            ),
            Field::new(
                "cross_doc_hits",
                FieldValue::Counter(self.artifact_cross_doc_hits),
            ),
        ]
    }
}

impl std::fmt::Display for CatalogStats {
    /// One-line summary shared with [`MetricSource::summary_line`], e.g.
    /// `docs 3/64, resident_nodes 0, node_budget 0, inserted 5, replaced 2,
    /// mutated 3, removed 0, evicted 0, demoted 0, resolves 10/12 (83.3%),
    /// evals 40, artifacts 7/256, hits 33/40 (82.5%), artifact_evictions 0,
    /// invalidated 4, scope_killed 2, scope_preserved 5, cross_doc_hits 3`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary_line())
    }
}

/// Per-document snapshot returned by [`crate::Catalog::info`] and
/// [`crate::Catalog::list`]: identity, generation, size, and the entry's
/// own usage counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocInfo {
    /// The name the document is stored under.
    pub name: String,
    /// Its stable id (never reused, survives replacement).
    pub id: crate::DocId,
    /// Generation counter: starts at 1, bumped by every replacement.
    pub generation: u64,
    /// In-place edit revision within the generation: starts at 0, bumped
    /// by every successful [`crate::Catalog::mutate_named`] edit (and by
    /// every lazy materialization wave), reset by replacement.
    pub revision: u64,
    /// Which storage backend currently holds the document.  Mutations
    /// promote lazy- and snapshot-backed entries to
    /// [`BackendKind::Eager`](xpeval_backends::BackendKind).
    pub backend: xpeval_backends::BackendKind,
    /// Total nodes of the prepared document — for a lazy entry, of its
    /// currently resident wave.
    pub node_count: usize,
    /// Evaluations dispatched against this name (carried across
    /// replacements — the counter describes the named slot).
    pub evaluations: u64,
    /// How many of those were answered from a cached artifact.
    pub artifact_hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_a_single_summary_line() {
        let stats = CatalogStats {
            documents: 3,
            capacity: 64,
            inserts: 5,
            replacements: 2,
            resolve_hits: 10,
            resolve_misses: 2,
            evaluations: 40,
            artifact_len: 7,
            artifact_capacity: 256,
            artifact_hits: 33,
            artifact_misses: 7,
            artifact_invalidations: 4,
            ..CatalogStats::default()
        };
        let line = stats.to_string();
        assert!(line.contains("docs 3/64"), "{line}");
        assert!(line.contains("hits 33/40 (82.5%)"), "{line}");
        assert!(line.contains("invalidated 4"), "{line}");
        assert!(line.contains("scope_killed 0"), "{line}");
        assert!(line.contains("scope_preserved 0"), "{line}");
        assert!(line.contains("cross_doc_hits 0"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn to_json_is_a_flat_object_with_ratio_totals() {
        let stats = CatalogStats {
            documents: 3,
            capacity: 64,
            artifact_hits: 33,
            artifact_misses: 7,
            ..CatalogStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"docs\": 3"), "{json}");
        assert!(json.contains("\"docs_total\": 64"), "{json}");
        assert!(json.contains("\"hits\": 33"), "{json}");
        assert!(json.contains("\"hits_total\": 40"), "{json}");
    }

    #[test]
    fn publish_prefixes_metrics_with_the_source_name() {
        let stats = CatalogStats {
            evaluations: 12,
            artifact_hits: 9,
            artifact_misses: 3,
            ..CatalogStats::default()
        };
        let registry = xpeval_obs::MetricsRegistry::new();
        stats.publish(&registry);
        let text = xpeval_obs::render_prometheus(&registry);
        assert!(text.contains("catalog_evals 12"), "{text}");
        assert!(text.contains("catalog_hits 9"), "{text}");
    }

    #[test]
    fn rates_handle_the_empty_case() {
        let stats = CatalogStats::default();
        assert_eq!(stats.resolve_hit_rate(), 0.0);
        assert_eq!(stats.artifact_hit_rate(), 0.0);
    }
}
