//! Observable counters of the catalog, in the family of
//! `xpeval_core::CacheStats` and `xpeval_serve::ServeStats`: everything the
//! store and its artifact cache do is countable, so tests and benches can
//! assert hit/miss/invalidation behaviour instead of guessing.

/// Snapshot of a [`crate::Catalog`]'s counters: the document store on the
/// left, the (query × document) artifact cache on the right.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Documents currently stored.
    pub documents: usize,
    /// Maximum number of documents (0 = unbounded).
    pub capacity: usize,
    /// Upper bound on total resident nodes (0 = unbounded); see
    /// [`crate::CatalogBuilder::node_budget`].
    pub node_budget: usize,
    /// Total arena nodes currently resident across all entries — lazy
    /// entries contribute their current wave, not their full document.
    pub resident_nodes: usize,
    /// Documents inserted under a fresh name.
    pub inserts: u64,
    /// Inserts that replaced an existing name (generation bumps).
    pub replacements: u64,
    /// In-place mutation batches applied through
    /// [`crate::Catalog::mutate_named`] / [`crate::Catalog::mutate`]
    /// (revision bumps; closures that edited nothing are not counted).
    pub mutations: u64,
    /// Documents removed explicitly.
    pub removals: u64,
    /// Documents evicted to respect the capacity bound or the node
    /// budget.
    pub evictions: u64,
    /// Lazy entries demoted back to their spine wave by node-budget
    /// enforcement (the entry survived; only its materialized extents
    /// were freed).
    pub demotions: u64,
    /// Name lookups that found a document.
    pub resolve_hits: u64,
    /// Name lookups for names not in the catalog.
    pub resolve_misses: u64,
    /// Evaluations dispatched through the catalog (all entry points).
    pub evaluations: u64,
    /// Artifact-cache entries currently stored.
    pub artifact_len: usize,
    /// Artifact-cache capacity in entries (0 = caching disabled).
    pub artifact_capacity: usize,
    /// Evaluations answered from a cached (query × document) artifact.
    pub artifact_hits: u64,
    /// Evaluations that built (or rebuilt) an artifact.
    pub artifact_misses: u64,
    /// Artifacts evicted by the artifact cache's own LRU bound.
    pub artifact_evictions: u64,
    /// Artifacts dropped because their document was replaced, removed or
    /// evicted, **or** killed by a mutation whose dirty interval hit their
    /// candidates — every way a live artifact dies other than LRU
    /// eviction.
    pub artifact_invalidations: u64,
    /// Artifacts killed by subtree-scoped invalidation: a mutation's dirty
    /// preorder interval intersected their candidate set (a subset of
    /// [`CatalogStats::artifact_invalidations`]).
    pub artifact_scope_killed: u64,
    /// Artifacts that *survived* a mutation: their candidates were
    /// disjoint from the dirty interval, so they were rebased onto the
    /// post-edit snapshot with specialized plan, pinned strategy and
    /// verified shortcut intact.
    pub artifact_scope_preserved: u64,
    /// Artifact-cache hits answered by an artifact built for a
    /// *different* document with equal content — the witness that
    /// content-hash keying shares (query × document) work across
    /// documents (a subset of [`CatalogStats::artifact_hits`]).
    pub artifact_cross_doc_hits: u64,
}

impl CatalogStats {
    /// Fraction of name lookups that found a document, in `0.0..=1.0`
    /// (0.0 before the first lookup).
    pub fn resolve_hit_rate(&self) -> f64 {
        rate(self.resolve_hits, self.resolve_misses)
    }

    /// Fraction of catalog evaluations served from a cached artifact, in
    /// `0.0..=1.0` (0.0 before the first evaluation).
    pub fn artifact_hit_rate(&self) -> f64 {
        rate(self.artifact_hits, self.artifact_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl std::fmt::Display for CatalogStats {
    /// One-line summary used by the examples, e.g.
    /// `docs 3/64 (5 inserted, 2 replaced, 3 mutated, 0 evicted), resolves 10/12 (83.3%), evals 40, artifacts 7/256 hits 33/40 (82.5%), invalidated 4, scoped 2 killed / 5 kept, shared 3 cross-doc`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "docs {}/{} ({} inserted, {} replaced, {} mutated, {} evicted), resolves {}/{} ({:.1}%), evals {}, artifacts {}/{} hits {}/{} ({:.1}%), invalidated {}, scoped {} killed / {} kept, shared {} cross-doc",
            self.documents,
            self.capacity,
            self.inserts,
            self.replacements,
            self.mutations,
            self.evictions,
            self.resolve_hits,
            self.resolve_hits + self.resolve_misses,
            self.resolve_hit_rate() * 100.0,
            self.evaluations,
            self.artifact_len,
            self.artifact_capacity,
            self.artifact_hits,
            self.artifact_hits + self.artifact_misses,
            self.artifact_hit_rate() * 100.0,
            self.artifact_invalidations,
            self.artifact_scope_killed,
            self.artifact_scope_preserved,
            self.artifact_cross_doc_hits,
        )
    }
}

/// Per-document snapshot returned by [`crate::Catalog::info`] and
/// [`crate::Catalog::list`]: identity, generation, size, and the entry's
/// own usage counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocInfo {
    /// The name the document is stored under.
    pub name: String,
    /// Its stable id (never reused, survives replacement).
    pub id: crate::DocId,
    /// Generation counter: starts at 1, bumped by every replacement.
    pub generation: u64,
    /// In-place edit revision within the generation: starts at 0, bumped
    /// by every successful [`crate::Catalog::mutate_named`] edit (and by
    /// every lazy materialization wave), reset by replacement.
    pub revision: u64,
    /// Which storage backend currently holds the document.  Mutations
    /// promote lazy- and snapshot-backed entries to
    /// [`BackendKind::Eager`](xpeval_backends::BackendKind).
    pub backend: xpeval_backends::BackendKind,
    /// Total nodes of the prepared document — for a lazy entry, of its
    /// currently resident wave.
    pub node_count: usize,
    /// Evaluations dispatched against this name (carried across
    /// replacements — the counter describes the named slot).
    pub evaluations: u64,
    /// How many of those were answered from a cached artifact.
    pub artifact_hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_a_single_summary_line() {
        let stats = CatalogStats {
            documents: 3,
            capacity: 64,
            inserts: 5,
            replacements: 2,
            resolve_hits: 10,
            resolve_misses: 2,
            evaluations: 40,
            artifact_len: 7,
            artifact_capacity: 256,
            artifact_hits: 33,
            artifact_misses: 7,
            artifact_invalidations: 4,
            ..CatalogStats::default()
        };
        let line = stats.to_string();
        assert!(line.contains("docs 3/64"), "{line}");
        assert!(line.contains("hits 33/40 (82.5%)"), "{line}");
        assert!(line.contains("invalidated 4"), "{line}");
        assert!(line.contains("scoped 0 killed / 0 kept"), "{line}");
        assert!(line.contains("shared 0 cross-doc"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn rates_handle_the_empty_case() {
        let stats = CatalogStats::default();
        assert_eq!(stats.resolve_hit_rate(), 0.0);
        assert_eq!(stats.artifact_hit_rate(), 0.0);
    }
}
