//! E1 — Figure 1: the fragment lattice and its combined complexity.
//!
//! Classifies a corpus of queries drawn from every fragment and prints, for
//! each, the least containing fragment, the paper's complexity
//! classification and the full membership chain — i.e. the machine-checked
//! version of Figure 1.

use xpeval_bench::TextTable;
use xpeval_syntax::{classify, parse_query, Fragment};

fn main() {
    let corpus: Vec<(&str, &str)> = vec![
        ("PF chain", "/descendant::a/child::b/parent::*"),
        ("PF union", "child::a | descendant::b"),
        ("positive Core XPath", "//a[child::b and descendant::c]"),
        (
            "Core XPath (paper §2.2)",
            "/descendant::a/child::b[descendant::c and not(following-sibling::d)]",
        ),
        ("pWF (paper §2.2)", "child::a[position() + 1 = last()]"),
        ("pWF arithmetic", "//a[position() * 2 <= last()]"),
        (
            "WF (negation + arithmetic)",
            "//a[not(position() = last())]",
        ),
        ("WF (iterated predicates)", "//a[child::b][position() = 1]"),
        (
            "pXPath (attributes, strings)",
            "//book[@year = 2003 and contains(title, 'XPath')]",
        ),
        ("XPath (count)", "//a[count(child::b) = 2]"),
        (
            "XPath (boolean relop)",
            "//a[(child::b and child::c) = true()]",
        ),
    ];

    println!("Figure 1 — combined complexity of the XPath fragment lattice\n");
    let mut table = TextTable::new(&[
        "query family",
        "least fragment",
        "combined complexity",
        "parallelizable",
        "memberships",
    ]);
    for (name, src) in corpus {
        let query = parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let report = classify(&query);
        let memberships = report
            .memberships
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(" ⊆ ");
        table.row(&[
            name.to_string(),
            report.fragment.name().to_string(),
            report.complexity.to_string(),
            if report.fragment.is_parallelizable() {
                "yes (NC²)"
            } else {
                "no (unless P ⊆ NC)"
            }
            .to_string(),
            memberships,
        ]);
    }
    table.print();

    println!("Fragment lattice summary (Figure 1):");
    let mut lattice = TextTable::new(&["fragment", "combined complexity"]);
    for fragment in Fragment::ALL {
        lattice.row(&[
            fragment.name().to_string(),
            fragment.complexity().to_string(),
        ]);
    }
    lattice.print();
}
