//! Bench-regression gate: turns the JSON lines emitted by the vendored
//! criterion's `--json` flag into a committed-format `BENCH_results.json`
//! and fails (exit code 1) when any tracked benchmark regressed against
//! `BENCH_baseline.json` by more than the allowed fraction.
//!
//! ```text
//! bench_gate --results <raw.jsonl>... [--out BENCH_results.json]
//!            [--baseline BENCH_baseline.json] [--max-regression 0.25]
//!            [--summary-md <file>] [--update-baseline] [--track-prefix <p>]
//! ```
//!
//! * `--results` (repeatable): JSON-lines files produced by
//!   `cargo bench -- --json <path>`; later entries win on duplicate names.
//! * `--out`: merged results as one flat JSON object `{name: median_ns}`.
//! * `--baseline`: the committed medians; only names present here are
//!   *tracked* (gated).  A tracked bench missing from the results fails
//!   the gate — a silently dropped bench is not a pass.
//! * `--max-regression`: allowed fractional slowdown (default 0.25 = +25%).
//! * `--tolerance <prefix>=<fraction>` (repeatable): overrides the global
//!   budget for benches whose name starts with `prefix` (longest matching
//!   prefix wins).  Lets inherently noisier benches — e.g. the
//!   thread-spawning serving benches — stay tracked without flaking the
//!   gate at the tight default.
//! * `--summary-md`: **append** a GitHub-flavored markdown table of
//!   per-bench before/after deltas to this file — pass
//!   `"$GITHUB_STEP_SUMMARY"` in CI to make the gate's verdict readable
//!   on the run page without downloading artifacts.  Appending (not
//!   truncating) preserves whatever earlier steps wrote.
//! * `--update-baseline`: instead of gating, rewrite the baseline from the
//!   merged results (optionally filtered by `--track-prefix`).
//!
//! The file formats are deliberately trivial — flat string→number maps —
//! so this tool carries its own scanner instead of a JSON dependency (the
//! build container is offline).

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut results_files: Vec<String> = Vec::new();
    let mut out_file: Option<String> = None;
    let mut baseline_file: Option<String> = None;
    let mut max_regression = 0.25f64;
    let mut tolerances: Vec<(String, f64)> = Vec::new();
    let mut update_baseline = false;
    let mut track_prefix: Option<String> = None;
    let mut summary_md: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--results" => results_files.extend(it.next()),
            "--out" => out_file = it.next(),
            "--baseline" => baseline_file = it.next(),
            "--max-regression" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_regression = v,
                None => return usage("--max-regression needs a number"),
            },
            "--tolerance" => {
                let parsed = it.next().and_then(|v| {
                    let (prefix, frac) = v.split_once('=')?;
                    Some((prefix.to_string(), frac.parse::<f64>().ok()?))
                });
                match parsed {
                    Some(t) => tolerances.push(t),
                    None => return usage("--tolerance needs <prefix>=<fraction>"),
                }
            }
            "--update-baseline" => update_baseline = true,
            "--track-prefix" => track_prefix = it.next(),
            "--summary-md" => summary_md = it.next(),
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    if results_files.is_empty() {
        return usage("at least one --results file is required");
    }

    let mut results: BTreeMap<String, f64> = BTreeMap::new();
    for path in &results_files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_gate: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (name, median) in parse_jsonl_results(&text) {
            results.insert(name, median);
        }
    }
    println!("bench_gate: {} benchmark results collected", results.len());

    if let Some(out) = &out_file {
        if let Err(e) = std::fs::write(out, render_map(&results)) {
            eprintln!("bench_gate: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench_gate: wrote {out}");
    }

    let Some(baseline_path) = baseline_file else {
        return ExitCode::SUCCESS;
    };

    if update_baseline {
        let tracked: BTreeMap<String, f64> = results
            .iter()
            .filter(|(name, _)| match &track_prefix {
                Some(p) => name.starts_with(p.as_str()),
                None => true,
            })
            .map(|(n, v)| (n.clone(), *v))
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, render_map(&tracked)) {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "bench_gate: wrote baseline {baseline_path} ({} tracked benches)",
            tracked.len()
        );
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = parse_flat_object(&text);
    if baseline.is_empty() {
        eprintln!("bench_gate: baseline {baseline_path} tracks no benches");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut rows: Vec<SummaryRow> = Vec::new();
    println!(
        "bench_gate: gating {} tracked benches at +{:.0}%",
        baseline.len(),
        max_regression * 100.0
    );
    for (name, base) in &baseline {
        // Longest matching prefix override, else the global budget.
        let budget = tolerances
            .iter()
            .filter(|(prefix, _)| name.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(max_regression, |(_, frac)| *frac);
        match results.get(name) {
            None => {
                failures += 1;
                println!("  FAIL  {name}: tracked bench missing from results");
                rows.push(SummaryRow {
                    name: name.clone(),
                    base: *base,
                    now: None,
                    budget,
                    failed: true,
                });
            }
            Some(&now) => {
                let ratio = now / base;
                let failed = ratio > 1.0 + budget;
                let verdict = if failed {
                    failures += 1;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "  {verdict:<4}  {name}: {now:.0} ns vs baseline {base:.0} ns ({:+.1}%, budget +{:.0}%)",
                    (ratio - 1.0) * 100.0,
                    budget * 100.0
                );
                rows.push(SummaryRow {
                    name: name.clone(),
                    base: *base,
                    now: Some(now),
                    budget,
                    failed,
                });
            }
        }
    }
    if let Some(path) = &summary_md {
        if let Err(e) = append_file(path, &render_summary_md(&rows, max_regression)) {
            eprintln!("bench_gate: cannot append summary to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench_gate: appended markdown summary to {path}");
    }
    if failures > 0 {
        eprintln!("bench_gate: {failures} tracked bench(es) regressed or went missing");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all tracked benches within budget");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("bench_gate: {err}");
    eprintln!(
        "usage: bench_gate --results <raw.jsonl>... [--out <merged.json>] \
         [--baseline <baseline.json>] [--max-regression 0.25] \
         [--tolerance <prefix>=<fraction>]... \
         [--update-baseline] [--track-prefix <p>]"
    );
    ExitCode::FAILURE
}

/// Parses the JSON lines the vendored criterion emits: one object per line
/// with at least `"name"` (string) and `"median_ns"` (number) fields.
/// Malformed lines are skipped — a truncated file should not hide the
/// benches that did report.
fn parse_jsonl_results(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let name = extract_string_field(line, "name")?;
            let median = extract_number_field(line, "median_ns")?;
            Some((name, median))
        })
        .collect()
}

/// Parses a flat JSON object of string keys and numeric values — the
/// committed baseline / merged-results format.  Anything that is not a
/// `"key": number` pair is ignored.
fn parse_flat_object(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some((key, after_key)) = next_string(rest) {
        let after_colon = after_key.trim_start();
        let Some(after_colon) = after_colon.strip_prefix(':') else {
            rest = after_key;
            continue;
        };
        let num_text = after_colon.trim_start();
        let end = num_text
            .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .unwrap_or(num_text.len());
        if let Ok(v) = num_text[..end].parse::<f64>() {
            out.insert(key, v);
        }
        rest = &num_text[end..];
    }
    out
}

/// Finds the next JSON string literal, returning its unescaped contents and
/// the remainder after the closing quote.
fn next_string(text: &str) -> Option<(String, &str)> {
    let start = text.find('"')?;
    let mut value = String::new();
    let mut chars = text[start + 1..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((value, &text[start + 1 + i + 1..])),
            '\\' => match chars.next() {
                Some((_, escaped)) => value.push(escaped),
                None => return None,
            },
            c => value.push(c),
        }
    }
    None
}

fn extract_string_field(line: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":");
    let at = line.find(&key)?;
    next_string(&line[at + key.len()..]).map(|(s, _)| s)
}

fn extract_number_field(line: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = line.find(&key)?;
    let rest = line[at + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One gated bench, as rendered into the markdown summary.
struct SummaryRow {
    name: String,
    base: f64,
    now: Option<f64>,
    budget: f64,
    failed: bool,
}

/// Renders the per-bench before/after table GitHub shows on the run page
/// (`$GITHUB_STEP_SUMMARY`).  Durations are kept in nanoseconds — the
/// unit every other bench artifact of this repo uses — with the delta as
/// a signed percentage so regressions read at a glance.
fn render_summary_md(rows: &[SummaryRow], max_regression: f64) -> String {
    let mut s = String::new();
    s.push_str("## Bench regression gate\n\n");
    let failed = rows.iter().filter(|r| r.failed).count();
    if failed == 0 {
        s.push_str(&format!(
            "All {} tracked benches within budget (default +{:.0}%).\n\n",
            rows.len(),
            max_regression * 100.0
        ));
    } else {
        s.push_str(&format!(
            "**{failed} of {} tracked benches regressed or went missing.**\n\n",
            rows.len()
        ));
    }
    s.push_str("| bench | baseline (ns) | now (ns) | delta | budget | verdict |\n");
    s.push_str("|---|---:|---:|---:|---:|---|\n");
    for r in rows {
        let (now, delta) = match r.now {
            Some(now) => (
                format!("{now:.0}"),
                format!("{:+.1}%", (now / r.base - 1.0) * 100.0),
            ),
            None => ("—".to_string(), "missing".to_string()),
        };
        s.push_str(&format!(
            "| `{}` | {:.0} | {} | {} | +{:.0}% | {} |\n",
            r.name,
            r.base,
            now,
            delta,
            r.budget * 100.0,
            if r.failed { "❌ FAIL" } else { "✅ ok" }
        ));
    }
    s.push('\n');
    s
}

/// Appends to `path`, creating it when absent — `$GITHUB_STEP_SUMMARY` is
/// shared with earlier steps, so truncating would eat their sections.
fn append_file(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(text.as_bytes())
}

/// Renders a flat name→median map as the committed JSON format: one sorted
/// `"name": value` pair per line.
fn render_map(map: &BTreeMap<String, f64>) -> String {
    let mut s = String::from("{\n");
    for (i, (name, v)) in map.iter().enumerate() {
        let sep = if i + 1 == map.len() { "" } else { "," };
        s.push_str(&format!(
            "  \"{}\": {v:.1}{sep}\n",
            name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_through_the_flat_object() {
        let raw = concat!(
            r#"{"name":"g/a","median_ns":120.5,"mean_ns":130.0,"samples":20,"mode":"sample"}"#,
            "\n",
            "not json at all\n",
            r#"{"name":"g/b/7","median_ns":3e3,"mean_ns":1.0,"samples":1,"mode":"test"}"#,
            "\n",
        );
        let parsed = parse_jsonl_results(raw);
        assert_eq!(
            parsed,
            vec![("g/a".to_string(), 120.5), ("g/b/7".to_string(), 3000.0)]
        );
        let map: BTreeMap<String, f64> = parsed.into_iter().collect();
        let rendered = render_map(&map);
        assert_eq!(parse_flat_object(&rendered), map);
    }

    #[test]
    fn flat_object_parser_accepts_whitespace_and_ignores_junk() {
        let text = "{\n  \"x\": 1.5,\n  \"y\" : 2e2\n}\n";
        let map = parse_flat_object(text);
        assert_eq!(map.get("x"), Some(&1.5));
        assert_eq!(map.get("y"), Some(&200.0));
        assert_eq!(map.len(), 2);
        assert!(parse_flat_object("").is_empty());
    }

    #[test]
    fn summary_markdown_reports_deltas_and_failures() {
        let rows = vec![
            SummaryRow {
                name: "g/fast".into(),
                base: 1000.0,
                now: Some(900.0),
                budget: 0.25,
                failed: false,
            },
            SummaryRow {
                name: "g/slow".into(),
                base: 1000.0,
                now: Some(1500.0),
                budget: 0.25,
                failed: true,
            },
            SummaryRow {
                name: "g/gone".into(),
                base: 1000.0,
                now: None,
                budget: 0.6,
                failed: true,
            },
        ];
        let md = render_summary_md(&rows, 0.25);
        assert!(md.contains("**2 of 3 tracked benches regressed or went missing.**"));
        assert!(md.contains("| `g/fast` | 1000 | 900 | -10.0% | +25% | ✅ ok |"));
        assert!(md.contains("| `g/slow` | 1000 | 1500 | +50.0% | +25% | ❌ FAIL |"));
        assert!(md.contains("| `g/gone` | 1000 | — | missing | +60% | ❌ FAIL |"));

        let clean = render_summary_md(&rows[..1], 0.25);
        assert!(clean.contains("All 1 tracked benches within budget"));
    }

    #[test]
    fn summary_file_is_appended_not_truncated() {
        let path = std::env::temp_dir().join(format!("bench_gate_summary_{}", std::process::id()));
        let path = path.to_str().unwrap();
        std::fs::write(path, "earlier step\n").unwrap();
        append_file(path, "gate section\n").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(text, "earlier step\ngate section\n");
    }

    #[test]
    fn escaped_names_survive() {
        let mut map = BTreeMap::new();
        map.insert("we\"ird".to_string(), 7.0);
        let rendered = render_map(&map);
        assert_eq!(parse_flat_object(&rendered), map);
    }
}
