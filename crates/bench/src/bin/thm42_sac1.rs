//! E4 — Theorem 4.2: SAC¹ circuit value via positive Core XPath.
//!
//! Generates random semi-unbounded circuits, runs the negation-free
//! reduction and reports agreement with direct circuit evaluation together
//! with the query growth (which is exponential in the ∧-depth, hence
//! polynomial for the logarithmic-depth SAC¹ circuits the theorem targets).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::TextTable;
use xpeval_circuits::random_sac1_circuit;
use xpeval_core::CompiledQuery;
use xpeval_reductions::sac1_to_positive_core;
use xpeval_syntax::classify;

fn main() {
    println!("E4 — Theorem 4.2: SAC¹ circuit value via positive Core XPath\n");
    let mut rng = StdRng::seed_from_u64(42);
    let mut table = TextTable::new(&[
        "circuit (inputs+gates)",
        "depth",
        "circuit value",
        "query non-empty",
        "fragment",
        "|Q|",
        "|D|",
        "agreement",
    ]);
    let mut all_agree = true;
    for gates in [4usize, 6, 8, 10, 12] {
        for _ in 0..3 {
            let (sac, inputs) = random_sac1_circuit(&mut rng, 4, gates);
            let expected = sac.evaluate(&inputs).unwrap();
            let red = sac1_to_positive_core(&sac, &inputs).unwrap();
            let result = CompiledQuery::from_expr(red.query.clone())
                .run(&red.document)
                .unwrap()
                .value
                .expect_nodes()
                .to_vec();
            let got = !result.is_empty();
            all_agree &= got == expected;
            table.row(&[
                format!("4+{gates}"),
                sac.depth().to_string(),
                expected.to_string(),
                got.to_string(),
                classify(&red.query).fragment.name().to_string(),
                red.query.size().to_string(),
                red.document.len().to_string(),
                if got == expected { "ok" } else { "MISMATCH" }.to_string(),
            ]);
        }
    }
    table.print();
    println!("all instances agree: {all_agree}");
    println!(
        "\nNote the |Q| column: the query doubles per ∧-layer (the paper's reason for requiring\n\
         logarithmic depth, i.e. SAC¹, rather than arbitrary monotone circuits)."
    );
}
