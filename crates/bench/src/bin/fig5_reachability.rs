//! E5 — Figure 5 / Theorem 4.3: directed graph reachability via PF queries.
//!
//! Random digraphs of growing size: for every (source, target) pair the PF
//! query of the reduction is evaluated and compared with BFS; the table
//! reports the instance sizes and agreement counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::{micros, timed, TextTable};
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_reductions::reachability_to_pf;
use xpeval_syntax::classify;
use xpeval_workloads::random_digraph;

fn main() {
    println!("E5 — Theorem 4.3 / Figure 5: reachability via condition-free path queries (PF)\n");
    let mut rng = StdRng::seed_from_u64(5);
    let mut table = TextTable::new(&[
        "|V|",
        "|E|",
        "document nodes",
        "query steps",
        "fragment",
        "pairs checked",
        "agreement with BFS",
        "avg eval time (us)",
    ]);

    for n in [3usize, 5, 8, 12] {
        let graph = random_digraph(&mut rng, n, 0.25);
        let mut agree = 0usize;
        let mut total = 0usize;
        let mut total_time = std::time::Duration::ZERO;
        let mut doc_nodes = 0usize;
        let mut query_steps = 0usize;
        let mut fragment = String::new();
        for s in 1..=n {
            for t in 1..=n {
                let red = reachability_to_pf(&graph, s, t);
                doc_nodes = red.document.len();
                if let xpeval_syntax::Expr::Path(p) = &red.query {
                    query_steps = p.steps.len();
                }
                fragment = classify(&red.query).fragment.name().to_string();
                let compiled = CompiledQuery::from_expr(red.query.clone());
                assert_eq!(compiled.strategy(), EvalStrategy::CoreXPathLinear);
                let (out, time) = timed(|| compiled.run(&red.document).unwrap());
                let result = out.value.expect_nodes().to_vec();
                total_time += time;
                total += 1;
                if result.is_empty() != graph.reachable(s, t) {
                    agree += 1;
                }
            }
        }
        table.row(&[
            n.to_string(),
            graph.num_edges().to_string(),
            doc_nodes.to_string(),
            query_steps.to_string(),
            fragment,
            total.to_string(),
            format!("{agree}/{total}"),
            micros(total_time / total as u32),
        ]);
    }
    table.print();
    println!(
        "Expected shape: full agreement, document O(|V|^2), query O(|V|^2) steps (an L-reduction)."
    );
}
