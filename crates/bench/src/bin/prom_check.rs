//! Validates Prometheus text-exposition files with the workspace's own
//! minimal parser — the CI scrape check for telemetry exporters.
//!
//! ```bash
//! prom_check target/serve-stats.prom target/observability.prom
//! ```
//!
//! Each argument is a file path (or `-` for stdin).  A file passes when it
//! parses cleanly — `# TYPE` declarations present, sample syntax valid,
//! histogram series complete with non-decreasing cumulative buckets — and
//! contains at least one sample.  Exits non-zero on the first violation,
//! printing the parser's line-numbered message.

use std::io::Read;
use std::process::ExitCode;
use xpeval_obs::parse_prometheus;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: prom_check <file.prom|-> [more files...]");
        return ExitCode::FAILURE;
    }
    for arg in &args {
        let text = if arg == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("prom_check: stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(arg) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("prom_check: {arg}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        match parse_prometheus(&text) {
            Ok(parsed) if parsed.samples.is_empty() => {
                eprintln!("prom_check: {arg}: exposition is empty");
                return ExitCode::FAILURE;
            }
            Ok(parsed) => {
                println!(
                    "prom_check: {arg}: ok ({} families, {} samples)",
                    parsed.families.len(),
                    parsed.samples.len()
                );
            }
            Err(message) => {
                eprintln!("prom_check: {arg}: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
