//! E10 — Theorems 7.1/7.2: data complexity.
//!
//! Holds a handful of queries fixed and grows the document, printing the
//! wall-clock time and the per-node work of the evaluators.  The curves must
//! be low-degree polynomial in |D| (the paper places the problem in L for a
//! fixed query; Theorem 7.1 gives L-hardness already for PF via tree
//! reachability, which is the first query of the sweep).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::{micros, timed, TextTable};
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_syntax::parse_query;
use xpeval_workloads::{chain_document, random_tree_document};

fn main() {
    println!("E10 — data complexity: fixed queries, growing documents\n");

    // Theorem 7.1's query: tree reachability /descendant-or-self::v1/descendant::v2
    // — on our chain documents the tags are a/leaf.
    let queries = [
        (
            "tree reachability (Thm 7.1)",
            "/descendant-or-self::a/descendant::leaf",
        ),
        (
            "Core XPath with negation",
            "//a[descendant::c and not(child::b)]",
        ),
        ("pWF positional", "//b[position() = last()]/parent::*"),
    ];

    let mut table = TextTable::new(&[
        "query",
        "|D| (nodes)",
        "cvt time (us)",
        "cvt table entries",
        "linear evaluator time (us)",
    ]);

    for (name, src) in queries {
        let query = parse_query(src).unwrap();
        // Compile once per query; the document sweep reuses the plan.
        let dp =
            CompiledQuery::from_expr(query.clone()).with_strategy(EvalStrategy::ContextValueTable);
        let linear = dp.clone().with_strategy(EvalStrategy::CoreXPathLinear);
        for size in [200usize, 800, 3200, 12800] {
            let doc = if name.contains("reachability") {
                chain_document(size)
            } else {
                random_tree_document(&mut StdRng::seed_from_u64(9), size, &["a", "b", "c", "d"])
            };
            let (dp_out, dp_time) = timed(|| dp.run(&doc).unwrap());
            let linear_time = if dp.fragment() <= xpeval_syntax::Fragment::CoreXPath {
                let (_, t) = timed(|| linear.run(&doc).unwrap());
                micros(t)
            } else {
                "-".to_string()
            };
            table.row(&[
                name.to_string(),
                doc.len().to_string(),
                micros(dp_time),
                dp_out.stats.table_entries.to_string(),
                linear_time,
            ]);
        }
    }
    table.print();
    println!("Expected shape: time grows low-degree polynomially (roughly linearly) in |D| for every fixed query.");
}
