//! E8 — Theorem 5.7 / Corollary 5.8: iterated predicates restore P-hardness.
//!
//! Runs the negation-free iterated-predicate encoding of the circuit value
//! problem next to the Theorem 3.2 encoding and reports agreement, together
//! with the syntactic profile of the generated queries (no `not()`,
//! predicate sequences of length exactly 2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::TextTable;
use xpeval_circuits::{carry_bit_circuit, carry_bit_inputs, random_monotone_circuit};
use xpeval_core::{CompileOptions, CompiledQuery, EvalStrategy};
use xpeval_reductions::{circuit_to_core_xpath, circuit_to_iterated_pwf};
use xpeval_syntax::fragment::features;

/// Evaluates a reduction query with the DP plan, *without* the Remark 5.2
/// normalization: merging iterated predicates is exactly what this
/// experiment must not do up front.
fn dp_selects_nonempty(doc: &xpeval_dom::Document, query: &xpeval_syntax::Expr) -> bool {
    let plan = CompiledQuery::from_expr_with(
        query.clone(),
        &CompileOptions {
            strategy: Some(EvalStrategy::ContextValueTable),
            normalize: false,
            ..CompileOptions::default()
        },
    );
    !plan.run(doc).unwrap().value.expect_nodes().is_empty()
}

fn main() {
    println!("E8 — Theorem 5.7: encoding negation with iterated predicates and last()\n");

    // Carry-bit circuit: all 16 assignments.
    let circuit = carry_bit_circuit();
    let mut table = TextTable::new(&[
        "a",
        "b",
        "carry",
        "Thm 3.2 query (with not)",
        "Thm 5.7 query (iterated predicates)",
        "agreement",
    ]);
    let mut all_ok = true;
    for a in 0..4u8 {
        for b in 0..4u8 {
            let inputs = carry_bit_inputs(a, b);
            let expected = circuit.evaluate(&inputs).unwrap();
            let core = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
            let iter = circuit_to_iterated_pwf(&circuit, &inputs).unwrap();
            let core_ans = dp_selects_nonempty(&core.document, &core.query);
            let iter_ans = dp_selects_nonempty(&iter.document, &iter.query);
            let ok = core_ans == expected && iter_ans == expected;
            all_ok &= ok;
            table.row(&[
                a.to_string(),
                b.to_string(),
                expected.to_string(),
                core_ans.to_string(),
                iter_ans.to_string(),
                if ok { "ok" } else { "MISMATCH" }.to_string(),
            ]);
        }
    }
    table.print();
    println!("all assignments agree: {all_ok}\n");

    // Query profile + random circuits.
    let sample = circuit_to_iterated_pwf(&circuit, &carry_bit_inputs(1, 2)).unwrap();
    let f = features(&sample.query);
    println!(
        "generated Thm 5.7 query profile: negations = {}, max predicate sequence = {} (Corollary 5.8: 2 suffices), size |Q| = {}",
        f.negation_count, f.max_predicate_sequence, f.size
    );

    let mut rng = StdRng::seed_from_u64(31);
    let mut agree = 0;
    let rounds = 20;
    for _ in 0..rounds {
        let (c, inputs) = random_monotone_circuit(&mut rng, 4, 7);
        let expected = c.evaluate(&inputs).unwrap();
        let red = circuit_to_iterated_pwf(&c, &inputs).unwrap();
        let ans = dp_selects_nonempty(&red.document, &red.query);
        if ans == expected {
            agree += 1;
        }
    }
    println!("random monotone circuits: {agree}/{rounds} agree with direct evaluation");
}
