//! E3 — Figures 2–4 / Theorem 3.2: the carry-bit circuit, its layered
//! serialization and its Core XPath encoding.
//!
//! Prints the full truth table of the Figure 2 circuit together with the
//! result of evaluating the Theorem 3.2 query on the generated gate
//! document, plus the Figure 3 layer structure.

use xpeval_bench::TextTable;
use xpeval_circuits::{carry_bit_circuit, carry_bit_inputs, GateKind, Layering};
use xpeval_core::CompiledQuery;
use xpeval_reductions::circuit_to_core_xpath;
use xpeval_syntax::classify;

fn main() {
    let circuit = carry_bit_circuit();
    println!(
        "Figure 2 — 2-bit full adder carry-bit circuit: M = {} inputs, N = {} gates\n",
        circuit.num_inputs(),
        circuit.num_internal()
    );

    // Figure 3: the layered serialization.
    let layering = Layering::new(&circuit);
    let mut layers = TextTable::new(&["layer", "real gate", "type", "inputs (I_k)", "dummy gates"]);
    for layer in layering.layers() {
        layers.row(&[
            format!("L{}", layer.k),
            layer.real_gate.paper_name(),
            match layer.kind {
                GateKind::And => "∧",
                GateKind::Or => "∨",
                GateKind::Input => "input",
            }
            .to_string(),
            layer
                .inputs
                .iter()
                .map(|g| g.paper_name())
                .collect::<Vec<_>>()
                .join(", "),
            layer.dummies.len().to_string(),
        ]);
    }
    println!("Figure 3 — serialized layers:");
    layers.print();

    // Theorem 3.2 on every input assignment.
    let mut table = TextTable::new(&[
        "a1 a0",
        "b1 b0",
        "carry (circuit)",
        "query result non-empty",
        "agreement",
    ]);
    let mut all_agree = true;
    for a in 0..4u8 {
        for b in 0..4u8 {
            let inputs = carry_bit_inputs(a, b);
            let expected = circuit.evaluate(&inputs).unwrap();
            let red = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
            let result = CompiledQuery::from_expr(red.query.clone())
                .run(&red.document)
                .unwrap()
                .value
                .expect_nodes()
                .to_vec();
            let got = !result.is_empty();
            all_agree &= got == expected;
            table.row(&[
                format!("{:02b}", a),
                format!("{:02b}", b),
                expected.to_string(),
                got.to_string(),
                if got == expected { "ok" } else { "MISMATCH" }.to_string(),
            ]);
        }
    }
    println!("Theorem 3.2 — circuit value via Core XPath (all 16 assignments):");
    table.print();
    println!("all assignments agree: {all_agree}");

    // The generated query itself, for the record.
    let red = circuit_to_core_xpath(&circuit, &carry_bit_inputs(2, 3), false).unwrap();
    println!(
        "\ngenerated query fragment: {}",
        classify(&red.query).fragment
    );
    println!(
        "query size |Q| = {} AST nodes, document size |D| = {} nodes, tree height = {}",
        red.query.size(),
        red.document.len(),
        red.document.height()
    );
    println!("\nquery text:\n{}", red.query);
}
