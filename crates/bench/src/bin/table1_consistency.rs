//! E6 — Table 1 / Lemma 5.4: the Singleton-Success decision procedure.
//!
//! For each construct of Table 1 (location steps, `/π`, `π1/π2`, `π1|π2`,
//! `χ::t[e]`, `boolean(π)`, `and`, `or`, RelOp, ArithOp, `position()`,
//! `last()`, constants) the binary runs one representative pWF query with
//! the Singleton-Success checker and cross-validates the answer against the
//! context-value-table evaluator for *every* document node, i.e. it checks
//! the local consistency rules end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::TextTable;
use xpeval_core::{CompiledQuery, Context, EvalStrategy, SingletonSuccess, SuccessTarget, Value};
use xpeval_syntax::parse_query;
use xpeval_workloads::auction_site_document;

fn main() {
    println!("E6 — Table 1: local consistency checks of the Singleton-Success NAuxPDA\n");
    let doc = auction_site_document(&mut StdRng::seed_from_u64(12), 24);
    let ctx = Context::root(&doc);

    // One representative query per Table 1 row (or family of rows).
    let rows: Vec<(&str, &str)> = vec![
        ("χ::t (leaf step)", "//item"),
        ("/π (absolute path)", "/site/people/person"),
        ("π1/π2 (composition)", "//item/name"),
        ("π1 | π2 (union)", "//item/name | //person/name"),
        (
            "χ::t[e] (predicate, position/size)",
            "//item[position() = last()]",
        ),
        ("boolean(π)", "boolean(//bid)"),
        ("e1 and e2", "//item[child::bid and child::seller]"),
        ("e1 or e2", "//item[position() = 1 or position() = last()]"),
        ("e1 RelOp e2 (numbers)", "//item[position() + 1 = last()]"),
        ("e1 ArithOp e2", "//bid[@increase * 2 >= 6]"),
        ("position()", "//person[position() <= 3]"),
        ("last()", "//person[last()]"),
        ("number constant", "//item[2]"),
    ];

    let mut table = TextTable::new(&[
        "Table 1 construct",
        "query",
        "result type",
        "|result|",
        "agreement with CVT evaluator",
    ]);
    let mut all_ok = true;
    for (construct, src) in rows {
        let query = parse_query(src).unwrap();
        let reference = CompiledQuery::from_expr(query.clone())
            .with_strategy(EvalStrategy::ContextValueTable)
            .run(&doc)
            .unwrap()
            .value;
        let checker = SingletonSuccess::new(&doc, &query).unwrap();
        let (kind, size, ok) = match &reference {
            Value::NodeSet(expected) => {
                // Per-node agreement of decide() plus the Theorem 5.5 loop.
                let mut ok = checker.node_set(ctx).unwrap() == *expected;
                for v in doc.all_nodes() {
                    let member = expected.contains(&v);
                    ok &= checker.decide(ctx, &SuccessTarget::Node(v)).unwrap() == member;
                }
                ("node-set", expected.len(), ok)
            }
            Value::Boolean(b) => {
                let ok = checker.decide(ctx, &SuccessTarget::True).unwrap() == *b;
                ("boolean", 1, ok)
            }
            Value::Number(n) => {
                let ok = checker.decide(ctx, &SuccessTarget::Number(*n)).unwrap();
                ("number", 1, ok)
            }
            Value::Str(s) => {
                let ok = checker.decide(ctx, &SuccessTarget::Str(s.clone())).unwrap();
                ("string", 1, ok)
            }
        };
        all_ok &= ok;
        table.row(&[
            construct.to_string(),
            src.to_string(),
            kind.to_string(),
            size.to_string(),
            if ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    table.print();
    println!("all Table 1 constructs verified: {all_ok}");
}
