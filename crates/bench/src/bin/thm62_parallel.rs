//! E7 — Theorems 5.5/6.2, Remark 5.6: parallel evaluation of pWF/pXPath.
//!
//! Sweeps the worker-thread count for the data-parallel Singleton-Success
//! evaluator on pWF/pXPath queries over an auction document and prints the
//! measured speed-up relative to one thread; also shows that a P-hard
//! (Core XPath with negation) query is rejected by the parallel evaluator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::{micros, timed, TextTable};
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_syntax::parse_query;
use xpeval_workloads::auction_site_document;

fn main() {
    println!("E7 — parallel evaluation of the LOGCFL fragments (pWF/pXPath)\n");
    // Sized so the full thread sweep (3 queries × 4 thread counts × 4 runs
    // of an O(|D|²)-ish decision loop) finishes in seconds.
    let doc = auction_site_document(&mut StdRng::seed_from_u64(21), 40);
    println!("document: {} nodes\n", doc.len());

    let queries = [
        ("pWF positional", "//item[position() + 1 = last()]"),
        ("pXPath attribute filter", "//item[bid/@increase > 6]/name"),
        (
            "pXPath string filter",
            "//person[starts-with(@id, 'person1')]/name",
        ),
    ];

    let mut table = TextTable::new(&[
        "query",
        "threads",
        "time (us)",
        "speed-up vs 1 thread",
        "|result|",
    ]);
    for (name, src) in queries {
        let compiled = CompiledQuery::from_expr(parse_query(src).unwrap());
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let plan = compiled
                .clone()
                .with_strategy(EvalStrategy::Parallel { threads });
            // Warm up once, then measure the median of three runs.
            let _ = plan.run(&doc).unwrap();
            let mut times = Vec::new();
            let mut result_len = 0;
            for _ in 0..3 {
                let (out, t) = timed(|| plan.run(&doc).unwrap());
                result_len = out.value.expect_nodes().len();
                times.push(t);
            }
            times.sort();
            let t = times[1];
            let speedup = match base {
                None => {
                    base = Some(t);
                    1.0
                }
                Some(b) => b.as_secs_f64() / t.as_secs_f64(),
            };
            table.row(&[
                name.to_string(),
                threads.to_string(),
                micros(t),
                format!("{speedup:.2}x"),
                result_len.to_string(),
            ]);
        }
        let dp = compiled
            .clone()
            .with_strategy(EvalStrategy::ContextValueTable);
        let (_, dp_time) = timed(|| dp.run(&doc).unwrap());
        table.row(&[
            name.to_string(),
            "CVT (sequential reference)".to_string(),
            micros(dp_time),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table.print();

    let hard = CompiledQuery::compile_with(
        "//item[not(child::bid)][1]",
        &xpeval_core::CompileOptions {
            normalize: false,
            ..xpeval_core::CompileOptions::default()
        },
    )
    .unwrap();
    let rejected = hard
        .with_strategy(EvalStrategy::Parallel { threads: 4 })
        .run(&doc)
        .is_err();
    println!(
        "query outside pWF/pXPath ('//item[not(child::bid)][1]', iterated predicates) rejected by \
         the parallel evaluator: {rejected}"
    );
}
