//! E7 — Theorems 5.5/6.2, Remark 5.6: parallel evaluation of pWF/pXPath.
//!
//! Sweeps the worker-thread count for the data-parallel Singleton-Success
//! evaluator on pWF/pXPath queries over an auction document and prints the
//! measured speed-up relative to one thread; also shows that a P-hard
//! (Core XPath with negation) query is rejected by the parallel evaluator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::{micros, timed, TextTable};
use xpeval_core::{DpEvaluator, ParallelEvaluator};
use xpeval_syntax::parse_query;
use xpeval_workloads::auction_site_document;

fn main() {
    println!("E7 — parallel evaluation of the LOGCFL fragments (pWF/pXPath)\n");
    let doc = auction_site_document(&mut StdRng::seed_from_u64(21), 150);
    println!("document: {} nodes\n", doc.len());

    let queries = [
        ("pWF positional", "//item[position() + 1 = last()]"),
        ("pXPath attribute filter", "//item[bid/@increase > 6]/name"),
        ("pXPath string filter", "//person[starts-with(@id, 'person1')]/name"),
    ];

    let mut table = TextTable::new(&["query", "threads", "time (us)", "speed-up vs 1 thread", "|result|"]);
    for (name, src) in queries {
        let query = parse_query(src).unwrap();
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let ev = ParallelEvaluator::new(&doc, threads);
            // Warm up once, then measure the median of three runs.
            let _ = ev.evaluate(&query).unwrap();
            let mut times = Vec::new();
            let mut result_len = 0;
            for _ in 0..3 {
                let (v, t) = timed(|| ev.evaluate(&query).unwrap());
                result_len = v.expect_nodes().len();
                times.push(t);
            }
            times.sort();
            let t = times[1];
            let speedup = match base {
                None => {
                    base = Some(t);
                    1.0
                }
                Some(b) => b.as_secs_f64() / t.as_secs_f64(),
            };
            table.row(&[
                name.to_string(),
                threads.to_string(),
                micros(t),
                format!("{speedup:.2}x"),
                result_len.to_string(),
            ]);
        }
        let (_, dp_time) = timed(|| DpEvaluator::new(&doc, &query).evaluate().unwrap());
        table.row(&[
            name.to_string(),
            "CVT (sequential reference)".to_string(),
            micros(dp_time),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table.print();

    let hard = parse_query("//item[not(child::bid)][1]").unwrap();
    let rejected = ParallelEvaluator::new(&doc, 4).evaluate(&hard).is_err();
    println!(
        "query outside pWF/pXPath ('//item[not(child::bid)][1]', iterated predicates) rejected by \
         the parallel evaluator: {rejected}"
    );
}
