//! E2 — Section 1 motivation: naive engines are exponential in |Q|, the
//! context-value-table algorithm is polynomial.
//!
//! Prints, for the query family `//a/b/parent::a/b/…`, the work counters and
//! wall-clock times of the naive evaluator and of the DP evaluator.  The
//! naive column grows geometrically (base = the document fan-out), the DP
//! column linearly.

use std::time::Duration;
use xpeval_bench::{micros, timed, TextTable};
use xpeval_core::{CompiledQuery, EvalStrategy, NaiveEvaluator};
use xpeval_workloads::{blowup_document, blowup_query};

fn main() {
    let fan_out = 3usize;
    let doc = blowup_document(fan_out);
    println!(
        "E2 — exponential naive evaluation vs polynomial context-value tables (fan-out k = {fan_out})\n"
    );

    let mut table = TextTable::new(&[
        "repetitions",
        "|Q| (steps)",
        "naive step-contexts",
        "naive max list",
        "naive time (us)",
        "cvt step-contexts",
        "cvt table entries",
        "cvt time (us)",
    ]);

    for reps in 1..=10usize {
        let query = blowup_query(reps);
        let steps = match &query {
            xpeval_syntax::Expr::Path(p) => p.steps.len(),
            _ => 0,
        };

        let mut naive = NaiveEvaluator::with_list_limit(&doc, 2_000_000);
        let (naive_result, naive_time) = timed(|| naive.evaluate(&query));
        let (naive_steps, naive_list, naive_time) = match naive_result {
            Ok(_) => (
                naive.stats().step_context_evaluations.to_string(),
                naive.stats().max_intermediate_list.to_string(),
                micros(naive_time),
            ),
            Err(_) => ("aborted".to_string(), "> 2e6".to_string(), "-".to_string()),
        };

        let cvt =
            CompiledQuery::from_expr(query.clone()).with_strategy(EvalStrategy::ContextValueTable);
        let (dp_out, dp_time) = timed(|| cvt.run(&doc).unwrap());

        table.row(&[
            reps.to_string(),
            steps.to_string(),
            naive_steps,
            naive_list,
            naive_time,
            dp_out.stats.step_context_evaluations.to_string(),
            dp_out.stats.table_entries.to_string(),
            micros(dp_time),
        ]);
    }
    table.print();

    println!(
        "Expected shape: the naive columns multiply by ~{fan_out} per repetition (k^m), the \
         context-value-table columns grow by a constant per repetition (O(|D|·|Q|))."
    );
    let _ = Duration::ZERO;
}
