//! E11 — Theorem 7.3: query complexity.
//!
//! Holds the document fixed and grows the query (PF chains and Core XPath
//! conditions, without multiplication or concat), printing evaluation time
//! and context-value-table sizes; the growth must be polynomial (roughly
//! linear) in |Q|.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_bench::{micros, timed, TextTable};
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_workloads::{oscillating_query, random_tree_document, star_chain_query};

fn main() {
    println!("E11 — query complexity: fixed document, growing queries (no * / concat)\n");
    let doc = random_tree_document(&mut StdRng::seed_from_u64(17), 600, &["a", "b", "c", "d"]);
    println!("document: {} nodes\n", doc.len());

    let mut table = TextTable::new(&[
        "query family",
        "|Q| (steps)",
        "cvt time (us)",
        "cvt table entries",
        "linear evaluator time (us)",
    ]);

    for len in [4usize, 16, 64, 256, 1024] {
        let query = oscillating_query(len);
        let compiled = CompiledQuery::from_expr(query.clone());
        let dp = compiled
            .clone()
            .with_strategy(EvalStrategy::ContextValueTable);
        let linear = compiled.with_strategy(EvalStrategy::CoreXPathLinear);
        let (dp_out, dp_time) = timed(|| dp.run(&doc).unwrap());
        let (_, lin_time) = timed(|| linear.run(&doc).unwrap());
        table.row(&[
            "oscillating PF chain".to_string(),
            len.to_string(),
            micros(dp_time),
            dp_out.stats.table_entries.to_string(),
            micros(lin_time),
        ]);
    }

    for len in [4usize, 16, 64, 256] {
        let query = star_chain_query(len, &["a", "b", "c"]);
        let compiled = CompiledQuery::from_expr(query.clone());
        let dp = compiled
            .clone()
            .with_strategy(EvalStrategy::ContextValueTable);
        let linear = compiled.with_strategy(EvalStrategy::CoreXPathLinear);
        let (dp_out, dp_time) = timed(|| dp.run(&doc).unwrap());
        let (_, lin_time) = timed(|| linear.run(&doc).unwrap());
        table.row(&[
            "descendant/child PF chain".to_string(),
            len.to_string(),
            micros(dp_time),
            dp_out.stats.table_entries.to_string(),
            micros(lin_time),
        ]);
    }

    // Core XPath queries of growing condition size: nested single-branch
    // conditions of increasing depth.
    for depth in [2usize, 8, 32, 128] {
        let mut src = String::from("//a");
        src.push_str(&"[child::b[descendant::c".repeat(depth));
        src.push_str(&"]]".repeat(depth));
        let query = xpeval_syntax::parse_query(&src).unwrap();
        let compiled = CompiledQuery::from_expr(query.clone());
        let dp = compiled
            .clone()
            .with_strategy(EvalStrategy::ContextValueTable);
        let linear = compiled.with_strategy(EvalStrategy::CoreXPathLinear);
        let (dp_out, dp_time) = timed(|| dp.run(&doc).unwrap());
        let (_, lin_time) = timed(|| linear.run(&doc).unwrap());
        table.row(&[
            "nested Core XPath conditions".to_string(),
            query.size().to_string(),
            micros(dp_time),
            dp_out.stats.table_entries.to_string(),
            micros(lin_time),
        ]);
    }
    table.print();
    println!(
        "Expected shape: time grows polynomially (roughly linearly) in |Q| for the fixed document."
    );
}
