//! # xpeval-bench — benchmark and experiment harness
//!
//! Regenerates every figure and table of the paper's results, in two forms:
//!
//! * **Criterion benches** (`benches/`) measure wall-clock scaling: combined
//!   complexity (naive vs DP), linear Core XPath evaluation, the circuit and
//!   reachability reductions, parallel speed-up, data complexity and query
//!   complexity, and Singleton-Success checking.
//! * **Experiment binaries** (`src/bin/`) print the qualitative reproductions
//!   (fragment lattice of Figure 1, the carry-bit walk-through of Figures
//!   2–4, the Table 1 construct coverage, …) as plain-text tables that feed
//!   EXPERIMENTS.md.
//!
//! This library crate holds the small amount of shared infrastructure: a
//! plain-text table printer and deterministic workload set-ups reused by
//! both forms.

use std::time::{Duration, Instant};

/// A plain-text table printer used by the experiment binaries so their
/// output can be pasted into EXPERIMENTS.md directly.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table in GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Runs a closure and returns its result together with the elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in microseconds with three decimals (stable width for
/// the text tables).
pub fn micros(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = TextTable::new(&["n", "value"]);
        t.row(&["1".to_string(), "10".to_string()]);
        t.row(&["200".to_string(), "x".to_string()]);
        let r = t.render();
        assert!(r.starts_with("| n   | value |"));
        assert!(r.contains("| 200 | x     |"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".to_string()]);
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, d) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0);
        assert!(micros(Duration::from_micros(1500)).starts_with("1500"));
    }
}
