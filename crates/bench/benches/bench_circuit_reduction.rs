//! E3 — Theorem 3.2: circuit value via Core XPath.
//!
//! Measures (a) the logspace reduction itself, (b) compiling the produced
//! Core XPath query and (c) evaluating the compiled plan, for monotone
//! circuits of growing size.  All must scale polynomially; the reduction
//! output grows linearly with the circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xpeval_circuits::random_monotone_circuit;
use xpeval_core::CompiledQuery;
use xpeval_reductions::circuit_to_core_xpath;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_reduction_thm32");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for gates in [8usize, 16, 32, 64] {
        let (circuit, inputs) = random_monotone_circuit(&mut StdRng::seed_from_u64(1), 6, gates);
        group.bench_with_input(
            BenchmarkId::new("build_reduction", gates),
            &gates,
            |b, _| b.iter(|| circuit_to_core_xpath(&circuit, &inputs, false).unwrap()),
        );
        let reduction = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
        group.bench_with_input(BenchmarkId::new("compile_query", gates), &gates, |b, _| {
            b.iter(|| CompiledQuery::from_expr(reduction.query.clone()))
        });
        let compiled = CompiledQuery::from_expr(reduction.query.clone());
        group.bench_with_input(BenchmarkId::new("evaluate_query", gates), &gates, |b, _| {
            b.iter(|| compiled.run(&reduction.document).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("evaluate_circuit_directly", gates),
            &gates,
            |b, _| b.iter(|| circuit.evaluate(&inputs).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
