//! E12 — Core XPath in O(|D|·|Q|) (Proposition 2.7).
//!
//! Two sweeps driven through compiled queries: document size at a fixed
//! query, and query length at a fixed document.  Both curves should be
//! (close to) linear for the set-at-a-time plan; the DP plan gives the
//! comparison baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_workloads::{star_chain_query, wide_document};

fn bench_document_sweep(c: &mut Criterion) {
    // Compiled once for the whole sweep: the plan is document-independent.
    let compiled = CompiledQuery::compile("//a[child::b and not(child::d)]").unwrap();
    assert_eq!(compiled.strategy(), EvalStrategy::CoreXPathLinear);
    let dp = compiled
        .clone()
        .with_strategy(EvalStrategy::ContextValueTable);

    let mut group = c.benchmark_group("core_linear_document_sweep");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for width in [50usize, 200, 800, 3200] {
        let doc = wide_document(width, 4);
        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("set_at_a_time", doc.len()),
            &doc,
            |b, doc| b.iter(|| compiled.run(doc).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("context_value_table", doc.len()),
            &doc,
            |b, doc| b.iter(|| dp.run(doc).unwrap()),
        );
    }
    group.finish();
}

fn bench_query_sweep(c: &mut Criterion) {
    let doc = wide_document(300, 4);
    let mut group = c.benchmark_group("core_linear_query_sweep");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for len in [2usize, 8, 32, 128] {
        let query = star_chain_query(len, &["a", "b", "c", "d"]);
        // Compile time (classification is linear in |Q|) reported apart
        // from evaluation time.
        group.bench_with_input(BenchmarkId::new("compile", len), &len, |b, _| {
            b.iter(|| CompiledQuery::from_expr(query.clone()))
        });
        let compiled = CompiledQuery::from_expr(query.clone());
        group.bench_with_input(BenchmarkId::new("set_at_a_time", len), &len, |b, _| {
            b.iter(|| compiled.run(&doc).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_document_sweep, bench_query_sweep);
criterion_main!(benches);
