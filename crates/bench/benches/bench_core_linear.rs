//! E12 — Core XPath in O(|D|·|Q|) (Proposition 2.7).
//!
//! Two sweeps with the set-at-a-time evaluator: document size at a fixed
//! query, and query length at a fixed document.  Both curves should be
//! (close to) linear; the same sweeps with the DP evaluator give the
//! comparison baseline.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xpeval_core::{CoreXPathEvaluator, DpEvaluator};
use xpeval_workloads::{star_chain_query, wide_document};

fn bench_document_sweep(c: &mut Criterion) {
    let query = xpeval_syntax::parse_query("//a[child::b and not(child::d)]").unwrap();
    let mut group = c.benchmark_group("core_linear_document_sweep");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for width in [50usize, 200, 800, 3200] {
        let doc = wide_document(width, 4);
        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("set_at_a_time", doc.len()), &doc, |b, doc| {
            b.iter(|| CoreXPathEvaluator::new(doc).evaluate_query(&query).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("context_value_table", doc.len()), &doc, |b, doc| {
            b.iter(|| DpEvaluator::new(doc, &query).evaluate().unwrap())
        });
    }
    group.finish();
}

fn bench_query_sweep(c: &mut Criterion) {
    let doc = wide_document(300, 4);
    let mut group = c.benchmark_group("core_linear_query_sweep");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for len in [2usize, 8, 32, 128] {
        let query = star_chain_query(len, &["a", "b", "c", "d"]);
        group.bench_with_input(BenchmarkId::new("set_at_a_time", len), &len, |b, _| {
            b.iter(|| CoreXPathEvaluator::new(&doc).evaluate_query(&query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_document_sweep, bench_query_sweep);
criterion_main!(benches);
