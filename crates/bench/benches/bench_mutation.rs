//! Live-document mutation: the cost of an in-place edit plus re-query
//! against the pre-live alternative of replacing the whole document.
//!
//! * `incremental_edit_query` — `Catalog::mutate_named` replaces one
//!   `<item>` subtree in place (patching the prepared indexes, bumping
//!   the revision, killing only the artifacts whose candidates intersect
//!   the dirty interval) and then re-runs a name-bounded query.
//! * `reprepare_edit_query` — the same logical update the old way:
//!   `insert_xml` re-parses and re-prepares the whole document (bumping
//!   the generation, purging every artifact), then runs the same query.
//! * `edit_storm` — raw mutation throughput: one subtree replacement per
//!   iteration, no query, measuring the copy-on-write snapshot publish
//!   plus index patch plus artifact retarget.
//!
//! The workload is a ~9.6k-node auction document (600 items) — large
//! enough that parse + prepare dominates the rebuild path, which is
//! exactly the regime live documents exist for.
//!
//! The acceptance bar: `incremental_edit_query` at least 5× faster than
//! `reprepare_edit_query` (hard-asserted under `MUTATION_BENCH_STRICT=1`;
//! in CI the medians feed `bench_gate`).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use xpeval_catalog::Catalog;
use xpeval_core::Value;
use xpeval_dom::{parse_xml, serialize, Document};
use xpeval_workloads::auction_site_document;

const ITEMS: usize = 600; // ~9.6k nodes
const QUERY: &str = "//item[child::bid]";

fn replacement() -> Document {
    parse_xml("<item id=\"swap\"><name>Swapped</name><bid increase=\"3\"/></item>").unwrap()
}

/// One incremental round: replace the eighth `<item>` in place, then
/// re-run the query (rebuilding only the artifacts the edit killed).
fn edit_and_query(catalog: &Catalog, frag: &Document) -> usize {
    catalog
        .mutate_named("auction", |live| {
            let item = live.elements_named("item")[7];
            live.replace_subtree(item, frag)
        })
        .unwrap()
        .value
        .unwrap();
    match catalog.evaluate_on("auction", QUERY).unwrap().value {
        Value::NodeSet(ref ns) => ns.len(),
        _ => unreachable!(),
    }
}

/// One rebuild round: re-ingest the serialized document (parse + prepare,
/// generation bump, full artifact purge), then run the same query.
fn rebuild_and_query(catalog: &Catalog, xml: &str) -> usize {
    catalog.insert_xml("auction-rebuilt", xml).unwrap();
    match catalog.evaluate_on("auction-rebuilt", QUERY).unwrap().value {
        Value::NodeSet(ref ns) => ns.len(),
        _ => unreachable!(),
    }
}

fn bench_mutation(c: &mut Criterion) {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(43), ITEMS);
    let xml = serialize(&doc);
    let frag = replacement();

    let catalog = Catalog::builder().capacity(4).build();
    catalog.insert_document("auction", doc);
    // Warm the artifact so the measured loop pays only for what the edit
    // actually kills, like a serving loop would.
    catalog.evaluate_on("auction", QUERY).unwrap();

    // Sanity: both paths see the same answer after the same logical edit.
    let incremental = edit_and_query(&catalog, &frag);
    let rebuilt = rebuild_and_query(&catalog, &xml);
    assert!(incremental > 0 && rebuilt > 0);

    let mut group = c.benchmark_group("mutation");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("incremental_edit_query", |b| {
        b.iter(|| edit_and_query(&catalog, &frag))
    });
    group.bench_function("reprepare_edit_query", |b| {
        b.iter(|| rebuild_and_query(&catalog, &xml))
    });
    group.bench_function("edit_storm", |b| {
        b.iter(|| {
            catalog
                .mutate_named("auction", |live| {
                    let item = live.elements_named("item")[7];
                    live.replace_subtree(item, &frag)
                })
                .unwrap()
                .value
                .unwrap()
                .inserted
                .len()
        })
    });
    group.finish();

    // Headline ratio; skipped in `--test` smoke mode.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 100u32;
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(f());
        }
        start.elapsed() / rounds
    };
    let inc = time(&mut || edit_and_query(&catalog, &frag));
    let reb = time(&mut || rebuild_and_query(&catalog, &xml));
    let speedup = reb.as_secs_f64() / inc.as_secs_f64();
    println!("mutation/incremental_edit_query : {inc:?} per edit+query");
    println!("mutation/reprepare_edit_query   : {reb:?} ({speedup:.2}x slower than incremental)");
    // The acceptance bar, hard-asserted only on request — CI gates the
    // tracked medians through bench_gate instead of a one-shot ratio.
    if std::env::var_os("MUTATION_BENCH_STRICT").is_some() {
        assert!(
            speedup >= 5.0,
            "expected incremental edit+query >= 5x faster than re-prepare, got {speedup:.2}x"
        );
    }

    // The edits never bumped the generation — only the revision moved.
    assert_eq!(catalog.generation("auction"), Some(1));
    assert!(catalog.revision("auction").unwrap() > 0);
}

criterion_group!(benches, bench_mutation);
criterion_main!(benches);
