//! E5 — Theorem 4.3 / Figure 5: graph reachability via PF queries.
//!
//! Measures building the reduction document/query, compiling the PF query,
//! and evaluating the compiled plan for random digraphs of growing size,
//! with plain BFS as the baseline the reduction is checked against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_reductions::reachability_to_pf;
use xpeval_workloads::random_digraph;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability_thm43");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [4usize, 8, 12, 16] {
        let graph = random_digraph(&mut StdRng::seed_from_u64(2), n, 0.2);
        group.bench_with_input(BenchmarkId::new("build_reduction", n), &n, |b, _| {
            b.iter(|| reachability_to_pf(&graph, 1, n))
        });
        let reduction = reachability_to_pf(&graph, 1, n);
        group.bench_with_input(BenchmarkId::new("compile_pf_query", n), &n, |b, _| {
            b.iter(|| CompiledQuery::from_expr(reduction.query.clone()))
        });
        let compiled = CompiledQuery::from_expr(reduction.query.clone());
        assert_eq!(compiled.strategy(), EvalStrategy::CoreXPathLinear);
        group.bench_with_input(BenchmarkId::new("evaluate_pf_query", n), &n, |b, _| {
            b.iter(|| compiled.run(&reduction.document).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bfs_baseline", n), &n, |b, _| {
            b.iter(|| graph.reachable(1, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
