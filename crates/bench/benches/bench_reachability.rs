//! E5 — Theorem 4.3 / Figure 5: graph reachability via PF queries.
//!
//! Measures building the reduction document/query and evaluating the PF
//! query for random digraphs of growing size, with plain BFS as the
//! baseline the reduction is checked against.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xpeval_core::CoreXPathEvaluator;
use xpeval_reductions::reachability_to_pf;
use xpeval_workloads::random_digraph;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability_thm43");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [4usize, 8, 12, 16] {
        let graph = random_digraph(&mut StdRng::seed_from_u64(2), n, 0.2);
        group.bench_with_input(BenchmarkId::new("build_reduction", n), &n, |b, _| {
            b.iter(|| reachability_to_pf(&graph, 1, n))
        });
        let reduction = reachability_to_pf(&graph, 1, n);
        group.bench_with_input(BenchmarkId::new("evaluate_pf_query", n), &n, |b, _| {
            b.iter(|| {
                CoreXPathEvaluator::new(&reduction.document)
                    .evaluate_query(&reduction.query)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("bfs_baseline", n), &n, |b, _| {
            b.iter(|| graph.reachable(1, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
