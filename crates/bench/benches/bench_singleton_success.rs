//! E6 — Lemma 5.4 / Table 1: the Singleton-Success decision procedure.
//!
//! Measures a single Singleton-Success decision (is one node in the
//! result?), the recovery of the full node set through the compiled
//! `SingletonSuccess` plan (Theorem 5.5), and the DP plan as the
//! materializing baseline, on the pWF query corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xpeval_core::{CompiledQuery, Context, EvalStrategy, SingletonSuccess, SuccessTarget};
use xpeval_workloads::{auction_site_document, pwf_query_corpus};

fn bench_singleton_success(c: &mut Criterion) {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(8), 60);
    let ctx = Context::root(&doc);
    let some_node = doc.all_elements().nth(doc.element_count() / 2).unwrap();

    let mut group = c.benchmark_group("singleton_success_table1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, query) in pwf_query_corpus() {
        // The raw decision procedure: one Singleton-Success instance.
        group.bench_with_input(
            BenchmarkId::new("decide_single_node", name),
            &query,
            |b, q| {
                let checker = SingletonSuccess::new(&doc, q).unwrap();
                b.iter(|| {
                    checker
                        .decide(ctx, &SuccessTarget::Node(some_node))
                        .unwrap()
                })
            },
        );
        // Full node-set recovery and the DP baseline, both through the
        // compiled form (compile once, outside the timed loop).
        let compiled = CompiledQuery::from_expr(query.clone());
        let success = compiled
            .clone()
            .with_strategy(EvalStrategy::SingletonSuccess);
        group.bench_with_input(
            BenchmarkId::new("node_set_via_loop", name),
            &query,
            |b, _| b.iter(|| success.run(&doc).unwrap()),
        );
        let dp = compiled.with_strategy(EvalStrategy::ContextValueTable);
        group.bench_with_input(
            BenchmarkId::new("context_value_table", name),
            &query,
            |b, _| b.iter(|| dp.run(&doc).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_singleton_success);
criterion_main!(benches);
