//! E11 — Theorem 7.3: query complexity.
//!
//! The document is held fixed while the query grows (PF chains of
//! increasing length); without multiplication/concat the evaluation time
//! must scale polynomially — in practice close to linearly — in |Q|.
//! Compile time (parse-free here, but classification walks the AST) is
//! reported separately from evaluation time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_workloads::{oscillating_query, random_tree_document};

fn bench_query_complexity(c: &mut Criterion) {
    let doc = random_tree_document(&mut StdRng::seed_from_u64(6), 500, &["a", "b", "c", "d"]);

    let mut group = c.benchmark_group("query_complexity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for len in [4usize, 16, 64, 256] {
        let query = oscillating_query(len);
        group.bench_with_input(BenchmarkId::new("compile", len), &len, |b, _| {
            b.iter(|| CompiledQuery::from_expr(query.clone()))
        });
        let compiled = CompiledQuery::from_expr(query.clone());
        let dp = compiled
            .clone()
            .with_strategy(EvalStrategy::ContextValueTable);
        let linear = compiled.with_strategy(EvalStrategy::CoreXPathLinear);
        group.bench_with_input(BenchmarkId::new("pf_chain_dp", len), &len, |b, _| {
            b.iter(|| dp.run(&doc).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pf_chain_linear", len), &len, |b, _| {
            b.iter(|| linear.run(&doc).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_complexity);
criterion_main!(benches);
