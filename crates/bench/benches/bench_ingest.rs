//! Ingest paths: what it costs to get from raw bytes to a queryable
//! document under each storage backend.
//!
//! * `parse_prepare` — the eager baseline: parse the XML and build every
//!   axis index up front.
//! * `lazy_tokenize` — `LazyDocument::new`: tokenize into spine +
//!   extents, materialize nothing.
//! * `lazy_first_query` — tokenize, grow the wave a targeted query needs
//!   (`count(//person)`, ~25% of the document) and answer it — the
//!   cold-start latency of the lazy backend.
//! * `snapshot_open` — `PreparedSnapshot::from_bytes` on an in-memory
//!   image: O(validate), the backend's headline number.
//! * `snapshot_first_query` — open + decode + answer the same query —
//!   the cold-start latency of the snapshot backend.
//!
//! The workload is the ~9.6k-node auction document (600 items) shared
//! with `bench_mutation` and `bench_catalog`.
//!
//! The acceptance bars, hard-asserted under `INGEST_BENCH_STRICT=1` (in
//! CI the medians feed `bench_gate`): `snapshot_open` at least 10× faster
//! than `parse_prepare`, and the lazy first query materializing < 50% of
//! the document's nodes.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use xpeval_backends::{LazyDocument, PreparedSnapshot};
use xpeval_core::{CompiledQuery, Value};
use xpeval_dom::{parse_xml, serialize, PreparedDocument};
use xpeval_workloads::auction_site_document;

const ITEMS: usize = 600; // ~9.6k nodes
const QUERY: &str = "count(//person)";

fn parse_prepare(xml: &str) -> PreparedDocument {
    PreparedDocument::new(parse_xml(xml).unwrap())
}

fn lazy_first_query(xml: &str, plan: &CompiledQuery) -> (f64, usize) {
    let lazy = LazyDocument::new(xml).unwrap();
    let wave = lazy.materialize_for(plan.expr()).unwrap();
    let out = plan.run_prepared(&wave).unwrap();
    match out.value {
        Value::Number(n) => (n, wave.node_count()),
        _ => unreachable!(),
    }
}

fn snapshot_first_query(bytes: Vec<u8>, plan: &CompiledQuery) -> f64 {
    let snapshot = PreparedSnapshot::from_bytes(bytes).unwrap();
    let doc = snapshot.document().unwrap();
    match plan.run_prepared(&doc).unwrap().value {
        Value::Number(n) => n,
        _ => unreachable!(),
    }
}

fn bench_ingest(c: &mut Criterion) {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(43), ITEMS);
    let xml = serialize(&doc);
    let plan = CompiledQuery::compile(QUERY).unwrap();

    let eager = parse_prepare(&xml);
    let total_nodes = eager.node_count();
    let image = PreparedSnapshot::to_bytes(&eager);

    // Sanity: every path answers the targeted query identically.
    let expected = match plan.run_prepared(&eager).unwrap().value {
        Value::Number(n) => n,
        _ => unreachable!(),
    };
    let (lazy_answer, wave_nodes) = lazy_first_query(&xml, &plan);
    assert_eq!(lazy_answer, expected);
    assert_eq!(snapshot_first_query(image.clone(), &plan), expected);

    let mut group = c.benchmark_group("ingest");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("parse_prepare", |b| {
        b.iter(|| parse_prepare(&xml).node_count())
    });
    group.bench_function("lazy_tokenize", |b| {
        b.iter(|| LazyDocument::new(&xml).unwrap().extent_count())
    });
    group.bench_function("lazy_first_query", |b| {
        b.iter(|| lazy_first_query(&xml, &plan))
    });
    group.bench_function("snapshot_open", |b| {
        b.iter(|| {
            PreparedSnapshot::from_bytes(image.clone())
                .unwrap()
                .node_count()
        })
    });
    group.bench_function("snapshot_first_query", |b| {
        b.iter(|| snapshot_first_query(image.clone(), &plan))
    });
    group.finish();

    // Headline ratios; skipped in `--test` smoke mode.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 50u32;
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(f());
        }
        start.elapsed() / rounds
    };
    let eager_cost = time(&mut || parse_prepare(&xml).node_count());
    let open_cost = time(&mut || {
        PreparedSnapshot::from_bytes(image.clone())
            .unwrap()
            .node_count()
    });
    let lazy_cost = time(&mut || lazy_first_query(&xml, &plan).1);
    let open_speedup = eager_cost.as_secs_f64() / open_cost.as_secs_f64();
    let wave_fraction = wave_nodes as f64 / total_nodes as f64;
    println!("ingest/parse_prepare    : {eager_cost:?} for {total_nodes} nodes");
    println!(
        "ingest/snapshot_open    : {open_cost:?} ({open_speedup:.1}x faster than parse+prepare)"
    );
    println!(
        "ingest/lazy_first_query : {lazy_cost:?}, materialized {wave_nodes}/{total_nodes} nodes ({:.0}%)",
        wave_fraction * 100.0
    );
    // The acceptance bars, hard-asserted only on request — CI gates the
    // tracked medians through bench_gate instead of a one-shot ratio.
    if std::env::var_os("INGEST_BENCH_STRICT").is_some() {
        assert!(
            open_speedup >= 10.0,
            "expected snapshot open >= 10x faster than parse+prepare, got {open_speedup:.1}x"
        );
        assert!(
            wave_fraction < 0.5,
            "expected the targeted first query to materialize < 50% of nodes, got {:.0}%",
            wave_fraction * 100.0
        );
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
