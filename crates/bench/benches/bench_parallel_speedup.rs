//! E7 — Theorems 5.5/6.2 and Remark 5.6: the LOGCFL fragments pWF/pXPath can
//! be evaluated in parallel.
//!
//! The parallel plan distributes the per-node Singleton-Success decisions
//! over worker threads; this bench sweeps the thread count of the compiled
//! query's `Parallel` plan on a fixed pWF query and document, and also
//! reports the sequential DP plan for scale.  The reproducible claim is the
//! *shape*: time drops as threads are added for the LOGCFL-fragment
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_workloads::auction_site_document;

fn bench_parallel(c: &mut Criterion) {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(3), 120);
    let compiled =
        CompiledQuery::compile("//item[bid/@increase > 6 and position() < 40]/name").unwrap();

    let mut group = c.benchmark_group("parallel_speedup_pwf");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for threads in [1usize, 2, 4, 8] {
        let plan = compiled
            .clone()
            .with_strategy(EvalStrategy::Parallel { threads });
        group.bench_with_input(
            BenchmarkId::new("singleton_success_threads", threads),
            &threads,
            |b, _| b.iter(|| plan.run(&doc).unwrap()),
        );
    }
    let dp = compiled
        .clone()
        .with_strategy(EvalStrategy::ContextValueTable);
    group.bench_function("context_value_table_sequential", |b| {
        b.iter(|| dp.run(&doc).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
