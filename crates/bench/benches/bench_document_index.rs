//! Prepared-document indexes vs plain tree walks.
//!
//! The prepare-once/evaluate-many claim of the document side: against the
//! largest workload document, descendant-heavy queries evaluated through a
//! `PreparedDocument` (tag-name index + preorder subtree intervals +
//! precomputed document order) must beat the same compiled plans walking a
//! bare `Document` — ≥ 2× on the descendant-axis group.
//!
//! Three groups plus a headline summary:
//!
//! * `document_index/prepare_once` — the one-time index construction cost,
//!   for context.
//! * `document_index/descendant_{unprepared,prepared}` — a mix of
//!   descendant-heavy compiled queries, per evaluation.
//! * `document_index/engine_str_{unprepared,prepared}` — the engine path
//!   (plan cache warm) serving the same mix by string.
//!
//! After the criterion groups, a plain timing loop prints the measured
//! speedup so the ratio is visible in one line.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpeval_core::{CompiledQuery, Engine};
use xpeval_dom::{Document, PreparedDocument};
use xpeval_workloads::auction_site_document;

/// Descendant-heavy queries over the auction document; all five compile to
/// node-set plans that exercise the descendant axes.
const QUERIES: [&str; 5] = [
    "/descendant::bid",
    "/descendant::item[child::bid]",
    "/site/regions/europe/descendant::item/name",
    "/descendant::seller",
    "/descendant::item[not(child::bid)]/name",
];

fn compiled_queries() -> Vec<CompiledQuery> {
    QUERIES
        .iter()
        .map(|q| CompiledQuery::compile(q).unwrap())
        .collect()
}

fn run_all_unprepared(queries: &[CompiledQuery], doc: &Document) -> usize {
    queries
        .iter()
        .map(|q| q.run(doc).unwrap().value.expect_nodes().len())
        .sum()
}

fn run_all_prepared(queries: &[CompiledQuery], doc: &PreparedDocument) -> usize {
    queries
        .iter()
        .map(|q| q.run_prepared(doc).unwrap().value.expect_nodes().len())
        .sum()
}

fn bench_document_index(c: &mut Criterion) {
    // The largest workload document used by the benches: ~600 items with
    // bids/sellers/descriptions, several thousand nodes.
    let doc = Arc::new(auction_site_document(&mut StdRng::seed_from_u64(42), 600));
    let prepared = PreparedDocument::new(Arc::clone(&doc));
    let queries = compiled_queries();

    // Sanity: identical answers on both paths.
    assert_eq!(
        run_all_unprepared(&queries, &doc),
        run_all_prepared(&queries, &prepared),
    );

    let mut group = c.benchmark_group("document_index");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("prepare_once", |b| {
        b.iter(|| PreparedDocument::new(Arc::clone(&doc)))
    });
    group.bench_function("descendant_unprepared", |b| {
        b.iter(|| run_all_unprepared(&queries, &doc))
    });
    group.bench_function("descendant_prepared", |b| {
        b.iter(|| run_all_prepared(&queries, &prepared))
    });

    let engine = Engine::builder().build();
    let engine_prepared = engine.prepare_keyed(1, &doc);
    for q in QUERIES {
        engine.evaluate_str(&doc, q).unwrap(); // warm the plan cache
    }
    group.bench_function("engine_str_unprepared", |b| {
        b.iter(|| {
            QUERIES
                .map(|q| engine.evaluate_str(&doc, q).unwrap().expect_nodes().len())
                .iter()
                .sum::<usize>()
        })
    });
    group.bench_function("engine_str_prepared", |b| {
        b.iter(|| {
            QUERIES
                .map(|q| {
                    engine
                        .evaluate_str_prepared(&engine_prepared, q)
                        .unwrap()
                        .expect_nodes()
                        .len()
                })
                .iter()
                .sum::<usize>()
        })
    });
    group.finish();

    // Headline ratio, measured directly so it appears as one line.
    // Skipped in `--test` smoke mode: CI only proves the routines run.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 30;
    let start = Instant::now();
    for _ in 0..rounds {
        criterion::black_box(run_all_unprepared(&queries, &doc));
    }
    let unprepared = start.elapsed();
    let start = Instant::now();
    for _ in 0..rounds {
        criterion::black_box(run_all_prepared(&queries, &prepared));
    }
    let prepared_time = start.elapsed();
    println!(
        "document_index: descendant-heavy mix on {} nodes — unprepared {:?}, prepared {:?}, speedup {:.2}x",
        doc.len(),
        unprepared / rounds,
        prepared_time / rounds,
        unprepared.as_secs_f64() / prepared_time.as_secs_f64(),
    );
}

criterion_group!(benches, bench_document_index);
criterion_main!(benches);
