//! E10 — Theorems 7.1/7.2: data complexity.
//!
//! The compiled query is held fixed (one Core XPath query with negation,
//! one pWF query) while the document grows; the evaluation time must scale
//! polynomially (and, for these low-degree queries, close to linearly) in
//! |D| — the wall-clock counterpart of the L-membership result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_workloads::random_tree_document;

fn bench_data_complexity(c: &mut Criterion) {
    // Compiled once: the per-query analysis is amortized over the document
    // sweep, exactly as the compile-once pipeline promises.
    let core_dp = CompiledQuery::compile("//a[descendant::c and not(child::b)]")
        .unwrap()
        .with_strategy(EvalStrategy::ContextValueTable);
    let core_linear = core_dp.clone().with_strategy(EvalStrategy::CoreXPathLinear);
    let pwf_dp = CompiledQuery::compile("//b[position() = last()]/parent::*")
        .unwrap()
        .with_strategy(EvalStrategy::ContextValueTable);

    let mut group = c.benchmark_group("data_complexity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for nodes in [100usize, 400, 1600, 6400] {
        let doc = random_tree_document(&mut StdRng::seed_from_u64(4), nodes, &["a", "b", "c", "d"]);
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::new("core_query_dp", nodes), &doc, |b, doc| {
            b.iter(|| core_dp.run(doc).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("core_query_linear", nodes),
            &doc,
            |b, doc| b.iter(|| core_linear.run(doc).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("pwf_query_dp", nodes), &doc, |b, doc| {
            b.iter(|| pwf_dp.run(doc).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_data_complexity);
criterion_main!(benches);
