//! Plan-cache and compile-vs-eval split of the compile-once pipeline.
//!
//! Four measurements on the same query and document:
//!
//! * `compile_only` — the per-query work: parse, normalize, classify
//!   (Figure 1), select the strategy.  This is what the plan cache saves.
//! * `eval_only` — the per-document work: running an already-compiled plan.
//! * `evaluate_str_uncached` — an engine with the plan cache disabled; every
//!   call pays compile + eval.
//! * `evaluate_str_cached` — an engine with a warm plan cache; every call
//!   pays a hash lookup + eval, and must be measurably faster than the
//!   uncached engine whenever compile time is non-trivial next to eval
//!   time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xpeval_core::{CompiledQuery, Engine};
use xpeval_dom::parse_xml;

/// A query long enough that the per-query work (lexing ~40 tokens, parsing,
/// classifying) is visible next to evaluating it on a small document.
const QUERY: &str = "/descendant-or-self::node()/child::a[child::b and not(child::d) and \
                     descendant::c]/child::b[following-sibling::c or child::a]/parent::a";

fn bench_plan_cache(c: &mut Criterion) {
    let doc =
        parse_xml("<r><a><b/><c/><b><a/></b></a><a><b/><d/></a><a><c><b/></c><b/><c/></a></r>")
            .unwrap();

    let mut group = c.benchmark_group("plan_cache");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("compile_only", |b| {
        b.iter(|| CompiledQuery::compile(QUERY).unwrap())
    });

    let compiled = CompiledQuery::compile(QUERY).unwrap();
    group.bench_function("eval_only", |b| b.iter(|| compiled.run(&doc).unwrap()));

    let uncached = Engine::builder().plan_cache_capacity(0).build();
    group.bench_function("evaluate_str_uncached", |b| {
        b.iter(|| uncached.evaluate_str(&doc, QUERY).unwrap())
    });

    let cached = Engine::builder().plan_cache_capacity(16).build();
    cached.evaluate_str(&doc, QUERY).unwrap(); // warm the cache
    group.bench_function("evaluate_str_cached", |b| {
        b.iter(|| cached.evaluate_str(&doc, QUERY).unwrap())
    });
    group.finish();

    // The cached engine really did serve from the cache.
    let stats = cached.cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert!(stats.hits > 0, "{stats:?}");

    // A second group on a batch of distinct query strings, mimicking a
    // serving mix where a bounded cache keeps every plan hot.
    let queries: Vec<String> = (0..32)
        .map(|i| format!("count(//a[child::b][{}]) + {i}", i % 3 + 1))
        .collect();
    let mut group = c.benchmark_group("plan_cache_query_mix");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for capacity in [0usize, 64] {
        let engine = Engine::builder().plan_cache_capacity(capacity).build();
        group.bench_with_input(
            BenchmarkId::new("serve_32_queries", capacity),
            &capacity,
            |b, _| {
                b.iter(|| {
                    for q in &queries {
                        engine.evaluate_str(&doc, q).unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan_cache);
criterion_main!(benches);
