//! The cost of observability — and of not using it.
//!
//! The telemetry design promise is *zero-cost when disabled*: a compiled
//! plan without a telemetry handle must run exactly as before, and a plan
//! with a handle but sampling off must pay only the registry counters —
//! never a per-opcode `Instant` pair, never a span allocation.  This
//! bench prices all three states on the `bench_plan_ir` hot mix:
//!
//! * `dispatch_off` — plans with no telemetry attached: the baseline,
//!   the exact `plan_ir/ir_dispatch` shape.
//! * `dispatch_disabled` — a telemetry handle attached, sampling `0`:
//!   one branch per opcode call plus the query counter; no clock reads,
//!   no allocation (latency is timed on sampled runs only).  The
//!   acceptance bar: within **2%** of `dispatch_off`, hard-asserted
//!   under `TELEMETRY_BENCH_STRICT=1` (CI gates the tracked medians
//!   through `bench_gate` instead of a one-shot ratio).
//! * `dispatch_traced` — sampling `1`: every run allocates an `OpTrace`,
//!   times every opcode call and publishes a `QueryTrace` — the price of
//!   full per-opcode visibility, paid only on sampled runs.
//!
//! Two micro groups price the obs primitives themselves:
//! `histogram_record` (1024 atomic log2-bucket records) and
//! `prometheus_render` (text exposition of a populated registry).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpeval_core::{CompiledQuery, Value};
use xpeval_dom::PreparedDocument;
use xpeval_obs::{render_prometheus, Histogram, MetricsRegistry, Telemetry};
use xpeval_workloads::auction_site_document;

/// The `bench_plan_ir` serving mix: multi-step Core XPath location paths
/// with boolean predicates, all linear-strategy, on a small tree.
const QUERIES: [&str; 4] = [
    "/site/people/person[child::watches and not(child::nosuch)]/name",
    "/descendant-or-self::item[child::bid and not(child::reserve)]/child::name",
    "//europe/item[descendant::bid or child::name]/name",
    "/site/regions/europe/item[not(child::nosuch)]/bid",
];

fn value_weight(v: &Value) -> usize {
    match v {
        Value::NodeSet(ns) => ns.len(),
        _ => 1,
    }
}

fn dispatch_round(compiled: &[CompiledQuery], prepared: &PreparedDocument) -> usize {
    compiled
        .iter()
        .map(|q| value_weight(&q.run_prepared(prepared).unwrap().value))
        .sum()
}

fn compile_mix() -> Vec<CompiledQuery> {
    QUERIES
        .iter()
        .map(|q| CompiledQuery::compile(q).unwrap())
        .collect()
}

fn attach(plans: Vec<CompiledQuery>, telemetry: &Arc<Telemetry>) -> Vec<CompiledQuery> {
    plans
        .into_iter()
        .map(|p| p.with_telemetry(Arc::clone(telemetry)))
        .collect()
}

fn bench_telemetry(c: &mut Criterion) {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(42), 4);
    let prepared = Arc::new(PreparedDocument::new(doc));

    let off = compile_mix();
    // Sampling 0: the handle is live (query counters) but no run is ever
    // timed or traced.
    let disabled_telemetry = Arc::new(Telemetry::new());
    let disabled = attach(compile_mix(), &disabled_telemetry);
    // Sampling 1: every run records a full per-opcode trace.
    let traced_telemetry = Arc::new(Telemetry::with_sampling(1));
    let traced = attach(compile_mix(), &traced_telemetry);

    // Sanity: all three states compute the same answers.
    let reference = dispatch_round(&off, &prepared);
    assert_eq!(dispatch_round(&disabled, &prepared), reference);
    assert_eq!(dispatch_round(&traced, &prepared), reference);
    assert_eq!(
        disabled_telemetry.trace_count(),
        0,
        "sampling 0 must never record a trace"
    );
    assert!(
        traced_telemetry.trace_count() > 0,
        "sampling 1 must record traces"
    );

    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("dispatch_off", |b| {
        b.iter(|| dispatch_round(&off, &prepared))
    });
    group.bench_function("dispatch_disabled", |b| {
        b.iter(|| dispatch_round(&disabled, &prepared))
    });
    group.bench_function("dispatch_traced", |b| {
        b.iter(|| dispatch_round(&traced, &prepared))
    });

    let histogram = Histogram::new();
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                histogram.record(i.wrapping_mul(2654435761) % 1_000_000);
            }
            histogram.snapshot().count
        })
    });

    // A registry the size the serving bench produces: query counters plus
    // the lifecycle histograms.
    let registry = MetricsRegistry::new();
    registry.counter("query_total").add(4096);
    for name in [
        "serve_queue_wait_ns",
        "serve_execution_ns",
        "serve_end_to_end_ns",
    ] {
        let h = registry.histogram(name);
        for i in 0..4096u64 {
            h.record(i * 997);
        }
    }
    group.bench_function("prometheus_render", |b| {
        b.iter(|| render_prometheus(&registry).len())
    });
    group.finish();

    // Headline ratio; skipped in `--test` smoke mode.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 400u32;
    let time = |f: &mut dyn FnMut() -> usize| {
        // Best of five trials: the ratio below compares two near-identical
        // hot loops, so one scheduler hiccup must not decide it.
        (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..rounds {
                    criterion::black_box(f());
                }
                start.elapsed() / rounds
            })
            .min()
            .unwrap()
    };
    let t_off = time(&mut || dispatch_round(&off, &prepared));
    let t_disabled = time(&mut || dispatch_round(&disabled, &prepared));
    let t_traced = time(&mut || dispatch_round(&traced, &prepared));
    let overhead = t_disabled.as_secs_f64() / t_off.as_secs_f64() - 1.0;
    println!("telemetry/dispatch_off      : {t_off:?} per 4-query round");
    println!(
        "telemetry/dispatch_disabled : {t_disabled:?} ({:+.2}% vs off)",
        overhead * 100.0
    );
    println!("telemetry/dispatch_traced   : {t_traced:?}");
    // The acceptance bar, hard-asserted only on request — CI gates the
    // tracked medians through bench_gate instead of a one-shot ratio.
    if std::env::var_os("TELEMETRY_BENCH_STRICT").is_some() {
        assert!(
            overhead <= 0.02,
            "disabled telemetry must cost <= 2%, measured {:+.2}%",
            overhead * 100.0
        );
    }
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
