//! The catalog's (query × document) artifact cache, measured three ways on
//! the same repeated (query, document) workload:
//!
//! * `artifact_hit` — a warm catalog: every evaluation finds its
//!   specialized artifact (pinned strategy, resolved tags, candidate
//!   bound) and runs it directly — no compile, no name resolution, no
//!   strategy selection.
//! * `cold_resolve` — artifact cache *and* plan cache disabled: every
//!   evaluation pays the full per-pair cost (parse, classify, specialize,
//!   evaluate) — what a catalog-less serving loop without a plan cache
//!   pays.
//! * `unnamed_prepared` — today's best catalog-less path: a warm engine
//!   plan cache over `evaluate_str_prepared` (hash lookup + per-call
//!   source-aware strategy selection + evaluate).
//!
//! The workload is the one the catalog exists for — the
//! robotframework-platynui shape: a fixed query mix fired over and over at
//! *small* trees (a few dozen nodes), where the per-pair costs the
//! artifact skips (parse + classify + specialize, single-digit
//! microseconds) are commensurate with evaluation itself.  On huge
//! documents evaluation dominates everything and all three paths converge
//! — that regime is covered by `bench_document_index`.
//!
//! The acceptance bar: `artifact_hit` at least 1.5× faster than
//! `cold_resolve` on repeated pairs (hard-asserted under
//! `CATALOG_BENCH_STRICT=1`; in CI the medians feed `bench_gate`).
//!
//! A second pair of groups measures fan-out: one query pushed through
//! `evaluate_on_all` across 64 small documents, warm and with artifacts
//! disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use xpeval_catalog::Catalog;
use xpeval_core::{Engine, Value};
use xpeval_workloads::auction_site_document;

/// The repeated serving mix: Core XPath location paths (linear-time
/// evaluation, microseconds on these trees) whose sources are long enough
/// (multiple steps, boolean predicates) that the per-query half the
/// artifact skips is commensurate work.
const QUERIES: [&str; 4] = [
    "/site/people/person[child::watches and not(child::nosuch)]/name",
    "/descendant-or-self::item[child::bid and not(child::reserve)]/child::name",
    "//europe/item[descendant::bid or child::name]/name",
    "/site/regions/europe/item[not(child::nosuch)]/bid",
];

const FAN_DOCS: usize = 64;

fn value_weight(v: &Value) -> usize {
    match v {
        Value::NodeSet(ns) => ns.len(),
        _ => 1,
    }
}

/// One round of the repeated-pair workload through a catalog.
fn run_catalog(catalog: &Catalog, name: &str) -> usize {
    QUERIES
        .iter()
        .map(|q| value_weight(&catalog.evaluate_on(name, q).unwrap().value))
        .sum()
}

fn bench_catalog(c: &mut Criterion) {
    // Small on purpose: see the module docs — the artifact cache's regime
    // is many repeated (query, small document) pairs.
    let doc = auction_site_document(&mut StdRng::seed_from_u64(42), 4);

    // Warm catalog: default engine, artifacts enabled.
    let warm = Catalog::builder().build();
    warm.insert_document("auction", doc.clone());

    // Cold-resolve catalog: no artifact cache, and an engine whose plan
    // cache is disabled — each evaluation re-parses, re-classifies and
    // re-specializes.
    let cold = Catalog::builder()
        .engine(Engine::builder().plan_cache_capacity(0).build())
        .artifact_capacity(0)
        .build();
    cold.insert_document("auction", doc.clone());

    // The catalog-less reference: warm plan cache straight on the engine.
    let engine = Engine::builder().plan_cache_capacity(64).build();
    let prepared = std::sync::Arc::new(xpeval_dom::PreparedDocument::new(doc.clone()));

    // Sanity: all three paths compute the same values.
    let reference: Vec<Value> = QUERIES
        .iter()
        .map(|q| engine.evaluate_str_prepared(&prepared, q).unwrap())
        .collect();
    for (i, q) in QUERIES.iter().enumerate() {
        assert_eq!(warm.evaluate_on("auction", q).unwrap().value, reference[i]);
        assert_eq!(cold.evaluate_on("auction", q).unwrap().value, reference[i]);
    }

    let mut group = c.benchmark_group("catalog");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("artifact_hit", |b| b.iter(|| run_catalog(&warm, "auction")));
    group.bench_function("cold_resolve", |b| b.iter(|| run_catalog(&cold, "auction")));
    group.bench_function("unnamed_prepared", |b| {
        b.iter(|| {
            QUERIES
                .iter()
                .map(|q| value_weight(&engine.evaluate_str_prepared(&prepared, q).unwrap()))
                .sum::<usize>()
        })
    });
    group.finish();

    // The warm catalog really served from its artifact cache: only the
    // sanity pass built artifacts (one miss per query), everything the
    // group measured was a hit.  (Rate-based asserts would flake in
    // `--test` smoke mode, where each routine runs exactly once.)
    let stats = warm.stats();
    assert_eq!(stats.artifact_misses, QUERIES.len() as u64, "{stats}");
    assert!(stats.artifact_hits >= QUERIES.len() as u64, "{stats}");

    // Fan-out: one query over 64 small documents, by glob.
    let fan = Catalog::builder().capacity(FAN_DOCS).build();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..FAN_DOCS {
        fan.insert_document(&format!("doc-{i:02}"), auction_site_document(&mut rng, 4));
    }
    let fan_cold = Catalog::builder()
        .engine(Engine::builder().plan_cache_capacity(0).build())
        .capacity(FAN_DOCS)
        .artifact_capacity(0)
        .build();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..FAN_DOCS {
        fan_cold.insert_document(&format!("doc-{i:02}"), auction_site_document(&mut rng, 4));
    }

    let mut group = c.benchmark_group("catalog_fanout");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("warm_64_docs", |b| {
        b.iter(|| {
            fan.evaluate_on_all("count(//item[child::bid])")
                .into_iter()
                .map(|f| value_weight(&f.result.unwrap().value))
                .sum::<usize>()
        })
    });
    group.bench_function("cold_64_docs", |b| {
        b.iter(|| {
            fan_cold
                .evaluate_on_all("count(//item[child::bid])")
                .into_iter()
                .map(|f| value_weight(&f.result.unwrap().value))
                .sum::<usize>()
        })
    });
    group.finish();

    // Headline ratios; skipped in `--test` smoke mode.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 200u32;
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(f());
        }
        start.elapsed() / rounds
    };
    let hit = time(&mut || run_catalog(&warm, "auction"));
    let cold_t = time(&mut || run_catalog(&cold, "auction"));
    let unnamed = time(&mut || {
        QUERIES
            .iter()
            .map(|q| value_weight(&engine.evaluate_str_prepared(&prepared, q).unwrap()))
            .sum::<usize>()
    });
    let speedup = cold_t.as_secs_f64() / hit.as_secs_f64();
    println!(
        "catalog/artifact_hit     : {hit:?} per {}-query round",
        QUERIES.len()
    );
    println!("catalog/unnamed_prepared : {unnamed:?}");
    println!("catalog/cold_resolve     : {cold_t:?} ({speedup:.2}x slower than artifact hits)");
    // The acceptance bar, hard-asserted only on request — CI gates the
    // tracked medians through bench_gate instead of a one-shot ratio.
    if std::env::var_os("CATALOG_BENCH_STRICT").is_some() {
        assert!(
            speedup >= 1.5,
            "expected artifact-cache hits >= 1.5x faster than cold resolve, got {speedup:.2}x"
        );
    }

    // Replacement invalidates exactly the replaced document's artifacts —
    // observable through the counters, and cheap enough to verify here.
    let before = warm.stats();
    warm.insert_document(
        "auction",
        auction_site_document(&mut StdRng::seed_from_u64(43), 40),
    );
    let after = warm.stats();
    assert!(
        after.artifact_invalidations >= before.artifact_invalidations + QUERIES.len() as u64,
        "replacement must purge the pair's artifacts: {after}"
    );
    println!(
        "replacement invalidated {} artifact(s), generation now {}",
        after.artifact_invalidations - before.artifact_invalidations,
        warm.generation("auction").unwrap(),
    );
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
