//! The flat plan IR, measured where it pays: evaluation without the AST.
//!
//! Three views of the same repeated (query, small document) workload as
//! `bench_catalog`:
//!
//! * `ir_dispatch` — `CompiledQuery::run_prepared`: the lowered
//!   [`PlanIr`](xpeval_core::PlanIr) executed directly (resolved global
//!   `TagId`s, precomputed positional picks, fused `//` steps).
//! * `ast_rewalk` — the pre-IR evaluation path: the recursive AST
//!   evaluator re-walking the expression tree per call, hashing tag
//!   strings at every name test.  This is what an artifact hit paid
//!   before lowering existed.
//! * `artifact_hit_dispatch` — the headline: a warm catalog where every
//!   evaluation finds its content-hash keyed artifact and dispatches —
//!   no compile, no strategy selection, no re-walk.
//!
//! A fourth group, `tenant_shared_hit`, spreads the same round over eight
//! *identical* tenant documents: content-hash artifact keying means all
//! eight share the artifacts the first tenant built
//! (`CatalogStats::artifact_cross_doc_hits` witnesses it below).
//!
//! The acceptance bar (ROADMAP item 2): artifact-hit dispatch at least
//! 3× faster than the AST re-walk it replaced — hard-asserted under
//! `PLAN_IR_BENCH_STRICT=1`; in CI the medians feed `bench_gate`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpeval_catalog::Catalog;
use xpeval_core::{Bindings, CompiledQuery, CoreXPathEvaluator, Engine, EvalStrategy, Value};
use xpeval_dom::PreparedDocument;
use xpeval_workloads::auction_site_document;

/// The `bench_catalog` serving mix: multi-step Core XPath location paths
/// with boolean predicates, all linear-strategy, on a small tree.
const QUERIES: [&str; 4] = [
    "/site/people/person[child::watches and not(child::nosuch)]/name",
    "/descendant-or-self::item[child::bid and not(child::reserve)]/child::name",
    "//europe/item[descendant::bid or child::name]/name",
    "/site/regions/europe/item[not(child::nosuch)]/bid",
];

const TENANTS: usize = 8;

/// Overlapping union arms: `//name` already contains every `//item/name`,
/// so the merge must dedup — from the prepared order keys, not a sort.
const UNION_QUERY: &str = "//name | //item/name | //person/name";

/// One compilation, many parameterizations: the binding is resolved at IR
/// execution time, so the plan-cache key stays the query string alone.
const BOUND_QUERY: &str = "count(//bid[@increase = $inc])";
const BINDING_SETS: usize = 64;

fn value_weight(v: &Value) -> usize {
    match v {
        Value::NodeSet(ns) => ns.len(),
        _ => 1,
    }
}

fn ast_rewalk_round(compiled: &[CompiledQuery], prepared: &PreparedDocument) -> usize {
    let root = prepared.document().root();
    compiled
        .iter()
        .map(|q| {
            CoreXPathEvaluator::new(prepared)
                .evaluate_from(q.expr(), &[root])
                .unwrap()
                .len()
        })
        .sum()
}

fn ir_dispatch_round(compiled: &[CompiledQuery], prepared: &PreparedDocument) -> usize {
    compiled
        .iter()
        .map(|q| value_weight(&q.run_prepared(prepared).unwrap().value))
        .sum()
}

fn catalog_round(catalog: &Catalog, name: &str) -> usize {
    QUERIES
        .iter()
        .map(|q| value_weight(&catalog.evaluate_on(name, q).unwrap().value))
        .sum()
}

fn tenant_round(catalog: &Catalog) -> usize {
    (0..TENANTS)
        .map(|i| {
            value_weight(
                &catalog
                    .evaluate_on(&format!("tenant-{i}"), QUERIES[0])
                    .unwrap()
                    .value,
            )
        })
        .sum()
}

fn union_dedup_round(q: &CompiledQuery, prepared: &PreparedDocument) -> usize {
    value_weight(&q.run_prepared(prepared).unwrap().value)
}

fn bound_reuse_round(engine: &Engine, prepared: &PreparedDocument, bindings: &[Bindings]) -> usize {
    bindings
        .iter()
        .map(|b| {
            value_weight(
                &engine
                    .evaluate_str_prepared_bound(prepared, BOUND_QUERY, b)
                    .unwrap(),
            )
        })
        .sum()
}

fn bench_plan_ir(c: &mut Criterion) {
    let doc = auction_site_document(&mut StdRng::seed_from_u64(42), 4);
    let prepared = Arc::new(PreparedDocument::new(doc.clone()));
    let compiled: Vec<CompiledQuery> = QUERIES
        .iter()
        .map(|q| CompiledQuery::compile(q).unwrap())
        .collect();
    for q in &compiled {
        // The mix is uniformly linear-strategy, so the AST comparator
        // below re-walks with the *same* algorithm the IR dispatch runs.
        assert_eq!(q.strategy(), EvalStrategy::CoreXPathLinear);
    }

    // Sanity: IR dispatch and AST re-walk agree on every query.
    let root = prepared.document().root();
    for q in &compiled {
        let via_ir = q.run_prepared(&prepared).unwrap().value;
        let ast = CoreXPathEvaluator::new(prepared.as_ref())
            .evaluate_from(q.expr(), &[root])
            .unwrap();
        assert_eq!(via_ir, Value::NodeSet(ast), "{}", q.source());
    }

    // Warm catalog: artifacts built once in this priming round.
    let warm = Catalog::builder().build();
    warm.insert_document("auction", doc.clone());
    catalog_round(&warm, "auction");

    // Eight identical tenants; only the first builds artifacts.
    let tenants = Catalog::builder().build();
    for i in 0..TENANTS {
        tenants.insert_document(&format!("tenant-{i}"), doc.clone());
    }
    tenant_round(&tenants);

    // Union with overlapping arms: the result must be deduped in document
    // order without a sort pass.
    let union_q = CompiledQuery::compile(UNION_QUERY).unwrap();
    let union_out = union_q.run_prepared(&prepared).unwrap();
    let union_nodes = union_out.value.expect_nodes();
    let arm_sum: usize = ["//name", "//item/name", "//person/name"]
        .iter()
        .map(|q| {
            let out = CompiledQuery::compile(q)
                .unwrap()
                .run_prepared(&prepared)
                .unwrap();
            out.value.expect_nodes().len()
        })
        .sum();
    assert!(
        union_nodes.len() < arm_sum,
        "the arms must overlap ({} vs {arm_sum}) or dedup is not measured",
        union_nodes.len()
    );
    assert!(
        union_nodes.windows(2).all(|w| w[0] < w[1]),
        "union results must be deduped in document order"
    );

    // One compiled plan under many distinct binding sets: compile once,
    // parameterize per evaluation.
    let bound_engine = Engine::builder().build();
    let bindings: Vec<Bindings> = (0..BINDING_SETS)
        .map(|i| Bindings::new().with_number("inc", (3 * (i % 16 + 1)) as f64))
        .collect();
    bound_reuse_round(&bound_engine, &prepared, &bindings); // prime: the one miss

    let mut group = c.benchmark_group("plan_ir");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("ir_dispatch", |b| {
        b.iter(|| ir_dispatch_round(&compiled, &prepared))
    });
    group.bench_function("ast_rewalk", |b| {
        b.iter(|| ast_rewalk_round(&compiled, &prepared))
    });
    group.bench_function("artifact_hit_dispatch", |b| {
        b.iter(|| catalog_round(&warm, "auction"))
    });
    group.bench_function("tenant_shared_hit", |b| b.iter(|| tenant_round(&tenants)));
    group.bench_function("union_dedup", |b| {
        b.iter(|| union_dedup_round(&union_q, &prepared))
    });
    group.bench_function("bound_variable_reuse", |b| {
        b.iter(|| bound_reuse_round(&bound_engine, &prepared, &bindings))
    });
    group.finish();

    // The acceptance bar for bindings: every evaluation after the priming
    // compile was a plan-cache hit — the cache key is binding-independent.
    let stats = bound_engine.cache_stats();
    assert_eq!(
        stats.misses, 1,
        "one compile serves all binding sets: {stats}"
    );
    assert_eq!(stats.len, 1, "{stats}");
    assert!(
        stats.hits >= (BINDING_SETS - 1) as u64,
        "binding sets after the first must hit: {stats}"
    );

    // The tenants really shared: one build served all eight names.
    let stats = tenants.stats();
    assert_eq!(stats.artifact_misses, 1, "{stats}");
    assert!(
        stats.artifact_cross_doc_hits >= (TENANTS - 1) as u64,
        "content-hash sharing must serve the other tenants: {stats}"
    );

    // Headline ratio; skipped in `--test` smoke mode.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 200u32;
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(f());
        }
        start.elapsed() / rounds
    };
    let hit = time(&mut || catalog_round(&warm, "auction"));
    let ir = time(&mut || ir_dispatch_round(&compiled, &prepared));
    let rewalk = time(&mut || ast_rewalk_round(&compiled, &prepared));
    let speedup = rewalk.as_secs_f64() / hit.as_secs_f64();
    println!(
        "plan_ir/artifact_hit_dispatch : {hit:?} per {}-query round",
        QUERIES.len()
    );
    println!("plan_ir/ir_dispatch           : {ir:?}");
    println!(
        "plan_ir/ast_rewalk            : {rewalk:?} ({speedup:.2}x slower than artifact hits)"
    );
    // The acceptance bar, hard-asserted only on request — CI gates the
    // tracked medians through bench_gate instead of a one-shot ratio.
    if std::env::var_os("PLAN_IR_BENCH_STRICT").is_some() {
        assert!(
            speedup >= 3.0,
            "expected artifact-hit dispatch >= 3x faster than the AST re-walk, got {speedup:.2}x"
        );
    }
}

criterion_group!(benches, bench_plan_ir);
criterion_main!(benches);
