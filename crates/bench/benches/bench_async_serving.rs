//! Throughput of the async serving layer vs the synchronous loop.
//!
//! One fixed workload — `TOTAL` query evaluations from a six-query mix
//! over the ~9.6k-node auction document — is pushed through (a) a plain
//! synchronous `for` loop on one thread and (b) the `AsyncEngine` worker
//! pool fed by 1, 4 and 16 concurrent client threads using the blocking
//! `submit` (so a full queue throttles the clients instead of dropping
//! work).  The strategy is pinned to the context-value-table evaluator and
//! every path shares one engine handle, so the measured difference is
//! exactly the serving layer: queueing overhead at 1 client, parallel
//! drain at 4/16.
//!
//! The serving engine carries an `xpeval_obs::Telemetry` handle, so the
//! pool's workers stream queue-wait / execution / end-to-end latency
//! histograms into its metrics registry as they drain.  After the
//! criterion groups the bench exports the observability artifacts through
//! **both** exporters — `target/serve-stats.json` (each pool's final
//! `ServeStats` via `MetricSource::to_json`, with p50/p99 per lifecycle
//! stage) and `target/serve-stats.prom` (the registry as a Prometheus
//! scrape, validated against the crate's own exposition-format parser) —
//! and CI uploads them next to `BENCH_results.json`.  The old
//! `SERVE_STATS_JSON` env side channel is gone.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpeval_core::{Engine, EvalStrategy};
use xpeval_dom::PreparedDocument;
use xpeval_obs::{parse_prometheus, render_prometheus, MetricSource, Telemetry};
use xpeval_serve::{AsyncEngine, ServeStats};
use xpeval_workloads::auction_site_document;

/// The serving mix: node-set and scalar results, child/descendant-heavy.
const QUERIES: [&str; 6] = [
    "//item[bid/@increase > 6]/name",
    "/site/people/person[child::watches]/name",
    "count(//bid)",
    "/site/regions/europe/item/name",
    "/site/people/person[last()]",
    "count(//item[child::bid])",
];

/// Query evaluations per measured iteration (divisible by every client
/// count).
const TOTAL: usize = 64;

/// Client-thread counts driving the pool.
const CLIENTS: [usize; 3] = [1, 4, 16];

fn serving_engine(telemetry: &Arc<Telemetry>) -> Engine {
    // Pinned strategy: every path runs the identical algorithm, so the
    // comparison isolates the serving layer, not plan selection.  The
    // telemetry handle is attached with sampling off: the registry
    // accumulates query counts and the serve lifecycle histograms, but no
    // per-opcode traces are recorded on the measured paths.
    Engine::builder()
        .strategy(EvalStrategy::ContextValueTable)
        .plan_cache_capacity(256)
        .telemetry(Arc::clone(telemetry))
        .build()
}

fn run_sync(engine: &Engine, prepared: &Arc<PreparedDocument>, total: usize) -> usize {
    let mut checksum = 0usize;
    for i in 0..total {
        let out = engine
            .query_str_prepared(prepared, QUERIES[i % QUERIES.len()])
            .unwrap();
        checksum += match out.value {
            xpeval_core::Value::NodeSet(ns) => ns.len(),
            _ => 1,
        };
    }
    checksum
}

fn run_async(pool: &AsyncEngine, prepared: &Arc<PreparedDocument>, clients: usize) -> usize {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let prepared = Arc::clone(prepared);
            handles.push(scope.spawn(move || {
                let per_client = TOTAL / clients;
                let futures: Vec<_> = (0..per_client)
                    .map(|i| {
                        pool.submit(&prepared, QUERIES[(c * per_client + i) % QUERIES.len()])
                            .unwrap()
                    })
                    .collect();
                futures
                    .into_iter()
                    .map(|f| match f.wait().unwrap().unwrap().value {
                        xpeval_core::Value::NodeSet(ns) => ns.len(),
                        _ => 1,
                    })
                    .sum::<usize>()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn new_pool(engine: &Engine) -> AsyncEngine {
    AsyncEngine::builder()
        .engine(engine.clone())
        // One worker per core: the pool's job is to keep the hardware
        // busy, however much of it there is.
        .workers(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .queue_capacity(32)
        .build()
}

/// The workspace `target/` directory — benches run with the package as
/// cwd, so the path is anchored at the manifest instead.
fn target_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target")
}

/// Writes each pool's final `ServeStats` as one JSON object keyed by
/// client count; `MetricSource::to_json` renders the per-pool objects,
/// lifecycle histograms (count/sum/mean/p50/p90/p99/max) included.
fn write_serve_stats(path: &Path, rows: &[(usize, ServeStats)]) {
    let mut out = String::from("{\n");
    for (i, (clients, s)) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  \"async_serving/clients_{clients}\": {}",
            s.to_json()
        ));
    }
    out.push_str("\n}\n");
    match std::fs::write(path, out) {
        Err(e) => eprintln!("bench_async_serving: cannot write {}: {e}", path.display()),
        Ok(()) => println!(
            "bench_async_serving: wrote ServeStats to {}",
            path.display()
        ),
    }
}

/// Renders the telemetry registry as a Prometheus scrape, proves it
/// against the crate's own exposition-format parser, and writes it next
/// to the JSON export.
fn write_prometheus(path: &Path, telemetry: &Telemetry) {
    let scrape = render_prometheus(telemetry.registry());
    if let Err(e) = parse_prometheus(&scrape) {
        panic!("bench_async_serving: invalid Prometheus exposition: {e}");
    }
    match std::fs::write(path, &scrape) {
        Err(e) => eprintln!("bench_async_serving: cannot write {}: {e}", path.display()),
        Ok(()) => println!(
            "bench_async_serving: wrote Prometheus scrape to {}",
            path.display()
        ),
    }
}

fn bench_async_serving(c: &mut Criterion) {
    let doc = Arc::new(auction_site_document(&mut StdRng::seed_from_u64(42), 600));
    let telemetry = Arc::new(Telemetry::new());
    let engine = serving_engine(&telemetry);
    let prepared = engine.prepare_keyed(1, &doc);

    // Sanity: the pool computes exactly what the loop computes.
    let reference = run_sync(&engine, &prepared, TOTAL);
    {
        let pool = new_pool(&engine);
        for clients in CLIENTS {
            assert_eq!(
                run_async(&pool, &prepared, clients),
                reference,
                "async serving diverged at {clients} clients"
            );
        }
    }

    let mut group = c.benchmark_group("async_serving");
    // Thread spawn/join per iteration makes these benches noisier than
    // the pure-computation ones; more samples over a longer window keep
    // the median stable enough for the 25% regression gate.
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("sync_loop", |b| {
        b.iter(|| run_sync(&engine, &prepared, TOTAL))
    });

    let mut stats_rows: Vec<(usize, ServeStats)> = Vec::new();
    for clients in CLIENTS {
        let pool = new_pool(&engine);
        group.bench_function(format!("clients_{clients}"), |b| {
            b.iter(|| run_async(&pool, &prepared, clients))
        });
        stats_rows.push((clients, pool.shutdown()));
    }
    group.finish();

    // Export through both exporters: the per-pool JSON snapshots and the
    // accumulated registry as a Prometheus scrape.  A 16-client run thus
    // always leaves queue-wait and end-to-end histograms (p50/p99) on
    // disk for CI to upload.
    let dir = target_dir();
    write_serve_stats(&dir.join("serve-stats.json"), &stats_rows);
    write_prometheus(&dir.join("serve-stats.prom"), &telemetry);
    if let Some((clients, s)) = stats_rows.last() {
        println!(
            "async_serving/clients_{clients}: queue_wait p50={:?} p99={:?}, end_to_end p50={:?} p99={:?}",
            Duration::from_nanos(s.queue_wait.p50()),
            Duration::from_nanos(s.queue_wait.p99()),
            Duration::from_nanos(s.end_to_end.p50()),
            Duration::from_nanos(s.end_to_end.p99()),
        );
    }

    // Headline ratios; skipped in `--test` smoke mode (CI only proves the
    // routines run).
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    let rounds = 5u32;
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(f());
        }
        start.elapsed() / rounds
    };
    let sync = time(&mut || run_sync(&engine, &prepared, TOTAL));
    println!(
        "async_serving/sync_loop: {TOTAL} queries in {sync:?} ({:.0} q/s)",
        TOTAL as f64 / sync.as_secs_f64()
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for clients in CLIENTS {
        let pool = new_pool(&engine);
        let t = time(&mut || run_async(&pool, &prepared, clients));
        let speedup = sync.as_secs_f64() / t.as_secs_f64();
        println!(
            "async_serving/clients_{clients}: {TOTAL} queries in {t:?} ({:.0} q/s, {speedup:.2}x vs sync)",
            TOTAL as f64 / t.as_secs_f64()
        );
        // The acceptance bar: ≥2x the synchronous loop at 16 concurrent
        // clients — on hardware that has the cores to show it (the pool
        // cannot out-run the loop on a single-core host).  Hard-asserted
        // only on request (SERVE_BENCH_STRICT=1): in CI the medians above
        // feed bench_gate, whose baseline comparison is the gate — a
        // one-shot ratio on a noisy shared runner is not.
        if clients == 16 && cores >= 4 && std::env::var_os("SERVE_BENCH_STRICT").is_some() {
            assert!(
                speedup >= 2.0,
                "expected >= 2x over the sync loop at 16 clients on {cores} cores, got {speedup:.2}x"
            );
        }
    }
}

criterion_group!(benches, bench_async_serving);
criterion_main!(benches);
