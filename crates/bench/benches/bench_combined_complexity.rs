//! E2 — combined complexity: the exponential naive baseline against the
//! polynomial context-value-table evaluator (paper Section 1 motivation and
//! Proposition 2.7).
//!
//! The query family is `//a/b/parent::a/b/…` with a growing number of
//! repetitions on a fixed document whose `a` element has `k = 3` children.
//! The naive evaluator's time grows as `3^reps`; the DP evaluator's grows
//! linearly in `reps`.  Queries are compiled once per family member, so the
//! timed loop measures evaluation only; the per-query compile (classify +
//! plan) is reported separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_dom::Document;
use xpeval_workloads::{blowup_document, blowup_query};

fn document() -> Document {
    // A single `a` element with 3 `b` children.
    blowup_document(3)
}

fn bench_combined(c: &mut Criterion) {
    let doc = document();
    let mut group = c.benchmark_group("combined_complexity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for reps in [2usize, 4, 6, 8, 10] {
        let query = blowup_query(reps);
        group.bench_with_input(BenchmarkId::new("compile", reps), &reps, |b, _| {
            b.iter(|| CompiledQuery::from_expr(query.clone()))
        });
        let naive = CompiledQuery::from_expr(query.clone()).with_strategy(EvalStrategy::Naive);
        group.bench_with_input(BenchmarkId::new("naive", reps), &reps, |b, _| {
            b.iter(|| naive.run(&doc).unwrap())
        });
        let cvt =
            CompiledQuery::from_expr(query.clone()).with_strategy(EvalStrategy::ContextValueTable);
        group.bench_with_input(
            BenchmarkId::new("context_value_table", reps),
            &reps,
            |b, _| b.iter(|| cvt.run(&doc).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_combined);
criterion_main!(benches);
