//! Index-aware axes vs plain tree walks: `child::tag`, `following`,
//! `preceding` and positional child predicates.
//!
//! PR 2 established the prepared fast path for the descendant axes
//! (`bench_document_index`); this bench covers the axes added on top: the
//! per-parent tag buckets behind `child::tag`, the preorder-interval
//! complements behind `following`/`preceding`, and the positional child
//! predicates answered from the buckets and position tables.
//!
//! Every group runs the same compiled queries twice over the largest
//! workload document (~9.6k nodes): once against the bare `Document`, once
//! against its `PreparedDocument`.  The strategy is pinned to the
//! context-value-table evaluator so both sides run the identical algorithm
//! and the measured difference is exactly the index.  After the criterion
//! groups, a plain timing loop prints the per-axis speedup ratios
//! (prepared-vs-unprepared) in one line each.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpeval_core::{CompiledQuery, EvalStrategy};
use xpeval_dom::{Document, PreparedDocument};
use xpeval_workloads::auction_site_document;

/// Child-axis name tests.  On the prepared side wide nodes (`people`, the
/// regions with hundreds of items) hit the per-parent tag buckets; narrow
/// nodes keep the sibling walk (the adaptive `CHILD_BUCKET_MIN_CHILDREN`
/// cutover).
const CHILD_QUERIES: [&str; 4] = [
    "/site/regions/europe/item/name",
    "/site/people/person/name",
    "/site/regions/asia/item/bid",
    "/site/people/person",
];

/// Following: interval complement, one tag-list suffix per context node.
const FOLLOWING_QUERIES: [&str; 2] = [
    "/descendant::seller/following::bid",
    "/site/regions/europe/item/following::person",
];

/// Preceding: interval complement minus ancestors; the unprepared walk
/// scans (and sorts) the whole document per context node.
const PRECEDING_QUERIES: [&str; 2] = [
    "/descendant::bid/preceding::seller",
    "/site/people/person/preceding::item",
];

/// Positional child predicates: answered from the per-parent buckets and
/// position tables without per-candidate predicate evaluation.
const POSITIONAL_QUERIES: [&str; 3] = [
    "/site/people/person[300]/name",
    "/site/people/person[last()]",
    "/site/regions/europe/item[position() = last()]/name",
];

fn compiled(queries: &[&str]) -> Vec<CompiledQuery> {
    queries
        .iter()
        .map(|q| {
            CompiledQuery::compile(q)
                .unwrap()
                .with_strategy(EvalStrategy::ContextValueTable)
        })
        .collect()
}

fn run_all_unprepared(queries: &[CompiledQuery], doc: &Document) -> usize {
    queries
        .iter()
        .map(|q| q.run(doc).unwrap().value.expect_nodes().len())
        .sum()
}

fn run_all_prepared(queries: &[CompiledQuery], doc: &PreparedDocument) -> usize {
    queries
        .iter()
        .map(|q| q.run_prepared(doc).unwrap().value.expect_nodes().len())
        .sum()
}

fn bench_axis_index(c: &mut Criterion) {
    let doc = Arc::new(auction_site_document(&mut StdRng::seed_from_u64(42), 600));
    let prepared = PreparedDocument::new(Arc::clone(&doc));
    let mixes: [(&str, Vec<CompiledQuery>); 4] = [
        ("child", compiled(&CHILD_QUERIES)),
        ("following", compiled(&FOLLOWING_QUERIES)),
        ("preceding", compiled(&PRECEDING_QUERIES)),
        ("positional", compiled(&POSITIONAL_QUERIES)),
    ];

    // Sanity: identical answers on both paths, for every mix.
    for (axis, queries) in &mixes {
        assert_eq!(
            run_all_unprepared(queries, &doc),
            run_all_prepared(queries, &prepared),
            "prepared evaluation diverged on the {axis} mix"
        );
    }

    let mut group = c.benchmark_group("axis_index");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    for (axis, queries) in &mixes {
        group.bench_function(format!("{axis}_unprepared"), |b| {
            b.iter(|| run_all_unprepared(queries, &doc))
        });
        group.bench_function(format!("{axis}_prepared"), |b| {
            b.iter(|| run_all_prepared(queries, &prepared))
        });
    }
    group.finish();

    // Headline ratios, measured directly so each axis shows up as one line.
    // Skipped in `--test` smoke mode: CI only proves the routines run.
    if std::env::args().skip(1).any(|a| a == "--test") {
        return;
    }
    for (axis, queries) in &mixes {
        // Preceding walks are quadratic-ish unprepared; keep rounds small.
        let rounds = 5u32;
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(run_all_unprepared(queries, &doc));
        }
        let unprepared = start.elapsed();
        let start = Instant::now();
        for _ in 0..rounds {
            criterion::black_box(run_all_prepared(queries, &prepared));
        }
        let prepared_time = start.elapsed();
        println!(
            "axis_index/{axis}: {} nodes — unprepared {:?}, prepared {:?}, speedup {:.2}x",
            doc.len(),
            unprepared / rounds,
            prepared_time / rounds,
            unprepared.as_secs_f64() / prepared_time.as_secs_f64(),
        );
    }
}

criterion_group!(benches, bench_axis_index);
criterion_main!(benches);
