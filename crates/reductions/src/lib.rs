//! # xpeval-reductions — the complexity reductions of the paper
//!
//! Executable versions of the reductions that establish the hardness results
//! of *"The Complexity of XPath Query Evaluation"* (PODS 2003):
//!
//! | Module | Reduction | Paper reference |
//! |---|---|---|
//! | [`circuit_to_core`] | monotone circuit value → Core XPath evaluation | Theorem 3.2, Corollary 3.3, Figures 2–4 |
//! | [`sac1_to_positive`] | SAC¹ circuit value → positive Core XPath evaluation | Theorem 4.2 |
//! | [`mod@reachability_to_pf`] | directed graph reachability → PF evaluation | Theorem 4.3, Figure 5 |
//! | [`iterated_predicates`] | monotone circuit value → pWF + iterated predicates | Theorem 5.7, Corollary 5.8 |
//!
//! Each module produces a *(document, query)* pair whose evaluation result
//! encodes the answer of the source problem; the crate's tests (and the
//! workspace-level property tests) verify the correctness claims of the
//! respective proofs by comparing against direct circuit evaluation or BFS
//! reachability.
//!
//! Following Remark 3.1, multiple labels per node are realized by attaching
//! one leaf child per label, and the label test `T(l)` becomes the Core
//! XPath condition `child::l`.  Boolean input values use the labels `B1`
//! (true) and `B0` (false) instead of the paper's bare `1`/`0` so that every
//! generated query remains parseable by `xpeval-syntax`.

pub mod circuit_to_core;
pub mod iterated_predicates;
pub mod labels;
pub mod reachability_to_pf;
pub mod sac1_to_positive;

pub use circuit_to_core::{circuit_to_core_xpath, CoreCircuitReduction};
pub use iterated_predicates::{circuit_to_iterated_pwf, IteratedPredicateReduction};
pub use reachability_to_pf::{reachability_to_pf, DirectedGraph, PfReachabilityReduction};
pub use sac1_to_positive::{sac1_to_positive_core, Sac1Reduction};
