//! Theorem 4.3 / Figure 5: directed graph reachability reduces to the
//! evaluation of PF queries (location paths without conditions), which
//! together with the easy NL membership proves PF to be NL-complete.
//!
//! The construction follows the shape of the paper's example query
//!
//! ```text
//! /descendant::v_i / ϕ_m        ϕ_k := child::c / descendant::e /
//!                                       parent^{2|V|}::* / child^{|V|}::c /
//!                                       parent::* / ϕ_{k−1}
//! ϕ_0 := self::v_j
//! ```
//!
//! i.e. every edge traversal is encoded purely by depth arithmetic: an `e`
//! marker sits at a depth that, after climbing a fixed number of `parent`
//! steps and descending a fixed number of `child` steps (with a node test at
//! the end), lands exactly on the element representing the edge's target
//! vertex.  The paper only sketches the document encoding (Figure 5(c)), so
//! this module fixes one concrete layout with the same ingredients — a main
//! spine whose depth encodes vertex identity, one private branch per vertex
//! holding its outgoing-edge markers, and constants `A = 2n+2` (climb) and
//! `B = n+2` (descent) — and proves it correct by property tests against
//! BFS.  The deviation from the (underspecified) figure is recorded in
//! DESIGN.md.
//!
//! Layout for a graph with `n` vertices (all depths relative to the
//! conceptual root at depth 0):
//!
//! * spine elements `m` at depths `1 … 2n` forming a chain,
//! * the vertex element `v{u}` as a child of the spine node at depth `u+n`,
//! * its child `p1` (depth `u+n+2`) followed by a private chain of `p`
//!   elements down to depth `3n+2`,
//! * for every edge `(u → t)`: an `e` leaf attached to the private node of
//!   `u` at depth `t+2n+1` (so the marker itself sits at depth `t+2n+2`).
//!
//! Self-loops are added to every vertex (as in the proof) so that "a path of
//! exactly `m = n` edges exists" coincides with plain reachability.

use std::collections::HashSet;
use xpeval_dom::{Axis, Document, DocumentBuilder, NodeId, NodeTest};
use xpeval_syntax::{Expr, LocationPath, Step};

/// A simple directed graph on vertices `1 … n`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirectedGraph {
    n: usize,
    edges: HashSet<(usize, usize)>,
}

impl DirectedGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DirectedGraph {
            n,
            edges: HashSet::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the edge `u → t` (1-based vertices).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, t: usize) {
        assert!(
            (1..=self.n).contains(&u) && (1..=self.n).contains(&t),
            "edge endpoints must lie in 1..={}",
            self.n
        );
        self.edges.insert((u, t));
    }

    /// True if the edge `u → t` is present.
    pub fn has_edge(&self, u: usize, t: usize) -> bool {
        self.edges.contains(&(u, t))
    }

    /// Edges in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// BFS reachability (used as the reference in tests and benches).
    pub fn reachable(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.n + 1];
        let mut queue = std::collections::VecDeque::from([from]);
        seen[from] = true;
        while let Some(u) = queue.pop_front() {
            #[allow(clippy::needless_range_loop)]
            for t in 1..=self.n {
                if self.has_edge(u, t) && !seen[t] {
                    if t == to {
                        return true;
                    }
                    seen[t] = true;
                    queue.push_back(t);
                }
            }
        }
        false
    }
}

/// Output of the Theorem 4.3 reduction.
pub struct PfReachabilityReduction {
    /// The chain-shaped document encoding the graph.
    pub document: Document,
    /// The PF query (no predicates anywhere).
    pub query: Expr,
    /// The element `v{target}`; the query result is `{target_node}` or empty.
    pub target_node: NodeId,
    /// Number of edge-traversal blocks in the query (`m` in the paper).
    pub steps: usize,
}

/// Reduces "is `target` reachable from `source` in `graph`?" to PF query
/// evaluation.  Vertices are 1-based.
pub fn reachability_to_pf(
    graph: &DirectedGraph,
    source: usize,
    target: usize,
) -> PfReachabilityReduction {
    let n = graph.num_vertices();
    assert!(n >= 1, "graph must have at least one vertex");
    assert!(
        (1..=n).contains(&source) && (1..=n).contains(&target),
        "vertices are 1..=n"
    );

    // Self-loops make "path of exactly m edges" equivalent to reachability.
    let mut edges: HashSet<(usize, usize)> = graph.edges().collect();
    for u in 1..=n {
        edges.insert((u, u));
    }

    // -- document -----------------------------------------------------------
    let max_private_depth = 3 * n + 2;
    let mut b = DocumentBuilder::new();
    let mut vertex_nodes: Vec<NodeId> = Vec::with_capacity(n);
    // Spine m_1 .. m_{2n}; vertex u hangs off m_{u+n}.
    for d in 1..=(2 * n) {
        b.open_element("m");
        if d > n {
            let u = d - n; // vertex attached at this spine depth
            let v = b.open_element(format!("v{u}"));
            vertex_nodes.push(v);
            // Private branch: p1 at depth u+n+2, then p nodes to depth 3n+2.
            b.open_element("p1");
            let p1_depth = u + n + 2;
            // Attach edge markers for targets t with host depth == p1_depth.
            attach_edges_at(&mut b, &edges, u, p1_depth, n);
            for depth in (p1_depth + 1)..=max_private_depth {
                b.open_element("p");
                attach_edges_at(&mut b, &edges, u, depth, n);
            }
            // close p chain + p1
            for _ in p1_depth..=max_private_depth {
                b.close_element();
            }
            b.close_element(); // v{u}
        }
    }
    // close the spine
    for _ in 1..=(2 * n) {
        b.close_element();
    }
    let document = b.finish();
    let target_node = vertex_nodes[target - 1];

    // -- query --------------------------------------------------------------
    let climb = 2 * n + 2;
    let descend = n + 2;
    let m = n; // number of edge blocks
    let mut steps: Vec<Step> = Vec::new();
    steps.push(Step::new(
        Axis::Descendant,
        NodeTest::name(format!("v{source}")),
    ));
    for _ in 0..m {
        steps.push(Step::new(Axis::Child, NodeTest::name("p1")));
        steps.push(Step::new(Axis::Descendant, NodeTest::name("e")));
        for _ in 0..climb {
            steps.push(Step::new(Axis::Parent, NodeTest::Star));
        }
        for i in 0..descend {
            if i + 1 == descend {
                steps.push(Step::new(Axis::Child, NodeTest::name("p1")));
            } else {
                steps.push(Step::new(Axis::Child, NodeTest::AnyNode));
            }
        }
        steps.push(Step::new(Axis::Parent, NodeTest::Star));
    }
    steps.push(Step::new(
        Axis::SelfAxis,
        NodeTest::name(format!("v{target}")),
    ));
    let query = Expr::Path(LocationPath::absolute(steps));

    PfReachabilityReduction {
        document,
        query,
        target_node,
        steps: m,
    }
}

/// Attaches the `e` markers that belong at private depth `host_depth` of the
/// block of vertex `u`: one for every edge `(u → t)` with `t + 2n + 1 ==
/// host_depth`.
fn attach_edges_at(
    b: &mut DocumentBuilder,
    edges: &HashSet<(usize, usize)>,
    u: usize,
    host_depth: usize,
    n: usize,
) {
    for t in 1..=n {
        if t + 2 * n + 1 == host_depth && edges.contains(&(u, t)) {
            b.leaf_element("e");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xpeval_core::{CoreXPathEvaluator, DpEvaluator};
    use xpeval_syntax::{classify, Fragment};

    fn answer(red: &PfReachabilityReduction) -> bool {
        let ev = CoreXPathEvaluator::new(&red.document);
        let result = ev.evaluate_query(&red.query).unwrap();
        assert!(result.len() <= 1, "query must select at most the target");
        if let Some(&node) = result.first() {
            assert_eq!(node, red.target_node);
        }
        !result.is_empty()
    }

    #[test]
    fn figure_5_example_graph() {
        // The 4-vertex graph of Figure 5(a): edges (read off the transposed
        // adjacency matrix in 5(b)): column j has a 1 in row i iff there is
        // an edge j → i; we use a concrete set consistent with the figure's
        // drawing: v1→v2, v2→v3, v3→v1, v3→v4, v4→v2 plus v1→v3.
        let mut g = DirectedGraph::new(4);
        for (u, t) in [(1, 2), (2, 3), (3, 1), (3, 4), (4, 2), (1, 3)] {
            g.add_edge(u, t);
        }
        for source in 1..=4 {
            for target in 1..=4 {
                let red = reachability_to_pf(&g, source, target);
                assert_eq!(
                    answer(&red),
                    g.reachable(source, target),
                    "{source} -> {target}"
                );
            }
        }
    }

    #[test]
    fn query_is_pf_without_conditions() {
        let mut g = DirectedGraph::new(3);
        g.add_edge(1, 2);
        let red = reachability_to_pf(&g, 1, 2);
        assert_eq!(classify(&red.query).fragment, Fragment::PF);
        // Not a single predicate anywhere.
        let mut predicates = 0;
        red.query.visit(&mut |e| {
            if let Expr::Path(p) = e {
                predicates += p.steps.iter().map(|s| s.predicates.len()).sum::<usize>();
            }
        });
        assert_eq!(predicates, 0);
    }

    #[test]
    fn disconnected_and_trivial_cases() {
        let g = DirectedGraph::new(3);
        // No edges: only trivial reachability.
        for s in 1..=3 {
            for t in 1..=3 {
                let red = reachability_to_pf(&g, s, t);
                assert_eq!(answer(&red), s == t, "{s}->{t}");
            }
        }
        // Single vertex graph.
        let g1 = DirectedGraph::new(1);
        let red = reachability_to_pf(&g1, 1, 1);
        assert!(answer(&red));
    }

    #[test]
    fn chain_and_cycle_graphs() {
        // Chain 1 → 2 → 3 → 4 → 5: reachable iff source ≤ target.
        let mut chain = DirectedGraph::new(5);
        for u in 1..5 {
            chain.add_edge(u, u + 1);
        }
        for s in 1..=5 {
            for t in 1..=5 {
                let red = reachability_to_pf(&chain, s, t);
                assert_eq!(answer(&red), s <= t, "{s}->{t}");
            }
        }
        // Directed cycle: everything reaches everything.
        let mut cycle = DirectedGraph::new(4);
        for u in 1..=4 {
            cycle.add_edge(u, u % 4 + 1);
        }
        for s in 1..=4 {
            for t in 1..=4 {
                assert!(answer(&reachability_to_pf(&cycle, s, t)));
            }
        }
    }

    #[test]
    fn random_graphs_agree_with_bfs() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            let n = rng.gen_range(2..=6);
            let mut g = DirectedGraph::new(n);
            for u in 1..=n {
                for t in 1..=n {
                    if u != t && rng.gen_bool(0.25) {
                        g.add_edge(u, t);
                    }
                }
            }
            let s = rng.gen_range(1..=n);
            let t = rng.gen_range(1..=n);
            let red = reachability_to_pf(&g, s, t);
            assert_eq!(answer(&red), g.reachable(s, t), "n={n} {s}->{t} {g:?}");
            // The DP evaluator agrees with the linear evaluator on the
            // generated instance.
            let dp = DpEvaluator::new(&red.document, &red.query)
                .evaluate()
                .unwrap();
            assert_eq!(!dp.expect_nodes().is_empty(), g.reachable(s, t));
        }
    }

    #[test]
    fn document_and_query_sizes_are_polynomial() {
        let mut g = DirectedGraph::new(10);
        for u in 1..=9 {
            g.add_edge(u, u + 1);
        }
        let red = reachability_to_pf(&g, 1, 10);
        // Document is O(n²), query is O(n²) steps.
        assert!(red.document.len() < 40 * 10 * 10);
        assert!(red.query.size() < 10 * (3 * 10 + 10));
        assert_eq!(red.steps, 10);
        assert!(answer(&red));
    }

    #[test]
    fn graph_helpers() {
        let mut g = DirectedGraph::new(3);
        assert_eq!(g.num_vertices(), 3);
        g.add_edge(1, 2);
        g.add_edge(1, 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert!(g.reachable(1, 1));
        assert!(g.reachable(1, 2));
        assert!(!g.reachable(2, 3));
        assert_eq!(g.edges().count(), 1);
    }

    #[test]
    #[should_panic(expected = "edge endpoints")]
    fn edge_bounds_are_checked() {
        DirectedGraph::new(2).add_edge(1, 5);
    }
}
