//! Shared helpers for the circuit reductions: the gate document of
//! Theorem 3.2 and the `T(l)` label machinery of Remark 3.1.
//!
//! All circuit reductions share the same document skeleton: a root element
//! `v0` with one child `v{i}` per gate `G_i` (1-based), each `v{i}` having a
//! single "inner" child `v'{i}`.  A node carries a *label* `l` by having an
//! additional leaf child tagged `l`; the condition `T(l)` of the paper is
//! then simply the Core XPath expression `child::l`.

use xpeval_dom::{Axis, Document, DocumentBuilder, NodeId, NodeTest};
use xpeval_syntax::Expr;

/// Label constants used by the reductions.
pub const LABEL_GATE: &str = "G";
pub const LABEL_RESULT: &str = "R";
pub const LABEL_TRUE: &str = "B1";
pub const LABEL_FALSE: &str = "B0";
pub const LABEL_AUX: &str = "A";
pub const LABEL_WITNESS: &str = "W";

/// The `I_k` label (1-based layer `k`).
pub fn input_label(k: usize) -> String {
    format!("I{k}")
}

/// The first/second ∧-input labels `I¹_k` / `I²_k` of Theorem 4.2.
pub fn split_input_label(k: usize, second: bool) -> String {
    if second {
        format!("I{k}b")
    } else {
        format!("I{k}a")
    }
}

/// The `O_k` label (1-based layer `k`).
pub fn output_label(k: usize) -> String {
    format!("O{k}")
}

/// `T(l)` of Remark 3.1: the condition `child::l`.
pub fn t(label: &str) -> Expr {
    Expr::step(Axis::Child, NodeTest::name(label))
}

/// The element names of the gate nodes (`v{i}`, 1-based) and inner nodes.
pub fn gate_node_name(i: usize) -> String {
    format!("v{i}")
}

/// Inner child `v'{i}` — apostrophes are not valid XML names, so the tag
/// `vp{i}` is used (the paper's `w_i` witness nodes of Theorem 5.7 get the
/// dedicated tag `wit{i}`).
pub fn inner_node_name(i: usize) -> String {
    format!("vp{i}")
}

/// Builder for the shared document skeleton of Theorems 3.2 / 4.2 / 5.7.
pub struct GateDocumentBuilder;

impl GateDocumentBuilder {
    /// Starts a gate document for `total_gates` gates.  `labels_of(i)`
    /// yields the labels of gate node `v{i}` and `inner_labels_of(i)` the
    /// labels of `v'{i}` (both 1-based).  When `with_witnesses` is set, a
    /// `W`-labeled witness child is appended to `v0` and to every `v{i}`
    /// (the Theorem 5.7 extension) and `v0` additionally carries the `A`
    /// label.
    pub fn build(
        total_gates: usize,
        labels_of: impl Fn(usize) -> Vec<String>,
        inner_labels_of: impl Fn(usize) -> Vec<String>,
        with_witnesses: bool,
    ) -> GateDocument {
        let mut b = DocumentBuilder::new();
        b.open_element("v0");
        if with_witnesses {
            b.leaf_element(LABEL_AUX);
        }
        let mut gate_nodes = Vec::with_capacity(total_gates);
        let mut inner_nodes = Vec::with_capacity(total_gates);
        let mut witness_nodes = Vec::new();
        for i in 1..=total_gates {
            let v = b.open_element(gate_node_name(i));
            for label in labels_of(i) {
                b.leaf_element(label);
            }
            let vp = b.open_element(inner_node_name(i));
            for label in inner_labels_of(i) {
                b.leaf_element(label);
            }
            b.close_element();
            if with_witnesses {
                let w = b.open_element(format!("wit{i}"));
                b.leaf_element(LABEL_WITNESS);
                b.close_element();
                witness_nodes.push(w);
            }
            b.close_element();
            gate_nodes.push(v);
            inner_nodes.push(vp);
        }
        if with_witnesses {
            let w = b.open_element("wit0");
            b.leaf_element(LABEL_WITNESS);
            b.close_element();
            witness_nodes.push(w);
        }
        b.close_element();
        GateDocument {
            document: b.finish(),
            gate_nodes,
            inner_nodes,
            witness_nodes,
        }
    }
}

/// The shared gate document plus handles to its interesting nodes.
pub struct GateDocument {
    /// The constructed XML document.
    pub document: Document,
    /// `v{1} … v{M+N}` in gate order.
    pub gate_nodes: Vec<NodeId>,
    /// `v'{1} … v'{M+N}` in gate order.
    pub inner_nodes: Vec<NodeId>,
    /// Witness nodes `w{1} … w{M+N}, w{0}` (empty without witnesses).
    pub witness_nodes: Vec<NodeId>,
}

impl GateDocument {
    /// True if node `node` carries label `label` (has a child with that tag)
    /// — the realization of the paper's "node is labeled l".
    pub fn has_label(&self, node: NodeId, label: &str) -> bool {
        self.document.count_children_named(node, label) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_is_a_child_step() {
        let cond = t("G");
        assert_eq!(cond.to_string(), "child::G");
    }

    #[test]
    fn label_name_helpers() {
        assert_eq!(input_label(3), "I3");
        assert_eq!(output_label(5), "O5");
        assert_eq!(split_input_label(2, false), "I2a");
        assert_eq!(split_input_label(2, true), "I2b");
        assert_eq!(gate_node_name(9), "v9");
        assert_eq!(inner_node_name(9), "vp9");
    }

    #[test]
    fn gate_document_shape() {
        let doc = GateDocumentBuilder::build(
            3,
            |i| vec![LABEL_GATE.to_string(), format!("X{i}")],
            |_| vec!["I1".to_string()],
            false,
        );
        assert_eq!(doc.gate_nodes.len(), 3);
        assert_eq!(doc.inner_nodes.len(), 3);
        assert!(doc.witness_nodes.is_empty());
        let d = &doc.document;
        let v0 = d.first_child(d.root()).unwrap();
        assert_eq!(d.name(v0), Some("v0"));
        assert_eq!(d.count_children_named(v0, "v1"), 1);
        assert!(doc.has_label(doc.gate_nodes[0], "G"));
        assert!(doc.has_label(doc.gate_nodes[1], "X2"));
        assert!(!doc.has_label(doc.gate_nodes[1], "X1"));
        assert!(doc.has_label(doc.inner_nodes[2], "I1"));
        // Every v{i} has its inner child.
        for (i, &v) in doc.gate_nodes.iter().enumerate() {
            assert_eq!(d.count_children_named(v, &inner_node_name(i + 1)), 1);
        }
        // Depth: root(0) v0(1) v{i}(2) v'{i}(3) labels(4).
        assert_eq!(d.height(), 4);
    }

    #[test]
    fn witness_extension_adds_w_children_and_aux_label() {
        let doc = GateDocumentBuilder::build(2, |_| vec![LABEL_GATE.to_string()], |_| vec![], true);
        assert_eq!(doc.witness_nodes.len(), 3); // w1, w2, w0
        let d = &doc.document;
        let v0 = d.first_child(d.root()).unwrap();
        // v0 carries the A label and has a witness child.
        assert_eq!(d.count_children_named(v0, LABEL_AUX), 1);
        assert_eq!(d.count_children_named(v0, "wit0"), 1);
        for (i, &_v) in doc.gate_nodes.iter().enumerate() {
            let w = doc.witness_nodes[i];
            assert!(doc.has_label(w, LABEL_WITNESS));
        }
    }
}
