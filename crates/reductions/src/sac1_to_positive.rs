//! Theorem 4.2: the SAC¹ circuit value problem reduces to positive Core
//! XPath evaluation, establishing LOGCFL-hardness of positive Core XPath.
//!
//! The construction reuses the gate document of Theorem 3.2 with one change:
//! for every ∧-layer `k` there are now *two* input labels `I¹_k` and `I²_k`
//! (tags `I{k}a` / `I{k}b`).  The real ∧-gate's first input is labeled
//! `I{k}a` and its second `I{k}b`; the single "input line" `v'_i` of every
//! dummy gate carries both.  Instead of negation (which expresses an
//! unbounded "for all"), the ∧-step of the query uses the binary `and` with
//! the sub-expression `π_k` duplicated:
//!
//! ```text
//! ψ_k :=  child::*[T(I¹_k) and π_k]  and  child::*[T(I²_k) and π_k]    (∧)
//! ψ_k :=  child::*[T(I_k) and π_k]                                     (∨)
//! ```
//!
//! As the paper notes, the query grows exponentially in the ∧-depth of the
//! circuit, which is polynomial (indeed, it remains a logspace reduction)
//! precisely because SAC¹ circuits have logarithmic depth.

use crate::labels::{
    input_label, output_label, split_input_label, t, GateDocumentBuilder, LABEL_FALSE, LABEL_GATE,
    LABEL_RESULT, LABEL_TRUE,
};
use xpeval_circuits::{CircuitError, GateKind, Sac1Circuit};
use xpeval_dom::{Axis, Document, NodeId, NodeTest};
use xpeval_syntax::{Expr, LocationPath, Step};

/// Output of the Theorem 4.2 reduction.
pub struct Sac1Reduction {
    /// The gate document.
    pub document: Document,
    /// The *negation-free* (positive Core XPath) query.
    pub query: Expr,
    /// The node carrying the `R` label.
    pub result_node: NodeId,
    /// The gate nodes `v_1 … v_{M+N}`.
    pub gate_nodes: Vec<NodeId>,
}

/// Performs the Theorem 4.2 reduction for a semi-unbounded circuit under the
/// given input assignment.
pub fn sac1_to_positive_core(
    sac: &Sac1Circuit,
    inputs: &[bool],
) -> Result<Sac1Reduction, CircuitError> {
    let circuit = sac.circuit();
    circuit.validate()?;
    if inputs.len() != circuit.num_inputs() {
        return Err(CircuitError::WrongInputCount {
            expected: circuit.num_inputs(),
            got: inputs.len(),
        });
    }
    let m = circuit.num_inputs();
    let n = circuit.num_internal();
    let total = m + n;

    // -- document -----------------------------------------------------------
    let labels_of = |i: usize| {
        let mut labels = vec![LABEL_GATE.to_string()];
        if i == total {
            labels.push(LABEL_RESULT.to_string());
        }
        if i <= m {
            labels.push(
                if inputs[i - 1] {
                    LABEL_TRUE
                } else {
                    LABEL_FALSE
                }
                .to_string(),
            );
        }
        for k in 1..=n {
            let gate = circuit.gate(xpeval_circuits::GateId(m + k - 1));
            match gate.kind {
                GateKind::And => {
                    // Positional labels: the j-th input wire of the ∧-gate
                    // gets I{k}a / I{k}b.  A fan-in-one ∧-gate labels its
                    // single input with both, like a dummy gate.
                    for (j, g) in gate.inputs.iter().enumerate() {
                        if g.index() + 1 == i {
                            if gate.inputs.len() == 1 {
                                labels.push(split_input_label(k, false));
                                labels.push(split_input_label(k, true));
                            } else {
                                labels.push(split_input_label(k, j == 1));
                            }
                        }
                    }
                }
                GateKind::Or => {
                    if gate.inputs.iter().any(|g| g.index() + 1 == i) {
                        labels.push(input_label(k));
                    }
                }
                GateKind::Input => unreachable!(),
            }
        }
        if i > m {
            labels.push(output_label(i - m));
        }
        labels
    };

    let inner_labels_of = |i: usize| {
        let from_layer = if i <= m { 1 } else { i - m };
        let mut labels = Vec::new();
        for k in from_layer..=n {
            let kind = circuit.gate(xpeval_circuits::GateId(m + k - 1)).kind;
            match kind {
                GateKind::And => {
                    labels.push(split_input_label(k, false));
                    labels.push(split_input_label(k, true));
                }
                GateKind::Or => labels.push(input_label(k)),
                GateKind::Input => unreachable!(),
            }
            labels.push(output_label(k));
        }
        labels
    };

    let gate_doc = GateDocumentBuilder::build(total, labels_of, inner_labels_of, false);

    // -- query --------------------------------------------------------------
    let mut phi = t(LABEL_TRUE); // ϕ_0 := T(B1)
    for k in 1..=n {
        // π_k := ancestor-or-self::*[T(G) and ϕ_{k-1}]
        let pi = Expr::Path(LocationPath::relative(vec![Step::with_predicate(
            Axis::AncestorOrSelf,
            NodeTest::Star,
            Expr::and(t(LABEL_GATE), phi.clone()),
        )]));
        let kind = circuit.gate(xpeval_circuits::GateId(m + k - 1)).kind;
        let psi = match kind {
            GateKind::And => {
                let branch = |second: bool| {
                    Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                        Axis::Child,
                        NodeTest::Star,
                        Expr::and(t(&split_input_label(k, second)), pi.clone()),
                    )]))
                };
                Expr::and(branch(false), branch(true))
            }
            GateKind::Or => Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                Axis::Child,
                NodeTest::Star,
                Expr::and(t(&input_label(k)), pi),
            )])),
            GateKind::Input => unreachable!(),
        };
        phi = Expr::Path(LocationPath::relative(vec![Step::with_predicate(
            Axis::DescendantOrSelf,
            NodeTest::Star,
            Expr::and(
                t(&output_label(k)),
                Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                    Axis::Parent,
                    NodeTest::Star,
                    psi,
                )])),
            ),
        )]));
    }

    let query = Expr::Path(LocationPath::absolute(vec![Step::with_predicate(
        Axis::DescendantOrSelf,
        NodeTest::Star,
        Expr::and(t(LABEL_RESULT), phi),
    )]));

    let result_node = *gate_doc
        .gate_nodes
        .last()
        .expect("validated circuit has gates");
    Ok(Sac1Reduction {
        document: gate_doc.document,
        query,
        result_node,
        gate_nodes: gate_doc.gate_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xpeval_circuits::{random_sac1_circuit, GateId, MonotoneCircuit};
    use xpeval_core::CoreXPathEvaluator;
    use xpeval_syntax::{classify, Fragment, QueryFeatures};

    fn answer(red: &Sac1Reduction) -> bool {
        let ev = CoreXPathEvaluator::new(&red.document);
        let result = ev.evaluate_query(&red.query).unwrap();
        assert!(result.len() <= 1);
        if let Some(&node) = result.first() {
            assert_eq!(node, red.result_node);
        }
        !result.is_empty()
    }

    fn small_sac1() -> Sac1Circuit {
        // (x1 ∨ x2) ∧ (x3 ∨ x4), plus an or on top to exercise both kinds.
        let mut c = MonotoneCircuit::new(4);
        let o1 = c.or(vec![GateId(0), GateId(1)]);
        let o2 = c.or(vec![GateId(2), GateId(3)]);
        let a = c.and(vec![o1, o2]);
        let _out = c.or(vec![a]);
        Sac1Circuit::new(c).unwrap()
    }

    #[test]
    fn small_circuit_truth_table() {
        let sac = small_sac1();
        for bits in 0..16u8 {
            let inputs = [bits & 8 != 0, bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            let expected = sac.evaluate(&inputs).unwrap();
            let red = sac1_to_positive_core(&sac, &inputs).unwrap();
            assert_eq!(answer(&red), expected, "bits {bits:04b}");
        }
    }

    #[test]
    fn query_is_negation_free_positive_core_xpath() {
        let sac = small_sac1();
        let red = sac1_to_positive_core(&sac, &[true, false, true, false]).unwrap();
        let report = classify(&red.query);
        assert_eq!(report.fragment, Fragment::PositiveCoreXPath);
        let QueryFeatures { negation_count, .. } = report.features;
        assert_eq!(negation_count, 0);
    }

    #[test]
    fn and_subexpressions_are_duplicated() {
        // The ∧-step duplicates π_k, so adding an ∧-layer roughly doubles the
        // query size while an ∨-layer adds a constant amount.
        let mut c = MonotoneCircuit::new(2);
        let mut prev = c.and(vec![GateId(0), GateId(1)]);
        let sac1_size = {
            let sac = Sac1Circuit::new(c.clone()).unwrap();
            sac1_to_positive_core(&sac, &[true, true])
                .unwrap()
                .query
                .size()
        };
        prev = c.and(vec![prev, GateId(0)]);
        let sac2_size = {
            let sac = Sac1Circuit::new(c.clone()).unwrap();
            sac1_to_positive_core(&sac, &[true, true])
                .unwrap()
                .query
                .size()
        };
        let _ = prev;
        assert!(sac2_size > 2 * sac1_size - 20, "{sac1_size} -> {sac2_size}");
        // ... which is why the reduction targets log-depth (SAC¹) circuits.
    }

    #[test]
    fn random_sac1_circuits_property() {
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..20 {
            // Keep the ∧-depth small: the query doubles per ∧-layer.
            let (sac, inputs) = random_sac1_circuit(&mut rng, 4, 6);
            let expected = sac.evaluate(&inputs).unwrap();
            let red = sac1_to_positive_core(&sac, &inputs).unwrap();
            assert_eq!(answer(&red), expected, "round {round}");
        }
    }

    #[test]
    fn wrong_input_count() {
        let sac = small_sac1();
        assert!(matches!(
            sac1_to_positive_core(&sac, &[true]),
            Err(CircuitError::WrongInputCount { .. })
        ));
    }

    #[test]
    fn fan_in_one_and_gate_labels_both_wires() {
        let mut c = MonotoneCircuit::new(1);
        let _ = c.and(vec![GateId(0)]);
        let sac = Sac1Circuit::new(c).unwrap();
        for input in [true, false] {
            let red = sac1_to_positive_core(&sac, &[input]).unwrap();
            assert_eq!(answer(&red), input);
        }
    }
}
