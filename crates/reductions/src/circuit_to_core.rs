//! Theorem 3.2: the monotone circuit value problem reduces to Core XPath
//! evaluation (in logarithmic space), establishing P-hardness of Core XPath
//! with respect to combined complexity.
//!
//! Given a monotone circuit with input gates `G1 … GM`, internal gates
//! `G(M+1) … G(M+N)` and an input assignment, the reduction produces:
//!
//! * the **gate document** of the proof — root `v0`, children `v{i}` (one
//!   per gate) each with an inner child `v'{i}`, labels realized as leaf
//!   children per Remark 3.1 (`G`, `R`, `B0`/`B1`, `I_k`, `O_k`),
//! * the **query** `/descendant-or-self::*[T(R) and ϕ_N]` with the
//!   condition expressions
//!
//!   ```text
//!   ϕ_k := descendant-or-self::*[T(O_k) and parent::*[ψ_k]]
//!   ψ_k := not(child::*[T(I_k) and not(π_k)])        (G(M+k) an ∧-gate)
//!   ψ_k := child::*[T(I_k) and π_k]                  (G(M+k) an ∨-gate)
//!   π_k := ancestor-or-self::*[T(G) and ϕ_{k−1}]
//!   ϕ_0 := T(B1)
//!   ```
//!
//! The query selects a non-empty node set (namely `{v_{M+N}}`) if and only
//! if the circuit evaluates to true.  With the `restricted_axes` option the
//! Corollary 3.3 variant is produced, which replaces `ancestor-or-self::*`
//! by `descendant-or-self::*/parent::*` so that only the axes `child`,
//! `parent` and `descendant-or-self` occur.

use crate::labels::{
    gate_node_name, input_label, output_label, t, GateDocument, GateDocumentBuilder, LABEL_FALSE,
    LABEL_GATE, LABEL_RESULT, LABEL_TRUE,
};
use xpeval_circuits::{CircuitError, GateKind, MonotoneCircuit};
use xpeval_dom::{Axis, Document, NodeId, NodeTest};
use xpeval_syntax::{Expr, LocationPath, Step};

/// Output of the Theorem 3.2 reduction.
pub struct CoreCircuitReduction {
    /// The gate document `D`.
    pub document: Document,
    /// The Core XPath query `Q` (contains negation for ∧-gates).
    pub query: Expr,
    /// The node `v_{M+N}` carrying the `R` label; the query result is either
    /// `{result_node}` or empty.
    pub result_node: NodeId,
    /// The gate nodes `v_1 … v_{M+N}` in gate order (used by the tests that
    /// verify the per-gate claim `v_i ∈ [[ϕ_k]] ⇔ G_i true`).
    pub gate_nodes: Vec<NodeId>,
    /// The condition expressions `ϕ_0 … ϕ_N` (exposed for the claim tests
    /// and for the Figure 4 walk-through example).
    pub phis: Vec<Expr>,
}

/// Performs the Theorem 3.2 reduction for `circuit` under `inputs`.
///
/// With `restricted_axes` set, the Corollary 3.3 variant of `π_k` is used.
pub fn circuit_to_core_xpath(
    circuit: &MonotoneCircuit,
    inputs: &[bool],
    restricted_axes: bool,
) -> Result<CoreCircuitReduction, CircuitError> {
    circuit.validate()?;
    if inputs.len() != circuit.num_inputs() {
        return Err(CircuitError::WrongInputCount {
            expected: circuit.num_inputs(),
            got: inputs.len(),
        });
    }

    let gate_doc = build_gate_document(circuit, inputs, false);
    let n_layers = circuit.num_internal();
    let phis = build_phis(circuit, n_layers, restricted_axes);

    // Q := /descendant-or-self::*[T(R) and ϕ_N]
    let query = Expr::Path(LocationPath::absolute(vec![Step::with_predicate(
        Axis::DescendantOrSelf,
        NodeTest::Star,
        Expr::and(t(LABEL_RESULT), phis[n_layers].clone()),
    )]));

    let result_node = *gate_doc
        .gate_nodes
        .last()
        .expect("validated circuit has gates");
    Ok(CoreCircuitReduction {
        document: gate_doc.document,
        query,
        result_node,
        gate_nodes: gate_doc.gate_nodes,
        phis,
    })
}

/// Builds the gate document shared with the Theorem 5.7 reduction
/// (which passes `with_witnesses = true`).
pub(crate) fn build_gate_document(
    circuit: &MonotoneCircuit,
    inputs: &[bool],
    with_witnesses: bool,
) -> GateDocument {
    let m = circuit.num_inputs();
    let n = circuit.num_internal();
    let total = m + n;

    // Labels of the gate nodes v{i}.
    let labels_of = |i: usize| {
        let mut labels = vec![LABEL_GATE.to_string()];
        if i == total {
            labels.push(LABEL_RESULT.to_string());
        }
        if i <= m {
            labels.push(
                if inputs[i - 1] {
                    LABEL_TRUE
                } else {
                    LABEL_FALSE
                }
                .to_string(),
            );
        }
        // I_k for every layer k whose real gate G(M+k) takes input from G_i.
        for k in 1..=n {
            let gate = circuit.gate(xpeval_circuits::GateId(m + k - 1));
            if gate.inputs.iter().any(|g| g.index() + 1 == i) {
                labels.push(input_label(k));
            }
        }
        // O_k for the layer whose real gate is G_i itself.
        if i > m {
            labels.push(output_label(i - m));
        }
        labels
    };

    // Labels of the inner nodes v'{i}.
    let inner_labels_of = |i: usize| {
        let from_layer = if i <= m { 1 } else { i - m };
        let mut labels = Vec::new();
        for k in from_layer..=n {
            labels.push(input_label(k));
            labels.push(output_label(k));
        }
        labels
    };

    GateDocumentBuilder::build(total, labels_of, inner_labels_of, with_witnesses)
}

/// Builds the condition expressions `ϕ_0 … ϕ_N`.
fn build_phis(circuit: &MonotoneCircuit, n_layers: usize, restricted_axes: bool) -> Vec<Expr> {
    let m = circuit.num_inputs();
    let mut phis: Vec<Expr> = Vec::with_capacity(n_layers + 1);
    phis.push(t(LABEL_TRUE)); // ϕ_0 := T(B1)
    for k in 1..=n_layers {
        let phi_prev = phis[k - 1].clone();

        // π_k := ancestor-or-self::*[T(G) and ϕ_{k-1}]
        //   or, for Corollary 3.3: descendant-or-self::*/parent::*[T(G) and ϕ_{k-1}]
        let pi_condition = Expr::and(t(LABEL_GATE), phi_prev);
        let pi = if restricted_axes {
            Expr::Path(LocationPath::relative(vec![
                Step::new(Axis::DescendantOrSelf, NodeTest::Star),
                Step::with_predicate(Axis::Parent, NodeTest::Star, pi_condition),
            ]))
        } else {
            Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                Axis::AncestorOrSelf,
                NodeTest::Star,
                pi_condition,
            )]))
        };

        // ψ_k depends on the type of the real gate G(M+k).
        let kind = circuit.gate(xpeval_circuits::GateId(m + k - 1)).kind;
        let psi = match kind {
            GateKind::And => {
                // not(child::*[T(I_k) and not(π_k)])
                Expr::not(Expr::Path(LocationPath::relative(vec![
                    Step::with_predicate(
                        Axis::Child,
                        NodeTest::Star,
                        Expr::and(t(&input_label(k)), Expr::not(pi)),
                    ),
                ])))
            }
            GateKind::Or => {
                // child::*[T(I_k) and π_k]
                Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                    Axis::Child,
                    NodeTest::Star,
                    Expr::and(t(&input_label(k)), pi),
                )]))
            }
            GateKind::Input => unreachable!("internal gates are never inputs"),
        };

        // ϕ_k := descendant-or-self::*[T(O_k) and parent::*[ψ_k]]
        let phi = Expr::Path(LocationPath::relative(vec![Step::with_predicate(
            Axis::DescendantOrSelf,
            NodeTest::Star,
            Expr::and(
                t(&output_label(k)),
                Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                    Axis::Parent,
                    NodeTest::Star,
                    psi,
                )])),
            ),
        )]));
        phis.push(phi);
    }
    phis
}

/// Human-readable name of a gate node element (`v{i}`) — convenience used by
/// examples that print the construction.
pub fn gate_element_name(i: usize) -> String {
    gate_node_name(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xpeval_circuits::{carry_bit_circuit, carry_bit_inputs, random_monotone_circuit};
    use xpeval_core::{CoreXPathEvaluator, DpEvaluator};
    use xpeval_syntax::{classify, Fragment};

    fn reduction_answer(red: &CoreCircuitReduction) -> bool {
        let ev = CoreXPathEvaluator::new(&red.document);
        let result = ev.evaluate_query(&red.query).unwrap();
        assert!(result.len() <= 1);
        if result.len() == 1 {
            assert_eq!(result[0], red.result_node);
        }
        !result.is_empty()
    }

    #[test]
    fn carry_bit_circuit_reduction_matches_truth_table() {
        let circuit = carry_bit_circuit();
        for a in 0..4u8 {
            for b in 0..4u8 {
                let inputs = carry_bit_inputs(a, b);
                let expected = circuit.evaluate(&inputs).unwrap();
                let red = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
                assert_eq!(reduction_answer(&red), expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn restricted_axes_variant_agrees_with_corollary_3_3() {
        let circuit = carry_bit_circuit();
        for a in 0..4u8 {
            for b in 0..4u8 {
                let inputs = carry_bit_inputs(a, b);
                let expected = circuit.evaluate(&inputs).unwrap();
                let red = circuit_to_core_xpath(&circuit, &inputs, true).unwrap();
                assert_eq!(reduction_answer(&red), expected, "a={a} b={b}");
                // Only the child, parent and descendant-or-self axes occur.
                let mut axes_ok = true;
                red.query.visit(&mut |e| {
                    if let Expr::Path(p) = e {
                        for s in &p.steps {
                            if !matches!(
                                s.axis,
                                Axis::Child | Axis::Parent | Axis::DescendantOrSelf
                            ) {
                                axes_ok = false;
                            }
                        }
                    }
                });
                assert!(axes_ok, "Corollary 3.3 axis restriction violated");
            }
        }
    }

    #[test]
    fn per_gate_claim_of_the_proof() {
        // Claim: for 0 ≤ k ≤ N, 1 ≤ i ≤ M+k: v_i ∈ [[ϕ_k]] ⇔ G_i true.
        let circuit = carry_bit_circuit();
        let inputs = carry_bit_inputs(2, 3); // a=2, b=3 → carry = true
        let values = circuit.evaluate_all(&inputs).unwrap();
        let red = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
        let ev = CoreXPathEvaluator::new(&red.document);
        let m = circuit.num_inputs();
        for (k, phi) in red.phis.iter().enumerate() {
            let sat = ev.satisfying_nodes(phi).unwrap();
            for i in 1..=(m + k) {
                let expected = values[i - 1];
                let got = sat.contains(&red.gate_nodes[i - 1]);
                assert_eq!(got, expected, "gate G{i} at layer {k}");
            }
        }
    }

    #[test]
    fn the_query_is_core_xpath_and_the_document_is_shallow() {
        let circuit = carry_bit_circuit();
        let red = circuit_to_core_xpath(&circuit, &carry_bit_inputs(1, 1), false).unwrap();
        // Core XPath membership (the fragment whose P-hardness the theorem
        // establishes).
        assert_eq!(classify(&red.query).fragment, Fragment::CoreXPath);
        // Remark 3.1 / Corollary 3.3: the tree is of bounded depth
        // (depth 3 in element edges; label leaves add one more level).
        assert!(red.document.height() <= 4);
        // Document size is linear in the circuit: (M+N) gate nodes + inner
        // nodes + labels.
        assert!(red.document.element_count() < 20 * circuit.len());
    }

    #[test]
    fn query_size_is_linear_in_the_circuit() {
        let circuit = carry_bit_circuit();
        let red = circuit_to_core_xpath(&circuit, &carry_bit_inputs(0, 0), false).unwrap();
        let size_small = red.query.size();
        // A circuit with twice the layers yields roughly twice the query size.
        let mut big = carry_bit_circuit();
        let out = big.output();
        let mut prev = out;
        for _ in 0..5 {
            prev = big.and(vec![prev]);
        }
        let red_big = circuit_to_core_xpath(&big, &carry_bit_inputs(0, 0), false).unwrap();
        let size_big = red_big.query.size();
        assert!(size_big > size_small);
        assert!(
            size_big < size_small + 5 * 16,
            "growth should be linear per layer"
        );
    }

    #[test]
    fn random_circuits_property() {
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..30 {
            let (circuit, inputs) = random_monotone_circuit(&mut rng, 4, 8);
            let expected = circuit.evaluate(&inputs).unwrap();
            let red = circuit_to_core_xpath(&circuit, &inputs, round % 2 == 0).unwrap();
            assert_eq!(reduction_answer(&red), expected, "round {round}");
            // The DP evaluator agrees with the linear Core XPath evaluator.
            let dp = DpEvaluator::new(&red.document, &red.query)
                .evaluate()
                .unwrap();
            assert_eq!(!dp.expect_nodes().is_empty(), expected);
        }
    }

    #[test]
    fn input_count_mismatch_is_an_error() {
        let circuit = carry_bit_circuit();
        assert!(matches!(
            circuit_to_core_xpath(&circuit, &[true], false),
            Err(CircuitError::WrongInputCount { .. })
        ));
    }

    #[test]
    fn example_document_labels_match_the_paper() {
        // Figure 2/3 example with the paper's label assignment (Section 3):
        //   v1: {G, v(a1), I2, I3}   v5: {G, O1, I3, I4}   v9: {G, R, O5}
        let circuit = carry_bit_circuit();
        let inputs = carry_bit_inputs(3, 1); // a1=1 b1=0 a0=1 b0=1
        let red = circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
        let doc_nodes = build_gate_document(&circuit, &inputs, false);
        let gd = &doc_nodes;
        let v1 = gd.gate_nodes[0];
        assert!(gd.has_label(v1, "G"));
        assert!(gd.has_label(v1, "B1")); // a1 = 1
        assert!(gd.has_label(v1, "I2"));
        assert!(gd.has_label(v1, "I3"));
        assert!(!gd.has_label(v1, "I1"));
        let v2 = gd.gate_nodes[1];
        assert!(gd.has_label(v2, "B0")); // b1 = 0
        assert!(gd.has_label(v2, "I2"));
        assert!(gd.has_label(v2, "I4"));
        let v5 = gd.gate_nodes[4];
        assert!(gd.has_label(v5, "O1"));
        assert!(gd.has_label(v5, "I3"));
        assert!(gd.has_label(v5, "I4"));
        let v9 = gd.gate_nodes[8];
        assert!(gd.has_label(v9, "R"));
        assert!(gd.has_label(v9, "O5"));
        // Inner nodes: v'_1 carries every I/O label, v'_7 only layers ≥ 3.
        assert!(gd.has_label(gd.inner_nodes[0], "I1"));
        assert!(gd.has_label(gd.inner_nodes[0], "O5"));
        assert!(gd.has_label(gd.inner_nodes[6], "I3"));
        assert!(!gd.has_label(gd.inner_nodes[6], "I2"));
        // And the full reduction on this input answers the carry bit of 3+1.
        assert!(reduction_answer(&red));
    }
}
