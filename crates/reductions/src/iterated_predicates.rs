//! Theorem 5.7 / Corollary 5.8: pWF extended by iterated predicates is
//! P-complete.
//!
//! The reduction reuses the gate document of Theorem 3.2 with two additions
//! (Section 5): every node `v_0 … v_{M+N}` receives an extra child `w_i`
//! labeled `W`, and the root `v_0` receives the auxiliary label `A`.  The
//! query replaces negation by predicate sequences of length two built from
//! `last()`:
//!
//! ```text
//! ϕ'_k := descendant-or-self::*[T(O_k) and parent::*[ψ'_k]]
//! ψ'_k := child::*[(T(I_k) and π'_k[last() = 1]) or T(W)][last() = 1]   (∧)
//! ψ'_k := child::*[T(I_k) and π'_k[last() > 1]]                          (∨)
//! π'_k := ancestor-or-self::*[(T(G) and ϕ'_{k−1}) or T(A)]
//! ϕ'_0 := T(B1)
//! ```
//!
//! Because the root always matches `T(A)`, the ancestor count produced by
//! `π'_k` is at least one; `[last() = 1]` therefore expresses `not(π_k)` and
//! `[last() > 1]` expresses `π_k` — negation has been "encoded" by iterated
//! predicates, which is exactly why allowing them makes the fragment P-hard
//! again.  Note that every predicate sequence used has length exactly two
//! (Corollary 5.8).

use crate::circuit_to_core::build_gate_document;
use crate::labels::{
    input_label, output_label, t, LABEL_AUX, LABEL_GATE, LABEL_RESULT, LABEL_TRUE, LABEL_WITNESS,
};
use xpeval_circuits::{CircuitError, GateKind, MonotoneCircuit};
use xpeval_dom::{Axis, Document, NodeId, NodeTest};
use xpeval_syntax::{Expr, LocationPath, RelOp, Step};

/// Output of the Theorem 5.7 reduction.
pub struct IteratedPredicateReduction {
    /// The extended gate document `D'`.
    pub document: Document,
    /// The negation-free query `Q'` using iterated predicates and `last()`.
    pub query: Expr,
    /// The node carrying the `R` label.
    pub result_node: NodeId,
    /// The gate nodes `v_1 … v_{M+N}`.
    pub gate_nodes: Vec<NodeId>,
}

/// Performs the Theorem 5.7 reduction for `circuit` under `inputs`.
pub fn circuit_to_iterated_pwf(
    circuit: &MonotoneCircuit,
    inputs: &[bool],
) -> Result<IteratedPredicateReduction, CircuitError> {
    circuit.validate()?;
    if inputs.len() != circuit.num_inputs() {
        return Err(CircuitError::WrongInputCount {
            expected: circuit.num_inputs(),
            got: inputs.len(),
        });
    }

    let gate_doc = build_gate_document(circuit, inputs, true);
    let m = circuit.num_inputs();
    let n = circuit.num_internal();

    // last() = 1  /  last() > 1
    let last_eq_1 = Expr::relational(RelOp::Eq, Expr::last(), Expr::Number(1.0));
    let last_gt_1 = Expr::relational(RelOp::Gt, Expr::last(), Expr::Number(1.0));

    let mut phi = t(LABEL_TRUE); // ϕ'_0 := T(B1)
    for k in 1..=n {
        // π'_k := ancestor-or-self::*[(T(G) and ϕ'_{k-1}) or T(A)]
        let pi_pred = Expr::or(Expr::and(t(LABEL_GATE), phi.clone()), t(LABEL_AUX));
        let pi_with = |extra: Expr| {
            Expr::Path(LocationPath::relative(vec![Step::with_predicates(
                Axis::AncestorOrSelf,
                NodeTest::Star,
                vec![pi_pred.clone(), extra],
            )]))
        };

        let kind = circuit.gate(xpeval_circuits::GateId(m + k - 1)).kind;
        let psi = match kind {
            GateKind::And => {
                // child::*[(T(I_k) and π'_k[last()=1]) or T(W)][last()=1]
                let inner = Expr::or(
                    Expr::and(t(&input_label(k)), pi_with(last_eq_1.clone())),
                    t(LABEL_WITNESS),
                );
                Expr::Path(LocationPath::relative(vec![Step::with_predicates(
                    Axis::Child,
                    NodeTest::Star,
                    vec![inner, last_eq_1.clone()],
                )]))
            }
            GateKind::Or => {
                // child::*[T(I_k) and π'_k[last() > 1]]
                Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                    Axis::Child,
                    NodeTest::Star,
                    Expr::and(t(&input_label(k)), pi_with(last_gt_1.clone())),
                )]))
            }
            GateKind::Input => unreachable!("internal gates are never inputs"),
        };

        // ϕ'_k := descendant-or-self::*[T(O_k) and parent::*[ψ'_k]]
        phi = Expr::Path(LocationPath::relative(vec![Step::with_predicate(
            Axis::DescendantOrSelf,
            NodeTest::Star,
            Expr::and(
                t(&output_label(k)),
                Expr::Path(LocationPath::relative(vec![Step::with_predicate(
                    Axis::Parent,
                    NodeTest::Star,
                    psi,
                )])),
            ),
        )]));
    }

    // Q' := /descendant-or-self::*[T(R) and ϕ'_N]
    let query = Expr::Path(LocationPath::absolute(vec![Step::with_predicate(
        Axis::DescendantOrSelf,
        NodeTest::Star,
        Expr::and(t(LABEL_RESULT), phi),
    )]));

    let result_node = *gate_doc
        .gate_nodes
        .last()
        .expect("validated circuit has gates");
    Ok(IteratedPredicateReduction {
        document: gate_doc.document,
        query,
        result_node,
        gate_nodes: gate_doc.gate_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xpeval_circuits::{carry_bit_circuit, carry_bit_inputs, random_monotone_circuit};
    use xpeval_core::DpEvaluator;
    use xpeval_syntax::{classify, Fragment};

    fn answer(red: &IteratedPredicateReduction) -> bool {
        // Iterated predicates + last() put the query outside Core XPath, so
        // the general DP evaluator does the checking here.
        let v = DpEvaluator::new(&red.document, &red.query)
            .evaluate()
            .unwrap();
        let nodes = v.expect_nodes();
        assert!(nodes.len() <= 1);
        if let Some(&node) = nodes.first() {
            assert_eq!(node, red.result_node);
        }
        !nodes.is_empty()
    }

    #[test]
    fn carry_bit_truth_table_via_iterated_predicates() {
        let circuit = carry_bit_circuit();
        for a in 0..4u8 {
            for b in 0..4u8 {
                let inputs = carry_bit_inputs(a, b);
                let expected = circuit.evaluate(&inputs).unwrap();
                let red = circuit_to_iterated_pwf(&circuit, &inputs).unwrap();
                assert_eq!(answer(&red), expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn query_has_no_negation_and_bounded_predicate_sequences() {
        let circuit = carry_bit_circuit();
        let red = circuit_to_iterated_pwf(&circuit, &carry_bit_inputs(2, 1)).unwrap();
        let f = xpeval_syntax::fragment::features(&red.query);
        assert_eq!(f.negation_count, 0, "the construction must not use not()");
        // Corollary 5.8: predicate sequences of length exactly two suffice.
        assert_eq!(f.max_predicate_sequence, 2);
        // With iterated predicates the query is (only) WF / full XPath, not
        // pWF — that is the point of Theorem 5.7.
        let frag = classify(&red.query).fragment;
        assert!(frag > Fragment::PWF, "classified as {frag}");
    }

    #[test]
    fn equivalences_of_the_proof() {
        // Equivalence (1): ϕ_k and ϕ'_k agree on v_1 … v_{M+N}.  We verify
        // the end-to-end consequence: both reductions give the same answer
        // on every input of the carry-bit circuit (the stronger per-gate
        // claim is covered by the Theorem 3.2 test).
        let circuit = carry_bit_circuit();
        for bits in 0..16u8 {
            let inputs = [bits & 8 != 0, bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            let core =
                crate::circuit_to_core::circuit_to_core_xpath(&circuit, &inputs, false).unwrap();
            let iterated = circuit_to_iterated_pwf(&circuit, &inputs).unwrap();
            let core_answer = {
                let v = DpEvaluator::new(&core.document, &core.query)
                    .evaluate()
                    .unwrap();
                !v.expect_nodes().is_empty()
            };
            assert_eq!(answer(&iterated), core_answer, "bits {bits:04b}");
        }
    }

    #[test]
    fn witness_nodes_and_aux_label_are_present() {
        let circuit = carry_bit_circuit();
        let red = circuit_to_iterated_pwf(&circuit, &carry_bit_inputs(0, 0)).unwrap();
        let d = &red.document;
        let v0 = d.first_child(d.root()).unwrap();
        assert_eq!(d.count_children_named(v0, LABEL_AUX), 1);
        // Every gate node has a witness child labeled W.
        for (i, &v) in red.gate_nodes.iter().enumerate() {
            let wit = format!("wit{}", i + 1);
            assert_eq!(d.count_children_named(v, &wit), 1, "gate {}", i + 1);
        }
        assert_eq!(d.count_children_named(v0, "wit0"), 1);
    }

    #[test]
    fn random_circuits_property() {
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..12 {
            let (circuit, inputs) = random_monotone_circuit(&mut rng, 3, 6);
            let expected = circuit.evaluate(&inputs).unwrap();
            let red = circuit_to_iterated_pwf(&circuit, &inputs).unwrap();
            assert_eq!(answer(&red), expected, "round {round}");
        }
    }

    #[test]
    fn wrong_input_count_is_an_error() {
        let circuit = carry_bit_circuit();
        assert!(matches!(
            circuit_to_iterated_pwf(&circuit, &[true, false]),
            Err(CircuitError::WrongInputCount { .. })
        ));
    }
}
