//! The data-access layer the evaluators are written against.
//!
//! Every evaluation strategy in the workspace consumes documents through the
//! [`AxisSource`] trait rather than through `&Document` directly.  Two
//! implementations exist:
//!
//! * [`Document`] — the compatibility path: every method falls back to the
//!   plain tree walks the document already supports, so all existing
//!   `&Document` call sites keep working unchanged;
//! * [`PreparedDocument`] — the fast path: axis enumeration and name tests
//!   are answered from the prepare-once indexes (tag lists, per-parent tag
//!   buckets, preorder subtree intervals, precomputed document order).
//!
//! The trait is deliberately small — it covers exactly the primitives the
//! evaluators' inner loops use, so a new index only has to override the
//! methods it accelerates.  The indexed [`AxisSource::axis_step`] covers the
//! descendant axes (tag-list range), the child axis (per-parent bucket) and
//! the `following`/`preceding` axes (preorder-interval complements: each
//! axis is at most two range scans over document order).  Positional child
//! predicates short-circuit through [`AxisSource::positional_child_step`].

use crate::axes::{Axis, NodeTest};
use crate::node::{Document, NodeId};
use crate::prepared::{PreparedDocument, TagId};
use std::borrow::Cow;

/// Child steps on nodes with at most this many children walk the sibling
/// chain even when a per-parent tag bucket exists: below it, two binary
/// searches into the whole tag list (each probe chasing parent and preorder
/// lookups) cost more than comparing a handful of child tags directly.
/// Above it — wide nodes, where the child walk is what hurts — the bucket
/// wins.
pub const CHILD_BUCKET_MIN_CHILDREN: usize = 16;

/// Result of resolving an element tag name against an [`AxisSource`]
/// ([`AxisSource::resolve_tag`]).
///
/// Plan specialization uses this to bake interned [`TagId`]s into a query's
/// per-step name tests ([`NodeTest::Resolved`]) so that artifact-hit
/// evaluation never hashes tag strings mid-plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagResolution {
    /// The source has no tag index; name tests must compare strings.
    NoIndex,
    /// The source is indexed and no element in it carries the tag.
    Absent,
    /// The interned id of the tag in this source's tag table.
    Id(TagId),
}

/// A positional predicate an index can answer directly: `[k]` (equivalently
/// `[position() = k]`) or `[last()]` (equivalently `[position() = last()]`)
/// on a forward axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PositionalPick {
    /// The `k`-th candidate, 1-based.
    Nth(usize),
    /// The last candidate.
    Last,
}

/// What a storage backend can answer without falling back to tree walks.
///
/// Plan selection consults this instead of downcasting to a concrete source
/// type: a backend that cannot serve a capability gets an *explicitly*
/// degraded plan (visible in the compile report) rather than a silently slow
/// one.  Capabilities describe index availability, not correctness — every
/// [`AxisSource`] answers every query correctly through the defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceCapabilities {
    /// Tag-name lists and per-parent buckets exist
    /// ([`AxisSource::elements_named`], [`AxisSource::resolve_tag`]).
    pub tag_index: bool,
    /// A precomputed document-order table exists (borrowing
    /// [`AxisSource::document_order`], required by the parallel evaluator's
    /// partitioning to be cheap).
    pub order_table: bool,
    /// Preorder subtree intervals are precomputed
    /// ([`AxisSource::subtree_interval`]).
    pub intervals: bool,
    /// Positional child tables exist
    /// ([`AxisSource::positional_child_step`]).
    pub positional: bool,
}

impl SourceCapabilities {
    /// No index structures at all.
    pub const NONE: SourceCapabilities = SourceCapabilities {
        tag_index: false,
        order_table: false,
        intervals: false,
        positional: false,
    };

    /// Every index a [`PreparedDocument`] carries.
    pub const FULL: SourceCapabilities = SourceCapabilities {
        tag_index: true,
        order_table: true,
        intervals: true,
        positional: true,
    };

    /// The capability set a plain unprepared [`Document`] reports: no
    /// indexes, but document order is still derivable in one traversal
    /// (which is why unprepared parallel evaluation remains worthwhile).
    pub const UNINDEXED: SourceCapabilities = SourceCapabilities {
        tag_index: false,
        order_table: true,
        intervals: false,
        positional: false,
    };

    /// Bitwise-and of two capability sets.
    pub fn intersect(self, other: SourceCapabilities) -> SourceCapabilities {
        SourceCapabilities {
            tag_index: self.tag_index && other.tag_index,
            order_table: self.order_table && other.order_table,
            intervals: self.intervals && other.intervals,
            positional: self.positional && other.positional,
        }
    }
}

/// Access to a document's nodes and axis relations, with or without
/// prepared indexes.
///
/// `Sync` is a supertrait because the parallel evaluator shares one source
/// across worker threads; both implementations are immutable, so this is
/// free.
pub trait AxisSource: Sync {
    /// The underlying document.
    fn document(&self) -> &Document;

    /// Total number of nodes, `|D|`.
    #[inline]
    fn node_count(&self) -> usize {
        self.document().len()
    }

    /// Nodes reachable from `n` via `axis` that match `test`, in document
    /// order — one location step without predicates.
    fn axis_step(&self, n: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        self.document().axis_step(n, axis, test)
    }

    /// Whether at least one node is reachable from `n` via `axis` matching
    /// `test` — the existence form of [`AxisSource::axis_step`], used by
    /// predicate decisions that do not need the node list.  The default
    /// walks the axis lazily; indexed sources answer from their tag lists
    /// without allocating.
    fn step_exists(&self, n: NodeId, axis: Axis, test: &NodeTest) -> bool {
        let doc = self.document();
        doc.axis_iter(n, axis)
            .any(|m| doc.matches_on_axis(m, test, axis))
    }

    /// All nodes in document order.  Borrowed from the index when prepared,
    /// computed (allocating) otherwise.
    fn document_order(&self) -> Cow<'_, [NodeId]> {
        Cow::Owned(self.document().document_order())
    }

    /// The elements with tag `name` in document order, when an index is
    /// available; `None` means the caller must scan.
    fn elements_named(&self, _name: &str) -> Option<&[NodeId]> {
        None
    }

    /// Resolves an element tag name against this source's tag table, when
    /// it has one.  The default ([`TagResolution::NoIndex`]) tells plan
    /// specialization that name tests cannot be pre-resolved here.
    fn resolve_tag(&self, _name: &str) -> TagResolution {
        TagResolution::NoIndex
    }

    /// The elements carrying the interned tag `id` in document order, when
    /// this source minted the id; `None` means the caller must fall back to
    /// the string form.
    fn elements_by_tag(&self, _id: TagId) -> Option<&[NodeId]> {
        None
    }

    /// The half-open preorder interval `[pre, end)` covering the subtree of
    /// `n`, when an index has it precomputed; `None` means the caller must
    /// walk (e.g. via sibling/parent links) to find the subtree boundary.
    fn subtree_interval(&self, _n: NodeId) -> Option<(u32, u32)> {
        None
    }

    /// Applies the positional step `child::test[pick]` from `n` directly
    /// from an index, returning the selected nodes (zero or one) in a
    /// ready-to-use candidate list.  `None` means no index can answer it and
    /// the caller must enumerate the axis and filter by position.
    fn positional_child_step(
        &self,
        _n: NodeId,
        _test: &NodeTest,
        _pick: PositionalPick,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// The index structures this source can serve.  Plan selection degrades
    /// strategies that depend on a missing capability (see
    /// `CompiledQuery::strategy_for_source` in `xpeval-core`).
    fn capabilities(&self) -> SourceCapabilities {
        SourceCapabilities::UNINDEXED
    }
}

impl AxisSource for Document {
    #[inline]
    fn document(&self) -> &Document {
        self
    }
}

impl AxisSource for PreparedDocument {
    #[inline]
    fn document(&self) -> &Document {
        PreparedDocument::document(self)
    }

    fn axis_step(&self, n: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let doc = self.document();
        // Tag-name tests are the indexed fast paths: descendant axes are a
        // tag-list range, child steps hit the per-parent bucket, and the
        // following/preceding complements are range scans bounded by the
        // preorder subtree interval.  Everything else falls back to the
        // document's walks.  A plain `Name` test pays one hash to reach the
        // tag table; a `Resolved` test (specialized plans) carries its
        // interned id and skips the hash entirely — `id == None` means the
        // tag was absent at specialization time, so the indexed axes below
        // are empty by construction.
        let interned: Option<Option<TagId>> = match test {
            NodeTest::Name(name) => Some(self.tag_id(name)),
            NodeTest::Resolved { id, .. } => Some(*id),
            _ => None,
        };
        if let Some(id) = interned {
            match axis {
                Axis::Descendant => {
                    return id
                        .map(|id| self.descendants_by_tag(n, id).to_vec())
                        .unwrap_or_default()
                }
                Axis::DescendantOrSelf => {
                    let below = id.map(|id| self.descendants_by_tag(n, id)).unwrap_or(&[]);
                    let mut out = Vec::with_capacity(below.len() + 1);
                    if doc.matches_on_axis(n, test, axis) {
                        out.push(n);
                    }
                    out.extend_from_slice(below);
                    return out;
                }
                // Adaptive: the bucket pays off on wide nodes only; narrow
                // nodes fall through to the sibling walk below.
                Axis::Child if self.child_count(n) > CHILD_BUCKET_MIN_CHILDREN => {
                    return id
                        .map(|id| self.children_by_tag(n, id).to_vec())
                        .unwrap_or_default()
                }
                // The interval complement describes following/preceding only
                // for tree nodes: an attribute's notional subtree sits inside
                // its owner, so attribute context nodes take the walk.
                Axis::Following if !doc.kind(n).is_attribute() => {
                    return id
                        .map(|id| self.following_by_tag(n, id).to_vec())
                        .unwrap_or_default()
                }
                Axis::Preceding if !doc.kind(n).is_attribute() => {
                    return id
                        .map(|id| self.preceding_by_tag(n, id))
                        .unwrap_or_default()
                }
                _ => {}
            }
        }
        match axis {
            Axis::Child => {
                // The child-count table sizes the candidate list exactly, so
                // the hot child-step path never reallocates.
                let mut out = Vec::with_capacity(self.child_count(n));
                let mut c = doc.first_child(n);
                while let Some(ch) = c {
                    if doc.matches_on_axis(ch, test, axis) {
                        out.push(ch);
                    }
                    c = doc.next_sibling(ch);
                }
                out
            }
            // Non-name tests on the complement axes: one range scan over the
            // precomputed document order on each side of the subtree
            // interval, skipping attribute nodes (they are on neither axis)
            // and, for preceding, the ancestors of `n` (exactly the nodes
            // whose interval still covers `n`).
            Axis::Following if !doc.kind(n).is_attribute() => {
                let (_, end) = self.pre_interval(n);
                let order = self.order();
                let lo = order.partition_point(|&m| doc.pre(m) < end);
                order[lo..]
                    .iter()
                    .copied()
                    .filter(|&m| !doc.kind(m).is_attribute() && doc.matches_on_axis(m, test, axis))
                    .collect()
            }
            Axis::Preceding if !doc.kind(n).is_attribute() => {
                let (pre, _) = self.pre_interval(n);
                let order = self.order();
                let hi = order.partition_point(|&m| doc.pre(m) < pre);
                order[..hi]
                    .iter()
                    .copied()
                    .filter(|&m| {
                        let (_, m_end) = self.pre_interval(m);
                        m_end <= pre
                            && !doc.kind(m).is_attribute()
                            && doc.matches_on_axis(m, test, axis)
                    })
                    .collect()
            }
            _ => doc.axis_step(n, axis, test),
        }
    }

    fn step_exists(&self, n: NodeId, axis: Axis, test: &NodeTest) -> bool {
        // Mirrors [`AxisSource::axis_step`]'s dispatch exactly (same arms,
        // same `id == None` emptiness) but answers existence by slicing the
        // tag lists — no candidate vector is ever built.  The fall-through
        // cases walk the axis lazily instead of collecting it.
        let doc = self.document();
        let interned: Option<Option<TagId>> = match test {
            NodeTest::Name(name) => Some(self.tag_id(name)),
            NodeTest::Resolved { id, .. } => Some(*id),
            _ => None,
        };
        if let Some(id) = interned {
            match axis {
                Axis::Descendant => {
                    return id.is_some_and(|id| !self.descendants_by_tag(n, id).is_empty())
                }
                Axis::DescendantOrSelf => {
                    return doc.matches_on_axis(n, test, axis)
                        || id.is_some_and(|id| !self.descendants_by_tag(n, id).is_empty())
                }
                Axis::Child if self.child_count(n) > CHILD_BUCKET_MIN_CHILDREN => {
                    return id.is_some_and(|id| !self.children_by_tag(n, id).is_empty())
                }
                Axis::Following if !doc.kind(n).is_attribute() => {
                    return id.is_some_and(|id| !self.following_by_tag(n, id).is_empty())
                }
                Axis::Preceding if !doc.kind(n).is_attribute() => {
                    // Prefix scan without materializing the list: any
                    // earlier element of the tag whose subtree ends at or
                    // before n is on the preceding axis.
                    return id.is_some_and(|id| {
                        let list = self.elements_by_tag(id);
                        let pre = doc.pre(n);
                        let hi = list.partition_point(|&m| doc.pre(m) < pre);
                        list[..hi].iter().any(|&m| self.pre_interval(m).1 <= pre)
                    });
                }
                _ => {}
            }
        }
        doc.axis_iter(n, axis)
            .any(|m| doc.matches_on_axis(m, test, axis))
    }

    #[inline]
    fn document_order(&self) -> Cow<'_, [NodeId]> {
        Cow::Borrowed(self.order())
    }

    #[inline]
    fn elements_named(&self, name: &str) -> Option<&[NodeId]> {
        Some(PreparedDocument::elements_named(self, name))
    }

    #[inline]
    fn resolve_tag(&self, name: &str) -> TagResolution {
        match self.tag_id(name) {
            Some(id) => TagResolution::Id(id),
            None => TagResolution::Absent,
        }
    }

    #[inline]
    fn elements_by_tag(&self, id: TagId) -> Option<&[NodeId]> {
        Some(PreparedDocument::elements_by_tag(self, id))
    }

    #[inline]
    fn subtree_interval(&self, n: NodeId) -> Option<(u32, u32)> {
        Some(self.pre_interval(n))
    }

    fn positional_child_step(
        &self,
        n: NodeId,
        test: &NodeTest,
        pick: PositionalPick,
    ) -> Option<Vec<NodeId>> {
        let doc = self.document();
        let picked = match (test, pick) {
            // Name tests go straight to the per-parent bucket: O(log |D|).
            (NodeTest::Name(name), PositionalPick::Nth(k)) => self.nth_child_named(n, name, k),
            (NodeTest::Name(name), PositionalPick::Last) => self.last_child_named(n, name),
            // Pre-resolved tests skip the hash; an absent tag has no
            // matching children by construction.
            (NodeTest::Resolved { id, .. }, PositionalPick::Nth(k)) => {
                id.and_then(|id| self.nth_child_by_tag(n, id, k))
            }
            (NodeTest::Resolved { id, .. }, PositionalPick::Last) => {
                id.and_then(|id| self.last_child_by_tag(n, id))
            }
            // node() candidates are all children: the child-count table
            // rejects out-of-range k in O(1), the walk stops after k links.
            (NodeTest::AnyNode, PositionalPick::Nth(k)) => self.nth_child(n, k),
            (NodeTest::AnyNode, PositionalPick::Last) => doc.last_child(n),
            // Star/text: walk forward to the k-th match (early exit), or
            // backward from the last child to the first match.
            (_, PositionalPick::Nth(k)) => {
                let mut remaining = k;
                let mut c = doc.first_child(n);
                let mut found = None;
                while remaining > 0 {
                    let Some(ch) = c else { break };
                    if doc.matches_on_axis(ch, test, Axis::Child) {
                        remaining -= 1;
                        if remaining == 0 {
                            found = Some(ch);
                        }
                    }
                    c = doc.next_sibling(ch);
                }
                found
            }
            (_, PositionalPick::Last) => {
                let mut c = doc.last_child(n);
                let mut found = None;
                while let Some(ch) = c {
                    if doc.matches_on_axis(ch, test, Axis::Child) {
                        found = Some(ch);
                        break;
                    }
                    c = doc.prev_sibling(ch);
                }
                found
            }
        };
        Some(picked.into_iter().collect())
    }

    #[inline]
    fn capabilities(&self) -> SourceCapabilities {
        SourceCapabilities::FULL
    }
}

/// An [`AxisSource`] adaptor that *removes* capabilities from an inner
/// source.
///
/// Masked capabilities behave exactly like the unprepared-[`Document`]
/// defaults: index probes decline (`None` / [`TagResolution::NoIndex`]) and
/// axis steps fall back to plain tree walks.  This is how backends that
/// persist only a subset of the index tables (and the backend test suite)
/// express "this index does not exist here" without a parallel type
/// hierarchy — and since results must not change, it doubles as a fixture
/// proving plan degradation is purely a performance decision.
#[derive(Debug)]
pub struct CapabilityMask<S> {
    inner: S,
    mask: SourceCapabilities,
}

impl<S: AxisSource> CapabilityMask<S> {
    /// Wraps `inner`, exposing only the capabilities present in both
    /// `inner` and `mask`.
    pub fn new(inner: S, mask: SourceCapabilities) -> Self {
        CapabilityMask { inner, mask }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the mask.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: AxisSource> AxisSource for CapabilityMask<S> {
    #[inline]
    fn document(&self) -> &Document {
        self.inner.document()
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn axis_step(&self, n: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        // The inner fast paths lean on the tag index and the subtree
        // intervals; once either is masked away, be honest and walk.
        let caps = self.capabilities();
        if caps.tag_index && caps.intervals && caps.order_table {
            self.inner.axis_step(n, axis, test)
        } else {
            self.document().axis_step(n, axis, test)
        }
    }

    fn step_exists(&self, n: NodeId, axis: Axis, test: &NodeTest) -> bool {
        let caps = self.capabilities();
        if caps.tag_index && caps.intervals && caps.order_table {
            self.inner.step_exists(n, axis, test)
        } else {
            let doc = self.document();
            doc.axis_iter(n, axis)
                .any(|m| doc.matches_on_axis(m, test, axis))
        }
    }

    fn document_order(&self) -> Cow<'_, [NodeId]> {
        if self.capabilities().order_table {
            self.inner.document_order()
        } else {
            Cow::Owned(self.document().document_order())
        }
    }

    fn elements_named(&self, name: &str) -> Option<&[NodeId]> {
        if self.capabilities().tag_index {
            self.inner.elements_named(name)
        } else {
            None
        }
    }

    fn resolve_tag(&self, name: &str) -> TagResolution {
        if self.capabilities().tag_index {
            self.inner.resolve_tag(name)
        } else {
            TagResolution::NoIndex
        }
    }

    fn elements_by_tag(&self, id: TagId) -> Option<&[NodeId]> {
        if self.capabilities().tag_index {
            self.inner.elements_by_tag(id)
        } else {
            None
        }
    }

    fn subtree_interval(&self, n: NodeId) -> Option<(u32, u32)> {
        if self.capabilities().intervals {
            self.inner.subtree_interval(n)
        } else {
            None
        }
    }

    fn positional_child_step(
        &self,
        n: NodeId,
        test: &NodeTest,
        pick: PositionalPick,
    ) -> Option<Vec<NodeId>> {
        if self.capabilities().positional {
            self.inner.positional_child_step(n, test, pick)
        } else {
            None
        }
    }

    fn capabilities(&self) -> SourceCapabilities {
        self.inner.capabilities().intersect(self.mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xml;

    const XML: &str = r#"<r><a k="1"><b/><c/><b><b/></b></a><b/><c><a/></c></r>"#;

    #[test]
    fn prepared_axis_steps_agree_with_the_document() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let tests = [
            NodeTest::name("a"),
            NodeTest::name("b"),
            NodeTest::name("nosuch"),
            NodeTest::Star,
            NodeTest::AnyNode,
            NodeTest::Text,
        ];
        for n in doc.all_nodes() {
            for axis in Axis::CORE.into_iter().chain([Axis::Attribute]) {
                for test in &tests {
                    assert_eq!(
                        AxisSource::axis_step(&prepared, n, axis, test),
                        AxisSource::axis_step(&doc, n, axis, test),
                        "{n:?} {axis} {test}"
                    );
                }
            }
        }
    }

    #[test]
    fn step_exists_agrees_with_axis_step_emptiness() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let masked = CapabilityMask::new(prepared.clone(), SourceCapabilities::NONE);
        let tests = [
            NodeTest::name("a"),
            NodeTest::name("b"),
            NodeTest::name("k"),
            NodeTest::name("nosuch"),
            NodeTest::Resolved {
                name: "b".into(),
                id: prepared.tag_id("b"),
            },
            NodeTest::Resolved {
                name: "b".into(),
                id: None,
            },
            NodeTest::Star,
            NodeTest::AnyNode,
            NodeTest::Text,
        ];
        for n in doc.all_nodes() {
            for axis in Axis::CORE.into_iter().chain([Axis::Attribute]) {
                for test in &tests {
                    // Each source is held to its own axis_step: the
                    // existence form must agree with the list form
                    // source-by-source (a `Resolved { id: None }` test is
                    // empty through an index but matches by string through
                    // a walk, so sources legitimately differ among
                    // themselves).
                    assert_eq!(
                        AxisSource::step_exists(&doc, n, axis, test),
                        !AxisSource::axis_step(&doc, n, axis, test).is_empty(),
                        "doc: {n:?} {axis} {test}"
                    );
                    assert_eq!(
                        AxisSource::step_exists(&prepared, n, axis, test),
                        !AxisSource::axis_step(&prepared, n, axis, test).is_empty(),
                        "prepared: {n:?} {axis} {test}"
                    );
                    assert_eq!(
                        AxisSource::step_exists(&masked, n, axis, test),
                        !AxisSource::axis_step(&masked, n, axis, test).is_empty(),
                        "masked: {n:?} {axis} {test}"
                    );
                }
            }
        }
    }

    #[test]
    fn document_order_agrees() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        assert_eq!(
            AxisSource::document_order(&doc).as_ref(),
            AxisSource::document_order(&prepared).as_ref()
        );
        assert!(matches!(
            AxisSource::document_order(&prepared),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn elements_named_is_indexed_only_when_prepared() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        assert!(AxisSource::elements_named(&doc, "b").is_none());
        assert_eq!(AxisSource::elements_named(&prepared, "b").unwrap().len(), 4);
        assert_eq!(AxisSource::node_count(&prepared), doc.len());
    }

    #[test]
    fn subtree_interval_is_indexed_only_when_prepared() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        for n in doc.all_nodes() {
            assert!(AxisSource::subtree_interval(&doc, n).is_none());
            assert_eq!(
                AxisSource::subtree_interval(&prepared, n),
                Some(prepared.pre_interval(n))
            );
        }
    }

    #[test]
    fn positional_child_step_agrees_with_filtering() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let tests = [
            NodeTest::name("b"),
            NodeTest::name("nosuch"),
            NodeTest::Star,
            NodeTest::AnyNode,
            NodeTest::Text,
        ];
        for n in doc.all_nodes() {
            for test in &tests {
                let candidates = doc.axis_step(n, Axis::Child, test);
                for k in 0..=candidates.len() + 1 {
                    let expected: Vec<NodeId> = candidates
                        .get(k.wrapping_sub(1))
                        .copied()
                        .into_iter()
                        .collect();
                    assert_eq!(
                        AxisSource::positional_child_step(
                            &prepared,
                            n,
                            test,
                            PositionalPick::Nth(k)
                        ),
                        Some(expected),
                        "{n:?} {test} [{k}]"
                    );
                }
                let expected: Vec<NodeId> = candidates.last().copied().into_iter().collect();
                assert_eq!(
                    AxisSource::positional_child_step(&prepared, n, test, PositionalPick::Last),
                    Some(expected),
                    "{n:?} {test} [last()]"
                );
                // The plain document declines, signalling the fallback.
                assert!(
                    AxisSource::positional_child_step(&doc, n, test, PositionalPick::Last)
                        .is_none()
                );
            }
        }
    }

    #[test]
    fn capability_sets_reflect_index_availability() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        assert_eq!(
            AxisSource::capabilities(&doc),
            SourceCapabilities::UNINDEXED
        );
        assert_eq!(
            AxisSource::capabilities(&prepared),
            SourceCapabilities::FULL
        );
        assert_eq!(
            SourceCapabilities::FULL.intersect(SourceCapabilities::NONE),
            SourceCapabilities::NONE
        );
    }

    #[test]
    fn capability_mask_declines_masked_probes_but_agrees_on_results() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let masked = CapabilityMask::new(prepared.clone(), SourceCapabilities::NONE);
        assert_eq!(masked.capabilities(), SourceCapabilities::NONE);
        assert!(AxisSource::elements_named(&masked, "b").is_none());
        assert_eq!(masked.resolve_tag("b"), TagResolution::NoIndex);
        for n in doc.all_nodes() {
            assert!(AxisSource::subtree_interval(&masked, n).is_none());
            assert!(AxisSource::positional_child_step(
                &masked,
                n,
                &NodeTest::name("b"),
                PositionalPick::Last
            )
            .is_none());
            for axis in Axis::CORE.into_iter().chain([Axis::Attribute]) {
                assert_eq!(
                    AxisSource::axis_step(&masked, n, axis, &NodeTest::name("b")),
                    AxisSource::axis_step(&prepared, n, axis, &NodeTest::name("b")),
                    "{n:?} {axis}"
                );
            }
        }
        assert!(matches!(AxisSource::document_order(&masked), Cow::Owned(_)));
        assert_eq!(
            AxisSource::document_order(&masked).as_ref(),
            AxisSource::document_order(&prepared).as_ref()
        );
    }

    #[test]
    fn capability_mask_partial_masking_keeps_unmasked_indexes() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let mask = SourceCapabilities {
            positional: false,
            ..SourceCapabilities::FULL
        };
        let masked = CapabilityMask::new(prepared.clone(), mask);
        assert_eq!(masked.capabilities(), mask);
        assert!(AxisSource::elements_named(&masked, "b").is_some());
        assert!(matches!(
            AxisSource::document_order(&masked),
            Cow::Borrowed(_)
        ));
        let inner: &PreparedDocument = masked.inner();
        assert_eq!(inner.node_count(), doc.len());
    }
}
