//! The data-access layer the evaluators are written against.
//!
//! Every evaluation strategy in the workspace consumes documents through the
//! [`AxisSource`] trait rather than through `&Document` directly.  Two
//! implementations exist:
//!
//! * [`Document`] — the compatibility path: every method falls back to the
//!   plain tree walks the document already supports, so all existing
//!   `&Document` call sites keep working unchanged;
//! * [`PreparedDocument`] — the fast path: axis enumeration and name tests
//!   are answered from the prepare-once indexes (tag lists, preorder
//!   subtree intervals, precomputed document order).
//!
//! The trait is deliberately small — it covers exactly the primitives the
//! evaluators' inner loops use, so a new index only has to override the
//! methods it accelerates.

use crate::axes::{Axis, NodeTest};
use crate::node::{Document, NodeId};
use crate::prepared::PreparedDocument;
use std::borrow::Cow;

/// Access to a document's nodes and axis relations, with or without
/// prepared indexes.
///
/// `Sync` is a supertrait because the parallel evaluator shares one source
/// across worker threads; both implementations are immutable, so this is
/// free.
pub trait AxisSource: Sync {
    /// The underlying document.
    fn document(&self) -> &Document;

    /// Total number of nodes, `|D|`.
    #[inline]
    fn node_count(&self) -> usize {
        self.document().len()
    }

    /// Nodes reachable from `n` via `axis` that match `test`, in document
    /// order — one location step without predicates.
    fn axis_step(&self, n: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        self.document().axis_step(n, axis, test)
    }

    /// All nodes in document order.  Borrowed from the index when prepared,
    /// computed (allocating) otherwise.
    fn document_order(&self) -> Cow<'_, [NodeId]> {
        Cow::Owned(self.document().document_order())
    }

    /// The elements with tag `name` in document order, when an index is
    /// available; `None` means the caller must scan.
    fn elements_named(&self, _name: &str) -> Option<&[NodeId]> {
        None
    }
}

impl AxisSource for Document {
    #[inline]
    fn document(&self) -> &Document {
        self
    }
}

impl AxisSource for PreparedDocument {
    #[inline]
    fn document(&self) -> &Document {
        PreparedDocument::document(self)
    }

    fn axis_step(&self, n: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        // The descendant axes with a tag-name test are the indexed fast
        // path: two binary searches into the tag list instead of a subtree
        // walk.  Everything else falls back to the document's walks.
        if let NodeTest::Name(name) = test {
            match axis {
                Axis::Descendant => return self.descendants_named(n, name).to_vec(),
                Axis::DescendantOrSelf => {
                    let below = self.descendants_named(n, name);
                    let mut out = Vec::with_capacity(below.len() + 1);
                    if self.document().matches_on_axis(n, test, axis) {
                        out.push(n);
                    }
                    out.extend_from_slice(below);
                    return out;
                }
                _ => {}
            }
        }
        if axis == Axis::Child {
            // The child-count table sizes the candidate list exactly, so
            // the hot child-step path never reallocates.
            let doc = self.document();
            let mut out = Vec::with_capacity(self.child_count(n));
            let mut c = doc.first_child(n);
            while let Some(ch) = c {
                if doc.matches_on_axis(ch, test, axis) {
                    out.push(ch);
                }
                c = doc.next_sibling(ch);
            }
            return out;
        }
        self.document().axis_step(n, axis, test)
    }

    #[inline]
    fn document_order(&self) -> Cow<'_, [NodeId]> {
        Cow::Borrowed(self.order())
    }

    #[inline]
    fn elements_named(&self, name: &str) -> Option<&[NodeId]> {
        Some(PreparedDocument::elements_named(self, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xml;

    const XML: &str = r#"<r><a k="1"><b/><c/><b><b/></b></a><b/><c><a/></c></r>"#;

    #[test]
    fn prepared_axis_steps_agree_with_the_document() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let tests = [
            NodeTest::name("a"),
            NodeTest::name("b"),
            NodeTest::name("nosuch"),
            NodeTest::Star,
            NodeTest::AnyNode,
            NodeTest::Text,
        ];
        for n in doc.all_nodes() {
            for axis in Axis::CORE.into_iter().chain([Axis::Attribute]) {
                for test in &tests {
                    assert_eq!(
                        AxisSource::axis_step(&prepared, n, axis, test),
                        AxisSource::axis_step(&doc, n, axis, test),
                        "{n:?} {axis} {test}"
                    );
                }
            }
        }
    }

    #[test]
    fn document_order_agrees() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        assert_eq!(
            AxisSource::document_order(&doc).as_ref(),
            AxisSource::document_order(&prepared).as_ref()
        );
        assert!(matches!(
            AxisSource::document_order(&prepared),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn elements_named_is_indexed_only_when_prepared() {
        let doc = parse_xml(XML).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        assert!(AxisSource::elements_named(&doc, "b").is_none());
        assert_eq!(AxisSource::elements_named(&prepared, "b").unwrap().len(), 4);
        assert_eq!(AxisSource::node_count(&prepared), doc.len());
    }
}
