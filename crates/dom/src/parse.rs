//! A small well-formed XML parser.
//!
//! This is intentionally a minimal subset of XML 1.0 sufficient for the
//! examples and workloads of the reproduction: elements, attributes
//! (single- or double-quoted), character data, the five predefined entities,
//! comments, processing instructions (skipped) and an optional XML
//! declaration.  It does not implement DTDs, namespaces or CDATA sections.

use crate::build::DocumentBuilder;
use crate::node::Document;
use std::fmt;

/// Error produced by [`parse_xml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human readable description.
    pub message: String,
}

impl fmt::Display for XmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlParseError {}

struct Parser<'a, 'b> {
    input: &'a [u8],
    pos: usize,
    builder: &'b mut DocumentBuilder,
    open_names: Vec<String>,
}

/// Parses an XML string into a [`Document`].
///
/// ```
/// let doc = xpeval_dom::parse_xml("<a><b x='1'>hi</b><c/></a>").unwrap();
/// assert_eq!(doc.element_count(), 3);
/// ```
pub fn parse_xml(input: &str) -> Result<Document, XmlParseError> {
    let mut builder = DocumentBuilder::new();
    parse_into(input, &mut builder)?;
    Ok(builder.finish())
}

/// Parses an XML document into an existing builder without finishing it.
///
/// This is the building block behind [`parse_xml`] and the XML
/// [`TreeProvider`](crate::provider::TreeProvider): the storage layer owns
/// the builder (and decides when keys are assigned), the parser only feeds
/// events into it.
pub(crate) fn parse_into(input: &str, builder: &mut DocumentBuilder) -> Result<(), XmlParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        builder,
        open_names: Vec::new(),
    };
    p.skip_prolog()?;
    p.parse_element()?;
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.error("trailing content after document element"));
    }
    if !p.open_names.is_empty() {
        return Err(p.error("unclosed element at end of input"));
    }
    Ok(())
}

impl<'a, 'b> Parser<'a, 'b> {
    fn error(&self, msg: impl Into<String>) -> XmlParseError {
        XmlParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", c as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlParseError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(rel) => self.pos += rel + 2,
                None => return Err(self.error("unterminated XML declaration")),
            }
        }
        self.skip_misc();
        Ok(())
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.input[self.pos + 4..]
                    .windows(3)
                    .position(|w| w == b"-->")
                {
                    Some(rel) => self.pos += 4 + rel + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<(), XmlParseError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        self.builder.open_element(name.clone());
        self.open_names.push(name);
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.parse_content()?;
                    return Ok(());
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    self.builder.close_element();
                    self.open_names.pop();
                    return Ok(());
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .bump()
                        .ok_or_else(|| self.error("unexpected end in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.error("attribute value must be quoted"));
                    }
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.expect(quote)?;
                    self.builder.attribute(aname, unescape(&raw));
                }
                None => return Err(self.error("unexpected end inside start tag")),
            }
        }
    }

    fn parse_content(&mut self) -> Result<(), XmlParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unexpected end of input inside element")),
                Some(b'<') => {
                    if !text.trim().is_empty() {
                        self.builder.text(unescape(&text));
                    }
                    text.clear();
                    if self.starts_with("</") {
                        self.pos += 2;
                        let name = self.parse_name()?;
                        self.skip_ws();
                        self.expect(b'>')?;
                        let expected = self.open_names.pop().unwrap_or_default();
                        if name != expected {
                            return Err(self.error(format!(
                                "mismatched end tag: expected </{expected}>, found </{name}>"
                            )));
                        }
                        self.builder.close_element();
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        match self.input[self.pos + 4..]
                            .windows(3)
                            .position(|w| w == b"-->")
                        {
                            Some(rel) => self.pos += 4 + rel + 3,
                            None => return Err(self.error("unterminated comment")),
                        }
                    } else if self.starts_with("<?") {
                        match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                            Some(rel) => self.pos += rel + 2,
                            None => return Err(self.error("unterminated processing instruction")),
                        }
                    } else {
                        self.parse_element()?;
                    }
                }
                Some(_) => {
                    text.push(self.bump().unwrap() as char);
                }
            }
        }
    }
}

/// Replaces the five predefined XML entities.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, NodeTest};

    #[test]
    fn parses_simple_document() {
        let doc = parse_xml("<a><b>text</b><c/></a>").unwrap();
        assert_eq!(doc.element_count(), 3);
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.name(a), Some("a"));
        assert_eq!(doc.string_value(a), "text");
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let doc = parse_xml(r#"<a x="1" y='two'/>"#).unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.attribute_value(a, "x"), Some("1"));
        assert_eq!(doc.attribute_value(a, "y"), Some("two"));
    }

    #[test]
    fn parses_declaration_comments_and_pis() {
        let doc = parse_xml(
            "<?xml version=\"1.0\"?><!-- top --><?pi data?><root><!-- in --><a/></root><!-- after -->",
        )
        .unwrap();
        assert_eq!(doc.element_count(), 2);
    }

    #[test]
    fn unescapes_entities() {
        let doc = parse_xml("<a k=\"&lt;x&gt;\">&amp;hi&apos;</a>").unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.attribute_value(a, "k"), Some("<x>"));
        assert_eq!(doc.string_value(a), "&hi'");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse_xml("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        let kids = doc.axis_step(a, Axis::Child, &NodeTest::AnyNode);
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn nested_structure_and_axes() {
        let doc = parse_xml("<a><b><c><d/></c></b></a>").unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        let ds = doc.axis_step(a, Axis::Descendant, &NodeTest::name("d"));
        assert_eq!(ds.len(), 1);
        assert_eq!(doc.depth(ds[0]), 4);
    }

    #[test]
    fn error_on_mismatched_tags() {
        let err = parse_xml("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn error_on_trailing_garbage() {
        let err = parse_xml("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn error_on_unterminated_document() {
        assert!(parse_xml("<a><b>").is_err());
        assert!(parse_xml("<a").is_err());
        assert!(parse_xml("").is_err());
    }

    #[test]
    fn error_on_unquoted_attribute() {
        let err = parse_xml("<a k=v/>").unwrap_err();
        assert!(err.message.contains("quoted"), "{err}");
    }

    #[test]
    fn error_display_contains_offset() {
        let err = parse_xml("<a k=v/>").unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("byte"));
    }
}
