//! Flat-column interchange form of a [`PreparedDocument`].
//!
//! The arena layout ([`Document`]) and the prepared index tables are linked,
//! chunked and interned — great to evaluate against, wrong to persist.
//! [`RawColumns`] is the same information flattened into plain `u32`
//! columns plus one deduplicated string table: exactly the shape a
//! byte-oriented backend (the snapshot format in `xpeval-backends`) can
//! write and reload without walking a tree.
//!
//! The round trip is exact: `to_columns` followed by [`RawColumns::
//! into_prepared`] reproduces the same [`NodeId`]s, ordering keys and index
//! tables, so plans and node sets mean the same thing against the rebuilt
//! document.  `into_prepared` *validates* before trusting anything — column
//! lengths, id bounds, prefix monotonicity, document-order sortedness — so a
//! decoder feeding it corrupted tables gets an error, not a panic deep in an
//! evaluator.

use crate::node::{Document, NodeData, NodeId, NodeKeys, NodeKind};
use crate::prepared::{PreparedDocument, TagEntry};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Sentinel for "no node" / "no string" in the `u32` columns.
pub const RAW_NONE: u32 = u32::MAX;

/// Node-kind codes used by the `kind` column.
pub const RAW_KIND_ROOT: u32 = 0;
/// Element node code.
pub const RAW_KIND_ELEMENT: u32 = 1;
/// Text node code.
pub const RAW_KIND_TEXT: u32 = 2;
/// Attribute node code.
pub const RAW_KIND_ATTRIBUTE: u32 = 3;

/// Error produced when [`RawColumns::into_prepared`] rejects inconsistent
/// tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawColumnsError {
    /// What failed to validate.
    pub message: String,
}

impl RawColumnsError {
    fn new(message: impl Into<String>) -> Self {
        RawColumnsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RawColumnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid raw columns: {}", self.message)
    }
}

impl std::error::Error for RawColumnsError {}

/// A [`PreparedDocument`] flattened into plain columns.
///
/// Per-node columns are indexed by arena slot (so detached slots from
/// earlier in-place edits survive the round trip); flat lists carry their
/// own prefix tables.  All node references are raw arena indexes with
/// [`RAW_NONE`] for absent links; strings are indexes into `strings`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawColumns {
    /// Deduplicated string table (tag names, attribute names/values, text).
    pub strings: Vec<String>,
    /// Node kind codes (`RAW_KIND_*`), one per arena slot.
    pub kind: Vec<u32>,
    /// Element/attribute name as a string index ([`RAW_NONE`] otherwise).
    pub name_idx: Vec<u32>,
    /// Text content / attribute value as a string index ([`RAW_NONE`]
    /// otherwise).
    pub value_idx: Vec<u32>,
    /// Parent links ([`RAW_NONE`] for the root and detached slots).
    pub parent: Vec<u32>,
    /// First-child links.
    pub first_child: Vec<u32>,
    /// Last-child links.
    pub last_child: Vec<u32>,
    /// Next-sibling links.
    pub next_sibling: Vec<u32>,
    /// Previous-sibling links.
    pub prev_sibling: Vec<u32>,
    /// Prefix table into `attr_list`, length `n + 1`: slot `i` owns
    /// `attr_list[attr_start[i]..attr_start[i + 1]]`.
    pub attr_start: Vec<u32>,
    /// Flattened per-element attribute node lists.
    pub attr_list: Vec<u32>,
    /// Preorder ordering keys.
    pub pre: Vec<u32>,
    /// Postorder ordering keys.
    pub post: Vec<u32>,
    /// Depths.
    pub depth: Vec<u32>,
    /// Attached nodes in document order.
    pub order: Vec<u32>,
    /// Exclusive subtree-interval ends, per arena slot.
    pub subtree_end: Vec<u32>,
    /// 1-based sibling positions, per arena slot.
    pub sibling_pos: Vec<u32>,
    /// Child counts, per arena slot.
    pub child_count: Vec<u32>,
    /// Tag table: tag name as a string index, per [`crate::intern::TagId`].
    pub tag_name_idx: Vec<u32>,
    /// Prefix table into `tag_elems`/`tag_byparent`, length `t + 1`.
    pub tag_elem_start: Vec<u32>,
    /// Flattened per-tag element lists (document order).
    pub tag_elems: Vec<u32>,
    /// Flattened per-tag element lists (parent-bucket order).
    pub tag_byparent: Vec<u32>,
}

fn opt(link: Option<NodeId>) -> u32 {
    link.map_or(RAW_NONE, |n| n.0)
}

struct Interner {
    table: Vec<String>,
    seen: HashMap<String, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            table: Vec::new(),
            seen: HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        match self.seen.get(s) {
            Some(&ix) => ix,
            None => {
                let ix = self.table.len() as u32;
                self.table.push(s.to_string());
                self.seen.insert(s.to_string(), ix);
                ix
            }
        }
    }
}

impl RawColumns {
    /// Flattens `prepared` (document, links, keys and every index table)
    /// into columns.  O(|D|).
    pub fn from_prepared(prepared: &PreparedDocument) -> RawColumns {
        let doc = prepared.document();
        let n = doc.len();
        let mut strings = Interner::new();
        let mut out = RawColumns::default();
        out.kind.reserve(n);
        for i in 0..n {
            let id = NodeId(i as u32);
            let data = doc.data(id);
            let (kind, name_ix, value_ix) = match &data.kind {
                NodeKind::Root => (RAW_KIND_ROOT, RAW_NONE, RAW_NONE),
                NodeKind::Element { name } => (RAW_KIND_ELEMENT, strings.intern(name), RAW_NONE),
                NodeKind::Text { text } => (RAW_KIND_TEXT, RAW_NONE, strings.intern(text)),
                NodeKind::Attribute { name, value } => (
                    RAW_KIND_ATTRIBUTE,
                    strings.intern(name),
                    strings.intern(value),
                ),
            };
            out.kind.push(kind);
            out.name_idx.push(name_ix);
            out.value_idx.push(value_ix);
            out.parent.push(opt(data.parent));
            out.first_child.push(opt(data.first_child));
            out.last_child.push(opt(data.last_child));
            out.next_sibling.push(opt(data.next_sibling));
            out.prev_sibling.push(opt(data.prev_sibling));
            out.attr_start.push(out.attr_list.len() as u32);
            out.attr_list.extend(data.attrs().iter().map(|a| a.0));
            out.pre.push(doc.pre(id));
            out.post.push(doc.post(id));
            out.depth.push(doc.depth(id));
        }
        out.attr_start.push(out.attr_list.len() as u32);
        out.order = prepared.order().iter().map(|n| n.0).collect();
        out.subtree_end = prepared.subtree_end.clone();
        out.sibling_pos = prepared.sibling_pos.clone();
        out.child_count = prepared.child_count.clone();
        for entry in &prepared.tags {
            out.tag_name_idx.push(strings.intern(&entry.name));
            out.tag_elem_start.push(out.tag_elems.len() as u32);
            out.tag_elems.extend(entry.elements.iter().map(|n| n.0));
            out.tag_byparent.extend(entry.by_parent.iter().map(|n| n.0));
        }
        out.tag_elem_start.push(out.tag_elems.len() as u32);
        out.strings = strings.table;
        out
    }

    fn validate(&self) -> Result<(), RawColumnsError> {
        let n = self.kind.len();
        let per_slot: [(&str, usize); 13] = [
            ("name_idx", self.name_idx.len()),
            ("value_idx", self.value_idx.len()),
            ("parent", self.parent.len()),
            ("first_child", self.first_child.len()),
            ("last_child", self.last_child.len()),
            ("next_sibling", self.next_sibling.len()),
            ("prev_sibling", self.prev_sibling.len()),
            ("pre", self.pre.len()),
            ("post", self.post.len()),
            ("depth", self.depth.len()),
            ("subtree_end", self.subtree_end.len()),
            ("sibling_pos", self.sibling_pos.len()),
            ("child_count", self.child_count.len()),
        ];
        for (name, len) in per_slot {
            if len != n {
                return Err(RawColumnsError::new(format!(
                    "column {name} has length {len}, expected {n}"
                )));
            }
        }
        if n == 0 {
            return Err(RawColumnsError::new("no nodes (missing root)"));
        }
        if self.kind[0] != RAW_KIND_ROOT {
            return Err(RawColumnsError::new("slot 0 is not the root"));
        }
        if self.kind[1..].contains(&RAW_KIND_ROOT) {
            return Err(RawColumnsError::new("root code on a non-root slot"));
        }
        // Link columns may carry the "no node" sentinel; flat node lists
        // (attributes, order, tag lists) must name real slots.
        let link_in_bounds = |col: &str, list: &[u32]| -> Result<(), RawColumnsError> {
            match list.iter().find(|&&v| v != RAW_NONE && v as usize >= n) {
                Some(v) => Err(RawColumnsError::new(format!(
                    "column {col} references node {v} out of bounds ({n} slots)"
                ))),
                None => Ok(()),
            }
        };
        let id_in_bounds = |col: &str, list: &[u32]| -> Result<(), RawColumnsError> {
            match list.iter().find(|&&v| v as usize >= n) {
                Some(v) => Err(RawColumnsError::new(format!(
                    "column {col} references node {v} out of bounds ({n} slots)"
                ))),
                None => Ok(()),
            }
        };
        link_in_bounds("parent", &self.parent)?;
        link_in_bounds("first_child", &self.first_child)?;
        link_in_bounds("last_child", &self.last_child)?;
        link_in_bounds("next_sibling", &self.next_sibling)?;
        link_in_bounds("prev_sibling", &self.prev_sibling)?;
        id_in_bounds("attr_list", &self.attr_list)?;
        id_in_bounds("order", &self.order)?;
        id_in_bounds("tag_elems", &self.tag_elems)?;
        id_in_bounds("tag_byparent", &self.tag_byparent)?;
        let s = self.strings.len() as u32;
        for (col, list) in [("name_idx", &self.name_idx), ("value_idx", &self.value_idx)] {
            if list.iter().any(|&v| v != RAW_NONE && v >= s) {
                return Err(RawColumnsError::new(format!(
                    "column {col} references a string out of bounds ({s} strings)"
                )));
            }
        }
        for i in 0..n {
            let kind = self.kind[i];
            if kind > RAW_KIND_ATTRIBUTE {
                return Err(RawColumnsError::new(format!("unknown kind code {kind}")));
            }
            let needs_name = kind == RAW_KIND_ELEMENT || kind == RAW_KIND_ATTRIBUTE;
            if needs_name && self.name_idx[i] == RAW_NONE {
                return Err(RawColumnsError::new(format!("slot {i} is missing a name")));
            }
            let needs_value = kind == RAW_KIND_TEXT || kind == RAW_KIND_ATTRIBUTE;
            if needs_value && self.value_idx[i] == RAW_NONE {
                return Err(RawColumnsError::new(format!("slot {i} is missing a value")));
            }
        }
        let prefix_ok = |name: &str, prefix: &[u32], expect_len: usize, flat_len: usize| {
            if prefix.len() != expect_len {
                return Err(RawColumnsError::new(format!(
                    "prefix table {name} has length {}, expected {expect_len}",
                    prefix.len()
                )));
            }
            if prefix.windows(2).any(|w| w[0] > w[1]) {
                return Err(RawColumnsError::new(format!(
                    "prefix table {name} is not monotone"
                )));
            }
            if prefix.first() != Some(&0) || *prefix.last().unwrap() as usize != flat_len {
                return Err(RawColumnsError::new(format!(
                    "prefix table {name} does not cover its flat list"
                )));
            }
            Ok(())
        };
        prefix_ok("attr_start", &self.attr_start, n + 1, self.attr_list.len())?;
        let t = self.tag_name_idx.len();
        prefix_ok(
            "tag_elem_start",
            &self.tag_elem_start,
            t + 1,
            self.tag_elems.len(),
        )?;
        if self.tag_byparent.len() != self.tag_elems.len() {
            return Err(RawColumnsError::new(
                "tag_byparent and tag_elems lengths differ",
            ));
        }
        if self.tag_name_idx.iter().any(|&v| v >= s) {
            return Err(RawColumnsError::new(
                "tag_name_idx references a string out of bounds",
            ));
        }
        if self.order.len() > n {
            return Err(RawColumnsError::new("order lists more nodes than exist"));
        }
        if self.order.first() != Some(&0) {
            return Err(RawColumnsError::new("order does not start at the root"));
        }
        if self
            .order
            .windows(2)
            .any(|w| self.pre[w[0] as usize] >= self.pre[w[1] as usize])
        {
            return Err(RawColumnsError::new(
                "order is not strictly sorted by preorder key",
            ));
        }
        Ok(())
    }

    /// Validates the tables and rebuilds the [`PreparedDocument`] they
    /// describe — arena, links, ordering keys and index tables — without
    /// re-running preparation.  O(|D|) copying, no hashing beyond string
    /// interning.
    pub fn into_prepared(self) -> Result<PreparedDocument, RawColumnsError> {
        self.validate()?;
        let n = self.kind.len();
        let interned: Vec<Arc<str>> = self.strings.iter().map(|s| Arc::from(s.as_str())).collect();
        let string_at = |ix: u32| Arc::clone(&interned[ix as usize]);
        let link = |v: u32| (v != RAW_NONE).then_some(NodeId(v));

        let mut doc = Document::empty();
        for i in 0..n {
            let kind = match self.kind[i] {
                RAW_KIND_ROOT => NodeKind::Root,
                RAW_KIND_ELEMENT => NodeKind::Element {
                    name: string_at(self.name_idx[i]),
                },
                RAW_KIND_TEXT => NodeKind::Text {
                    text: string_at(self.value_idx[i]),
                },
                _ => NodeKind::Attribute {
                    name: string_at(self.name_idx[i]),
                    value: string_at(self.value_idx[i]),
                },
            };
            let mut data = NodeData::new(kind);
            data.parent = link(self.parent[i]);
            data.first_child = link(self.first_child[i]);
            data.last_child = link(self.last_child[i]);
            data.next_sibling = link(self.next_sibling[i]);
            data.prev_sibling = link(self.prev_sibling[i]);
            let attrs: Vec<NodeId> = self.attr_list
                [self.attr_start[i] as usize..self.attr_start[i + 1] as usize]
                .iter()
                .map(|&a| NodeId(a))
                .collect();
            data.set_attrs(attrs);
            let id = if i == 0 {
                // `Document::empty` created the root slot; adopt its links.
                let root = doc.root();
                *doc.data_mut(root) = data;
                root
            } else {
                doc.append(data)
            };
            *doc.keys_mut(id) = NodeKeys {
                pre: self.pre[i],
                post: self.post[i],
                depth: self.depth[i],
            };
        }

        // The columns persist tag *names*, not ids: decoding re-interns
        // into the process-global symbol table, so a prepared snapshot
        // decoded in another process (or after other documents interned
        // more tags) still resolves to the canonical global ids.
        let mut tag_ids = HashMap::with_capacity(self.tag_name_idx.len());
        let mut tags = Vec::with_capacity(self.tag_name_idx.len());
        let mut local_of_global: Vec<u32> = Vec::new();
        for (t, &name_ix) in self.tag_name_idx.iter().enumerate() {
            let name = self.strings[name_ix as usize].clone();
            let lo = self.tag_elem_start[t] as usize;
            let hi = self.tag_elem_start[t + 1] as usize;
            let id = crate::intern::intern(&name);
            if local_of_global.len() <= id.index() {
                local_of_global.resize(id.index() + 1, crate::prepared::NO_LOCAL_TAG);
            }
            local_of_global[id.index()] = t as u32;
            tag_ids.insert(name.clone(), id);
            tags.push(TagEntry {
                name,
                elements: self.tag_elems[lo..hi].iter().map(|&v| NodeId(v)).collect(),
                by_parent: self.tag_byparent[lo..hi]
                    .iter()
                    .map(|&v| NodeId(v))
                    .collect(),
            });
        }

        Ok(PreparedDocument {
            doc: Arc::new(doc),
            order: self.order.into_iter().map(NodeId).collect(),
            subtree_end: self.subtree_end,
            tag_ids,
            tags,
            sibling_pos: self.sibling_pos,
            child_count: self.child_count,
            local_of_global,
            content_hash: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_xml, Axis, AxisSource, NodeTest};

    fn roundtrip(xml: &str) -> (PreparedDocument, PreparedDocument) {
        let original = parse_xml(xml).unwrap().prepare();
        let rebuilt = RawColumns::from_prepared(&original)
            .into_prepared()
            .unwrap();
        (original, rebuilt)
    }

    #[test]
    fn roundtrip_is_exact() {
        let (original, rebuilt) = roundtrip(
            r#"<site><region n="eu"><item id="1"><bid>5</bid>txt</item></region><b/><b/></site>"#,
        );
        assert_eq!(original.node_count(), rebuilt.node_count());
        assert_eq!(original.order(), rebuilt.order());
        for n in original.document().all_nodes() {
            assert_eq!(original.kind(n), rebuilt.kind(n));
            assert_eq!(original.pre(n), rebuilt.pre(n));
            assert_eq!(original.post(n), rebuilt.post(n));
            assert_eq!(original.depth(n), rebuilt.depth(n));
            assert_eq!(original.pre_interval(n), rebuilt.pre_interval(n));
            assert_eq!(original.sibling_position(n), rebuilt.sibling_position(n));
            assert_eq!(original.child_count(n), rebuilt.child_count(n));
            assert_eq!(original.string_value(n), rebuilt.string_value(n));
            for axis in Axis::CORE.into_iter().chain([Axis::Attribute]) {
                for test in [NodeTest::name("item"), NodeTest::Star, NodeTest::AnyNode] {
                    assert_eq!(
                        AxisSource::axis_step(&original, n, axis, &test),
                        AxisSource::axis_step(&rebuilt, n, axis, &test),
                    );
                }
            }
        }
        let tags: Vec<&str> = original.tag_names().collect();
        assert_eq!(tags, rebuilt.tag_names().collect::<Vec<_>>());
        for tag in tags {
            assert_eq!(original.elements_named(tag), rebuilt.elements_named(tag));
            assert_eq!(original.tag_id(tag), rebuilt.tag_id(tag));
        }
    }

    #[test]
    fn string_table_deduplicates() {
        let p = parse_xml("<a><b k='b'>b</b><b k='b'>b</b></a>")
            .unwrap()
            .prepare();
        let cols = RawColumns::from_prepared(&p);
        let mut sorted = cols.strings.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), cols.strings.len());
    }

    #[test]
    fn validation_rejects_truncated_and_inconsistent_tables() {
        let p = parse_xml("<a><b/><c/></a>").unwrap().prepare();
        let good = RawColumns::from_prepared(&p);
        assert!(good.clone().into_prepared().is_ok());

        let mut bad = good.clone();
        bad.pre.pop();
        assert!(bad.into_prepared().is_err());

        let mut bad = good.clone();
        bad.parent[2] = 999;
        assert!(bad.into_prepared().is_err());

        let mut bad = good.clone();
        bad.kind[0] = RAW_KIND_ELEMENT;
        assert!(bad.into_prepared().is_err());

        let mut bad = good.clone();
        bad.kind[1] = 77;
        assert!(bad.into_prepared().is_err());

        let mut bad = good.clone();
        bad.attr_start[1] = 40;
        assert!(bad.into_prepared().is_err());

        let mut bad = good.clone();
        bad.order.swap(1, 2);
        let err = bad.into_prepared().unwrap_err();
        assert!(err.to_string().contains("order"), "{err}");

        let mut bad = good.clone();
        bad.tag_name_idx[0] = 999;
        assert!(bad.into_prepared().is_err());

        let mut bad = good;
        bad.name_idx[1] = RAW_NONE;
        assert!(bad.into_prepared().is_err());
    }

    #[test]
    fn detached_slots_survive_the_roundtrip() {
        // Build a prepared doc, flatten, and confirm arena-slot indexing is
        // preserved even for slots that are not in document order.
        let p = parse_xml("<a><b/></a>").unwrap().prepare();
        let mut cols = RawColumns::from_prepared(&p);
        // Simulate a detached slot the way live removals leave one behind:
        // present in the arena columns, absent from order.
        let extra = cols.kind.len() as u32;
        cols.kind.push(RAW_KIND_TEXT);
        cols.name_idx.push(RAW_NONE);
        let six = cols.strings.len() as u32;
        cols.strings.push("orphan".into());
        cols.value_idx.push(six);
        for col in [
            &mut cols.parent,
            &mut cols.first_child,
            &mut cols.last_child,
            &mut cols.next_sibling,
            &mut cols.prev_sibling,
        ] {
            col.push(RAW_NONE);
        }
        let end = *cols.attr_start.last().unwrap();
        cols.attr_start.push(end);
        cols.pre.push(0);
        cols.post.push(0);
        cols.depth.push(0);
        cols.subtree_end.push(0);
        cols.sibling_pos.push(0);
        cols.child_count.push(0);
        let rebuilt = cols.into_prepared().unwrap();
        assert_eq!(rebuilt.node_count(), p.node_count() + 1);
        assert!(!rebuilt.document().is_attached(NodeId(extra)));
        assert_eq!(rebuilt.order().len(), p.order().len());
    }
}
