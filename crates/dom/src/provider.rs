//! Storage-agnostic tree construction: [`TreeBuilder`] and [`TreeProvider`].
//!
//! The evaluators never see where a tree came from — they consume an
//! [`AxisSource`](crate::AxisSource).  This module pushes that pluggability
//! one level further down, to *construction*: a [`TreeProvider`] is anything
//! that can emit a tree (XML text, JSON, an in-memory model, a UI widget
//! hierarchy) through the SAX-like [`TreeBuilder`] surface.  The XML parser
//! is just one provider among several ([`XmlProvider`]); non-XML backends
//! live in `xpeval-backends`.
//!
//! Two providers that emit the same event sequence produce *identical*
//! documents — same [`NodeId`]s, same ordering keys — which is what makes
//! backend-agreement testing exact rather than merely structural.

use crate::build::DocumentBuilder;
use crate::node::{Document, NodeId};
use crate::parse::{parse_into, XmlParseError};
use crate::prepared::PreparedDocument;
use std::fmt;

/// Error produced while a [`TreeProvider`] feeds a [`TreeBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeBuildError {
    /// Human readable description.
    pub message: String,
    /// Byte offset in the provider's input, when it has one.
    pub offset: Option<usize>,
}

impl TreeBuildError {
    /// A build error with no input position.
    pub fn new(message: impl Into<String>) -> Self {
        TreeBuildError {
            message: message.into(),
            offset: None,
        }
    }

    /// A build error anchored at a byte offset in the provider's input.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        TreeBuildError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for TreeBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "tree build error at byte {}: {}", off, self.message),
            None => write!(f, "tree build error: {}", self.message),
        }
    }
}

impl std::error::Error for TreeBuildError {}

impl From<XmlParseError> for TreeBuildError {
    fn from(e: XmlParseError) -> Self {
        TreeBuildError::at(e.offset, e.message)
    }
}

/// The construction surface a [`TreeProvider`] writes through.
///
/// A thin veneer over [`DocumentBuilder`] that keeps providers decoupled
/// from the arena internals: events in, [`Document`] (or
/// [`PreparedDocument`]) out.
///
/// ```
/// use xpeval_dom::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// b.open_element("config");
/// b.attribute("version", "1");
/// b.text("on");
/// b.close_element();
/// let doc = b.finish();
/// assert_eq!(doc.element_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    inner: DocumentBuilder,
}

impl TreeBuilder {
    /// Creates a builder with only the conceptual root node open.
    pub fn new() -> Self {
        TreeBuilder {
            inner: DocumentBuilder::new(),
        }
    }

    /// Opens a new element as a child of the currently open element.
    pub fn open_element(&mut self, name: impl Into<String>) -> NodeId {
        self.inner.open_element(name)
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is currently open.
    pub fn close_element(&mut self) {
        self.inner.close_element()
    }

    /// Appends an empty element (open followed by close). Returns its id.
    pub fn leaf_element(&mut self, name: impl Into<String>) -> NodeId {
        self.inner.leaf_element(name)
    }

    /// Appends a text node to the currently open element.
    pub fn text(&mut self, text: impl Into<String>) -> NodeId {
        self.inner.text(text)
    }

    /// Adds an attribute to the currently open element.
    ///
    /// # Panics
    /// Panics if no element is open (attributes cannot be added to the root).
    pub fn attribute(&mut self, name: impl Into<String>, value: impl Into<String>) -> NodeId {
        self.inner.attribute(name, value)
    }

    /// Number of nodes created so far (including the root).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no node besides the root has been created.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The wrapped builder, for in-crate providers (the XML parser) that
    /// predate the [`TreeBuilder`] surface.
    pub(crate) fn document_builder(&mut self) -> &mut DocumentBuilder {
        &mut self.inner
    }

    /// Finishes the tree: closes any still-open elements and assigns
    /// ordering keys to every node.
    pub fn finish(self) -> Document {
        self.inner.finish()
    }

    /// Finishes the tree and builds the prepare-once axis indexes in the
    /// same call.
    pub fn finish_prepared(self) -> PreparedDocument {
        PreparedDocument::new(self.inner.finish())
    }
}

/// A source of trees: anything that can replay itself as builder events.
///
/// Implementations map their native structure onto the XPath data model
/// (root, elements, attributes, text).  The engine side never needs to know
/// the native format — `Catalog::insert_tree` and
/// `TreeProvider::build_prepared` accept any provider.
pub trait TreeProvider {
    /// Emits this provider's tree into `builder`.
    ///
    /// The builder is positioned at the conceptual root; the provider must
    /// leave every element it opened closed (unclosed elements are closed by
    /// `finish`, but relying on that is a bug in the provider).
    fn provide(&self, builder: &mut TreeBuilder) -> Result<(), TreeBuildError>;

    /// Builds a [`Document`] from this provider.
    fn build(&self) -> Result<Document, TreeBuildError> {
        let mut b = TreeBuilder::new();
        self.provide(&mut b)?;
        Ok(b.finish())
    }

    /// Builds and prepares a document from this provider.
    fn build_prepared(&self) -> Result<PreparedDocument, TreeBuildError> {
        let mut b = TreeBuilder::new();
        self.provide(&mut b)?;
        Ok(b.finish_prepared())
    }
}

/// The XML backend expressed as a [`TreeProvider`]: parses a well-formed
/// XML document (the same subset as [`parse_xml`](crate::parse_xml)).
///
/// ```
/// use xpeval_dom::{TreeProvider, XmlProvider};
/// let doc = XmlProvider::new("<a><b/></a>").build().unwrap();
/// assert_eq!(doc.element_count(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct XmlProvider<'a> {
    input: &'a str,
}

impl<'a> XmlProvider<'a> {
    /// A provider over an XML string.
    pub fn new(input: &'a str) -> Self {
        XmlProvider { input }
    }
}

impl TreeProvider for XmlProvider<'_> {
    fn provide(&self, builder: &mut TreeBuilder) -> Result<(), TreeBuildError> {
        parse_into(self.input, builder.document_builder())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xml;

    #[test]
    fn xml_provider_builds_identical_documents_to_parse_xml() {
        let xml = r#"<site><item id="1">first</item><item id="2"><bid>5</bid></item></site>"#;
        let direct = parse_xml(xml).unwrap();
        let provided = XmlProvider::new(xml).build().unwrap();
        assert_eq!(direct.len(), provided.len());
        for n in direct.all_nodes() {
            assert_eq!(direct.name(n), provided.name(n));
            assert_eq!(direct.pre(n), provided.pre(n));
            assert_eq!(direct.post(n), provided.post(n));
            assert_eq!(direct.string_value(n), provided.string_value(n));
        }
    }

    #[test]
    fn xml_provider_surfaces_parse_errors_with_offset() {
        let err = XmlProvider::new("<a k=v/>").build().unwrap_err();
        assert!(err.offset.is_some());
        assert!(err.message.contains("quoted"), "{err}");
    }

    #[test]
    fn tree_builder_matches_document_builder() {
        let mut t = TreeBuilder::new();
        assert!(t.is_empty());
        t.open_element("r");
        t.attribute("k", "v");
        let x = t.leaf_element("x");
        t.text("tail");
        t.close_element();
        assert!(!t.is_empty());
        assert_eq!(t.len(), 5);
        let prepared = t.finish_prepared();
        assert_eq!(prepared.elements_named("x"), &[x]);
        let r = prepared.first_child(prepared.root()).unwrap();
        assert_eq!(prepared.attribute_value(r, "k"), Some("v"));
    }

    #[test]
    fn providers_emitting_same_events_yield_identical_node_ids() {
        struct Manual;
        impl TreeProvider for Manual {
            fn provide(&self, b: &mut TreeBuilder) -> Result<(), TreeBuildError> {
                b.open_element("a");
                b.open_element("b");
                b.text("t");
                b.close_element();
                b.close_element();
                Ok(())
            }
        }
        let manual = Manual.build_prepared().unwrap();
        let xml = XmlProvider::new("<a><b>t</b></a>")
            .build_prepared()
            .unwrap();
        assert_eq!(manual.node_count(), xml.node_count());
        assert_eq!(manual.order(), xml.order());
        for n in manual.document().all_nodes() {
            assert_eq!(manual.pre_interval(n), xml.pre_interval(n));
        }
    }
}
