//! Per-document axis indexes: the prepare-once half of the document side.
//!
//! The paper's linear-time Core XPath bound (Proposition 2.7) assumes the
//! axis relations can be enumerated with constant-time primitives.  A bare
//! [`Document`] provides that only partially: `is_ancestor_of` is O(1) via
//! pre/post numbering, but descendant enumeration walks sibling links, name
//! tests compare strings node by node, and every evaluator that needs the
//! document-order listing rebuilds it per query.
//!
//! [`PreparedDocument`] is built **once** per document (O(|D|) time and
//! space) and carries the indexes that turn those per-query costs into
//! lookups:
//!
//! * a **tag-name index** — for every element tag, the list of elements with
//!   that tag in document order ([`PreparedDocument::elements_named`]); a
//!   name test becomes a list scan instead of |D| string comparisons,
//! * **preorder interval numbering** — every node knows the half-open
//!   preorder interval `[pre, subtree_end)` covering its subtree
//!   ([`PreparedDocument::pre_interval`]), so descendant enumeration is a
//!   contiguous range of the document-order table and
//!   `descendant::tag` is two binary searches into the tag index
//!   ([`PreparedDocument::descendants_named`]).  The same intervals answer
//!   the *complement* axes: `following::tag` is the tag-list suffix at the
//!   subtree end ([`PreparedDocument::following_named`]) and
//!   `preceding::tag` is the prefix before the node minus its (at most
//!   depth-many) ancestors ([`PreparedDocument::preceding_named`]) — each
//!   axis at most two range scans over document order,
//! * a **per-parent tag index** — the same element lists re-sorted by
//!   parent, so `child::tag` is a contiguous bucket found by two binary
//!   searches ([`PreparedDocument::children_named`]) instead of a walk over
//!   every child,
//! * **position tables** — each node's 1-based position among its siblings
//!   and each node's child count ([`PreparedDocument::sibling_position`],
//!   [`PreparedDocument::child_count`]).  The child counts size the
//!   child-axis candidate lists exactly; the sibling positions and buckets
//!   are the O(1) primitives positional child predicates (`[k]`,
//!   `[last()]`) reduce to ([`PreparedDocument::nth_child`]).
//!
//! `PreparedDocument` holds the underlying document in an [`Arc`], derefs to
//! it, and implements [`crate::AxisSource`], so every evaluator accepts it
//! wherever a `&Document` is accepted — this mirrors the compile-once query
//! side: *prepare once, evaluate many*.
//!
//! ```
//! use xpeval_dom::{parse_xml, PreparedDocument};
//!
//! let doc = parse_xml("<r><a/><b/><a><b/></a></r>").unwrap();
//! let prepared = PreparedDocument::new(doc);
//! assert_eq!(prepared.elements_named("b").len(), 2);
//! let r = prepared.first_child(prepared.root()).unwrap();
//! assert_eq!(prepared.descendants_named(r, "a").len(), 2);
//! ```

use crate::node::{Document, NodeId, NodeKind};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

pub use crate::intern::TagId;

/// Sentinel in [`PreparedDocument::local_of_global`]: the global tag does
/// not occur in this document.
pub(crate) const NO_LOCAL_TAG: u32 = u32::MAX;

/// Per-tag index data: the element list in document order and the same list
/// re-sorted by parent preorder key (the `child::tag` buckets).
#[derive(Clone, Debug)]
pub(crate) struct TagEntry {
    pub(crate) name: String,
    /// Elements carrying this tag, in document order.
    pub(crate) elements: Vec<NodeId>,
    /// The same elements sorted by the preorder key of their *parent*
    /// (ties broken by own preorder key), so the children of one parent
    /// form a contiguous bucket, internally in document order.
    pub(crate) by_parent: Vec<NodeId>,
}

/// A [`Document`] plus the axis indexes described in the
/// [module docs](self): tag-name lists, preorder subtree intervals and
/// sibling/child position tables.
///
/// Construction is a single O(|D|) pass; the document itself is shared via
/// [`Arc`] and never copied.  `PreparedDocument` is immutable and `Sync`,
/// so one prepared document can serve concurrent evaluations, exactly like
/// a compiled query plan serves concurrent documents.
#[derive(Clone, Debug)]
pub struct PreparedDocument {
    pub(crate) doc: Arc<Document>,
    /// All attached nodes in document order (ascending preorder key).
    /// Preorder keys are gapped, so this is a sorted listing to binary
    /// search, not an array indexed by key.
    pub(crate) order: Vec<NodeId>,
    /// Exclusive end of each node's subtree interval in preorder-key space:
    /// the subtree of `n` (including `n`, its attributes and all
    /// descendants with their attributes) is exactly the nodes whose
    /// preorder key lies in `pre(n)..subtree_end[n]`.  Derived from the
    /// exit keys: `post(n) + 1` for every node (attributes carry
    /// `post == pre`).  Indexed by arena slot.
    pub(crate) subtree_end: Vec<u32>,
    /// Element tag name → workspace-global interned id
    /// ([`crate::intern::intern`]), covering exactly the tags occurring in
    /// this document.
    pub(crate) tag_ids: HashMap<String, TagId>,
    /// Per-tag index data in first-occurrence document order (local dense
    /// slots; translate global ids through `local_of_global`).
    pub(crate) tags: Vec<TagEntry>,
    /// Global [`TagId`] index → local slot in `tags`, [`NO_LOCAL_TAG`] when
    /// the tag does not occur here.  Global ids minted after preparation
    /// fall off the end, which reads as absent — exactly right.
    pub(crate) local_of_global: Vec<u32>,
    /// 1-based position of each node among its parent's children
    /// (0 for the root and for attribute nodes, which are not children).
    pub(crate) sibling_pos: Vec<u32>,
    /// Number of children of each node (attributes are not children).
    pub(crate) child_count: Vec<u32>,
    /// Lazily computed structural fingerprint ([`Self::content_hash`]).
    /// Cloning a prepared document carries the cached value along.
    pub(crate) content_hash: OnceLock<u64>,
}

impl PreparedDocument {
    /// Builds the indexes for `doc` in one O(|D|) pass.
    ///
    /// Accepts an owned [`Document`] or an [`Arc<Document>`]; the document
    /// is shared, not copied.
    pub fn new(doc: impl Into<Arc<Document>>) -> Self {
        let doc = doc.into();
        let len = doc.len();

        // Document-order table via a link DFS (node, then attributes, then
        // children).  Preorder keys are gapped, so the table is built from
        // the tree structure rather than by indexing with key values; this
        // also skips arena slots detached by earlier in-place removals.
        let mut order = Vec::with_capacity(len);
        let mut stack = vec![doc.root()];
        while let Some(n) = stack.pop() {
            order.push(n);
            order.extend_from_slice(doc.attributes(n));
            // Push children in reverse so the first child is visited first.
            let mut c = doc.last_child(n);
            while let Some(ch) = c {
                stack.push(ch);
                c = doc.prev_sibling(ch);
            }
        }
        debug_assert!(
            order.windows(2).all(|w| doc.pre(w[0]) < doc.pre(w[1])),
            "ordering keys must strictly increase along document order"
        );

        // Subtree intervals straight from the exit keys: the subtree of `n`
        // is exactly the nodes whose preorder key lies in
        // `[pre(n), post(n)]`; attributes carry `post == pre`, so the
        // half-open end is `post + 1` for every node kind.
        let mut subtree_end = vec![0u32; len];
        for &n in &order {
            subtree_end[n.index()] = doc.post(n) + 1;
        }

        // Tag-name index, filled in document order so every list is sorted.
        // Names are interned into the workspace-global symbol table
        // ([`crate::intern::intern`]); the local dense `tags` slots keep
        // first-occurrence document order, with `local_of_global`
        // translating global ids to them.  Probe by `&str` first: this loop
        // runs once per element, and allocating an owned key for the
        // (overwhelmingly common) already-interned case would put |D|
        // throwaway Strings on the O(|D|) preparation path.
        let mut tag_ids: HashMap<String, TagId> = HashMap::new();
        let mut tags: Vec<TagEntry> = Vec::new();
        let mut local_of_global: Vec<u32> = Vec::new();
        for &n in &order {
            if let Some(name) = doc.kind(n).element_name() {
                let local = match tag_ids.get(name) {
                    Some(&id) => local_of_global[id.index()] as usize,
                    None => {
                        let id = crate::intern::intern(name);
                        let local = tags.len();
                        tags.push(TagEntry {
                            name: name.to_string(),
                            elements: Vec::new(),
                            by_parent: Vec::new(),
                        });
                        if local_of_global.len() <= id.index() {
                            local_of_global.resize(id.index() + 1, NO_LOCAL_TAG);
                        }
                        local_of_global[id.index()] = local as u32;
                        tag_ids.insert(name.to_string(), id);
                        local
                    }
                };
                tags[local].elements.push(n);
            }
        }

        // Per-parent tag buckets: the same lists keyed by parent preorder
        // number.  A stable sort keeps same-parent runs in document order.
        for entry in &mut tags {
            let mut list = entry.elements.clone();
            list.sort_by_key(|&n| doc.parent(n).map_or(0, |p| doc.pre(p)));
            entry.by_parent = list;
        }

        // Sibling positions and child counts.
        let mut sibling_pos = vec![0u32; len];
        let mut child_count = vec![0u32; len];
        for &n in &order {
            let mut pos = 0u32;
            let mut c = doc.first_child(n);
            while let Some(ch) = c {
                pos += 1;
                sibling_pos[ch.index()] = pos;
                c = doc.next_sibling(ch);
            }
            child_count[n.index()] = pos;
        }

        PreparedDocument {
            doc,
            order,
            subtree_end,
            tag_ids,
            tags,
            local_of_global,
            sibling_pos,
            child_count,
            content_hash: OnceLock::new(),
        }
    }

    /// A structural fingerprint of the document: node count, arena layout,
    /// preorder numbering, tree shape, names, text and attribute values all
    /// feed the hash.  Two prepared documents with equal fingerprints are
    /// byte-for-byte interchangeable snapshots — in particular their
    /// [`NodeId`]s and pre/post keys coincide, so node-set results computed
    /// on one are valid on the other.  (Documents that merely *serialize*
    /// identically but were assembled through different mutation histories
    /// hash differently, because detached arena slots shift indices and gap
    /// the preorder keys — exactly the cases where node ids would not
    /// transfer.)
    ///
    /// Computed once on first use (O(|D|)) and cached.
    pub fn content_hash(&self) -> u64 {
        *self.content_hash.get_or_init(|| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.order.len().hash(&mut h);
            for &n in &self.order {
                n.index().hash(&mut h);
                self.doc.pre(n).hash(&mut h);
                self.doc.depth(n).hash(&mut h);
                match self.doc.kind(n) {
                    NodeKind::Root => 0u8.hash(&mut h),
                    NodeKind::Element { name } => {
                        1u8.hash(&mut h);
                        name.hash(&mut h);
                    }
                    NodeKind::Text { text } => {
                        2u8.hash(&mut h);
                        text.hash(&mut h);
                    }
                    NodeKind::Attribute { name, value } => {
                        3u8.hash(&mut h);
                        name.hash(&mut h);
                        value.hash(&mut h);
                    }
                }
            }
            h.finish()
        })
    }

    /// The local tag-table slot of a global id, `None` when the tag does
    /// not occur in this document (including ids minted after this document
    /// was prepared).
    #[inline]
    pub(crate) fn local_slot(&self, id: TagId) -> Option<usize> {
        match self.local_of_global.get(id.index()) {
            Some(&slot) if slot != NO_LOCAL_TAG => Some(slot as usize),
            _ => None,
        }
    }

    #[inline]
    fn local_entry(&self, id: TagId) -> Option<&TagEntry> {
        self.local_slot(id).map(|slot| &self.tags[slot])
    }

    /// The underlying document.
    #[inline]
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The shared handle to the underlying document.
    #[inline]
    pub fn shared_document(&self) -> &Arc<Document> {
        &self.doc
    }

    /// Total number of arena slots, `|D|` (root + elements + text +
    /// attributes, including slots detached by in-place removals) — the
    /// size bitset-based evaluators allocate for.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.doc.len()
    }

    /// All attached nodes in document order, precomputed.  The listing is
    /// sorted by preorder key; keys are gapped, so find a key's position
    /// with `partition_point`, not by indexing.
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The half-open preorder-key interval `[pre, end)` covering the
    /// subtree of `n` — `n` itself, its attributes and all descendants
    /// (with theirs).
    ///
    /// Intervals nest like the tree does: `m` is in the subtree of `n` iff
    /// `pre(n) <= pre(m) < end(n)`, and the intervals of two nodes are
    /// either disjoint or one contains the other.  The bounds are ordering
    /// keys (gapped), not dense ranks.
    #[inline]
    pub fn pre_interval(&self, n: NodeId) -> (u32, u32) {
        (self.doc.pre(n), self.subtree_end[n.index()])
    }

    /// The interned id of tag `name`, or `None` when no element in the
    /// document carries it.  This is the one string-hash step of the tag
    /// index; everything downstream can work with the id.
    #[inline]
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.tag_ids.get(name).copied()
    }

    /// The tag name an id was interned from (resolved against the global
    /// symbol table, so it answers for ids of *any* document).
    ///
    /// # Panics
    /// Panics if `id` did not come from the global interner.
    #[inline]
    pub fn tag_name(&self, id: TagId) -> &str {
        crate::intern::tag_name(id)
    }

    /// Number of distinct element tags occurring in this document.
    #[inline]
    pub fn distinct_tag_count(&self) -> usize {
        self.tags.len()
    }

    /// All elements with the interned tag `id`, in document order — two
    /// plain array indexes, no hashing.  Empty for global ids whose tag
    /// does not occur in this document.
    #[inline]
    pub fn elements_by_tag(&self, id: TagId) -> &[NodeId] {
        self.local_entry(id)
            .map(|e| e.elements.as_slice())
            .unwrap_or(&[])
    }

    /// All elements with tag `name`, in document order.  O(1) lookup;
    /// returns an empty slice for tags that do not occur.
    pub fn elements_named(&self, name: &str) -> &[NodeId] {
        self.tag_id(name)
            .map(|id| self.elements_by_tag(id))
            .unwrap_or(&[])
    }

    /// The elements with tag `name` in the subtree strictly below `n`
    /// (the `descendant::name` node set), in document order.
    ///
    /// Two binary searches into the tag index: O(log |D| + answer size)
    /// instead of a walk over the whole subtree.
    pub fn descendants_named(&self, n: NodeId, name: &str) -> &[NodeId] {
        self.descendants_in_list(n, self.elements_named(name))
    }

    /// [`PreparedDocument::descendants_named`] with a pre-resolved
    /// [`TagId`].
    pub fn descendants_by_tag(&self, n: NodeId, id: TagId) -> &[NodeId] {
        self.descendants_in_list(n, self.elements_by_tag(id))
    }

    fn descendants_in_list<'l>(&self, n: NodeId, list: &'l [NodeId]) -> &'l [NodeId] {
        let (pre, end) = self.pre_interval(n);
        // Strictly below n: preorder numbers in (pre, end).  Attributes are
        // inside the interval but never in the element index.
        let lo = list.partition_point(|&m| self.doc.pre(m) <= pre);
        let hi = list.partition_point(|&m| self.doc.pre(m) < end);
        &list[lo..hi]
    }

    /// The children of `n` with tag `name` (the `child::name` node set), in
    /// document order.
    ///
    /// Two binary searches into the per-parent tag index locate the bucket
    /// of `n`'s matching children: O(log |D| + answer size) instead of a
    /// walk over every child.
    pub fn children_named(&self, n: NodeId, name: &str) -> &[NodeId] {
        self.tag_id(name)
            .map(|id| self.children_by_tag(n, id))
            .unwrap_or(&[])
    }

    /// [`PreparedDocument::children_named`] with a pre-resolved [`TagId`]:
    /// two binary searches into the per-parent bucket, no string hashing.
    pub fn children_by_tag(&self, n: NodeId, id: TagId) -> &[NodeId] {
        let Some(entry) = self.local_entry(id) else {
            return &[];
        };
        let list = entry.by_parent.as_slice();
        let parent_pre = self.doc.pre(n);
        let lo = list.partition_point(|&m| self.parent_pre(m) < parent_pre);
        let hi = list.partition_point(|&m| self.parent_pre(m) <= parent_pre);
        &list[lo..hi]
    }

    #[inline]
    fn parent_pre(&self, n: NodeId) -> u32 {
        self.doc.parent(n).map_or(0, |p| self.doc.pre(p))
    }

    /// The elements with tag `name` on the `following` axis of `n`: every
    /// element after `n`'s subtree in document order.
    ///
    /// The preorder interval makes this the tag-list suffix starting at
    /// `n`'s subtree end — a single binary search.
    ///
    /// `n` must not be an attribute node (the XPath data model places an
    /// attribute's notional subtree inside its owner element, so the
    /// interval complement does not describe its `following` axis).
    pub fn following_named(&self, n: NodeId, name: &str) -> &[NodeId] {
        self.tag_id(name)
            .map(|id| self.following_by_tag(n, id))
            .unwrap_or(&[])
    }

    /// [`PreparedDocument::following_named`] with a pre-resolved [`TagId`].
    pub fn following_by_tag(&self, n: NodeId, id: TagId) -> &[NodeId] {
        debug_assert!(!self.doc.kind(n).is_attribute());
        let list = self.elements_by_tag(id);
        let (_, end) = self.pre_interval(n);
        let lo = list.partition_point(|&m| self.doc.pre(m) < end);
        &list[lo..]
    }

    /// The elements with tag `name` on the `preceding` axis of `n`: every
    /// element strictly before `n` in document order that is not an
    /// ancestor of `n`.
    ///
    /// One binary search bounds the tag-list prefix before `n`; the scan
    /// then skips the at most depth-many ancestors (exactly the elements
    /// in the prefix whose subtree interval still covers `n`), so the cost
    /// is O(log |D| + prefix size) with no sorting.
    pub fn preceding_named(&self, n: NodeId, name: &str) -> Vec<NodeId> {
        self.tag_id(name)
            .map(|id| self.preceding_by_tag(n, id))
            .unwrap_or_default()
    }

    /// [`PreparedDocument::preceding_named`] with a pre-resolved [`TagId`].
    pub fn preceding_by_tag(&self, n: NodeId, id: TagId) -> Vec<NodeId> {
        let list = self.elements_by_tag(id);
        let pre = self.doc.pre(n);
        let hi = list.partition_point(|&m| self.doc.pre(m) < pre);
        list[..hi]
            .iter()
            .copied()
            .filter(|&m| self.subtree_end[m.index()] <= pre)
            .collect()
    }

    /// The `k`-th (1-based) node of the `child::test`-candidate list of `n`
    /// for a *name* test, straight from the per-parent bucket; `None` when
    /// there are fewer than `k` matching children.
    pub fn nth_child_named(&self, n: NodeId, name: &str, k: usize) -> Option<NodeId> {
        let bucket = self.children_named(n, name);
        k.checked_sub(1).and_then(|ix| bucket.get(ix)).copied()
    }

    /// The last child of `n` with tag `name`, from the per-parent bucket.
    pub fn last_child_named(&self, n: NodeId, name: &str) -> Option<NodeId> {
        self.children_named(n, name).last().copied()
    }

    /// [`PreparedDocument::nth_child_named`] with a pre-resolved [`TagId`].
    pub fn nth_child_by_tag(&self, n: NodeId, id: TagId, k: usize) -> Option<NodeId> {
        let bucket = self.children_by_tag(n, id);
        k.checked_sub(1).and_then(|ix| bucket.get(ix)).copied()
    }

    /// [`PreparedDocument::last_child_named`] with a pre-resolved [`TagId`].
    pub fn last_child_by_tag(&self, n: NodeId, id: TagId) -> Option<NodeId> {
        self.children_by_tag(n, id).last().copied()
    }

    /// The `k`-th (1-based) child of `n`, counting every child node kind
    /// (`child::node()[k]`).  Walks at most `k` sibling links after an O(1)
    /// bounds check against the child-count table.
    pub fn nth_child(&self, n: NodeId, k: usize) -> Option<NodeId> {
        if k == 0 || k > self.child_count(n) {
            return None;
        }
        let mut c = self.doc.first_child(n);
        for _ in 1..k {
            c = self.doc.next_sibling(c?);
        }
        c
    }

    /// Every distinct element tag occurring in the document, in
    /// first-occurrence (= [`TagId`]) order.
    pub fn tag_names(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().map(|t| t.name.as_str())
    }

    /// Number of elements carrying tag `name` — the bucket size the cost
    /// model uses as a selectivity estimate.
    #[inline]
    pub fn tag_count(&self, name: &str) -> usize {
        self.elements_named(name).len()
    }

    /// [`PreparedDocument::tag_count`] with a pre-resolved [`TagId`].
    #[inline]
    pub fn tag_count_by_id(&self, id: TagId) -> usize {
        self.elements_by_tag(id).len()
    }

    /// 1-based position of `n` among its parent's children, counting every
    /// child node kind; 0 for the root and for attribute nodes.
    #[inline]
    pub fn sibling_position(&self, n: NodeId) -> usize {
        self.sibling_pos[n.index()] as usize
    }

    /// Number of children of `n` (attributes are not children).
    #[inline]
    pub fn child_count(&self, n: NodeId) -> usize {
        self.child_count[n.index()] as usize
    }
}

impl Deref for PreparedDocument {
    type Target = Document;

    fn deref(&self) -> &Document {
        &self.doc
    }
}

impl From<Document> for PreparedDocument {
    fn from(doc: Document) -> Self {
        PreparedDocument::new(doc)
    }
}

impl Document {
    /// Consumes the document and builds its [`PreparedDocument`] indexes.
    ///
    /// Convenience for `PreparedDocument::new(doc)`; to keep using the plain
    /// document as well, wrap it in an [`Arc`] first and pass a clone.
    pub fn prepare(self) -> PreparedDocument {
        PreparedDocument::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_xml, Axis, DocumentBuilder, NodeTest};

    fn sample() -> PreparedDocument {
        parse_xml(r#"<r><a k="1"><b/><c/><b><b/></b></a><b/><c><a/></c></r>"#)
            .unwrap()
            .prepare()
    }

    #[test]
    fn order_is_sorted_by_pre_and_complete() {
        let p = sample();
        assert!(p.order().windows(2).all(|w| p.pre(w[0]) < p.pre(w[1])));
        assert_eq!(p.order().len(), p.node_count());
        let mut expected: Vec<NodeId> = p.document().all_nodes().collect();
        expected.sort_by_key(|&n| p.pre(n));
        assert_eq!(p.order(), expected.as_slice());
    }

    #[test]
    fn name_index_matches_a_scan() {
        let p = sample();
        for tag in ["r", "a", "b", "c", "nosuch"] {
            let expected: Vec<NodeId> = p
                .document()
                .all_elements()
                .filter(|&n| p.name(n) == Some(tag))
                .collect();
            assert_eq!(p.elements_named(tag), expected.as_slice(), "{tag}");
        }
        let mut tags: Vec<&str> = p.tag_names().collect();
        tags.sort_unstable();
        assert_eq!(tags, ["a", "b", "c", "r"]);
    }

    #[test]
    fn subtree_intervals_cover_exactly_the_descendants() {
        let p = sample();
        for n in p.document().all_nodes() {
            let (pre, end) = p.pre_interval(n);
            assert_eq!(pre, p.pre(n));
            for m in p.document().all_nodes() {
                let inside = p.pre(m) >= pre && p.pre(m) < end;
                // Ground truth via the parent chain.
                let mut in_subtree = false;
                let mut cur = Some(m);
                while let Some(x) = cur {
                    if x == n {
                        in_subtree = true;
                        break;
                    }
                    cur = p.parent(x);
                }
                assert_eq!(inside, in_subtree, "{n:?} vs {m:?}");
            }
        }
    }

    #[test]
    fn descendants_named_equals_the_descendant_axis() {
        let p = sample();
        for n in p.document().all_nodes() {
            for tag in ["a", "b", "c", "nosuch"] {
                let expected = p
                    .document()
                    .axis_step(n, Axis::Descendant, &NodeTest::name(tag));
                assert_eq!(
                    p.descendants_named(n, tag),
                    expected.as_slice(),
                    "{n:?}/{tag}"
                );
            }
        }
    }

    #[test]
    fn children_named_equals_the_child_axis() {
        let p = sample();
        for n in p.document().all_nodes() {
            for tag in ["a", "b", "c", "nosuch"] {
                let expected = p.document().axis_step(n, Axis::Child, &NodeTest::name(tag));
                assert_eq!(p.children_named(n, tag), expected.as_slice(), "{n:?}/{tag}");
            }
        }
    }

    #[test]
    fn following_and_preceding_named_equal_the_axes() {
        let p = sample();
        for n in p.document().all_nodes() {
            if p.kind(n).is_attribute() {
                continue;
            }
            for tag in ["a", "b", "c", "nosuch"] {
                let fwd = p
                    .document()
                    .axis_step(n, Axis::Following, &NodeTest::name(tag));
                assert_eq!(p.following_named(n, tag), fwd.as_slice(), "{n:?}/{tag}");
                let bwd = p
                    .document()
                    .axis_step(n, Axis::Preceding, &NodeTest::name(tag));
                assert_eq!(p.preceding_named(n, tag), bwd, "{n:?}/{tag}");
            }
        }
    }

    #[test]
    fn positional_child_lookups() {
        let p = sample();
        let r = p.first_child(p.root()).unwrap();
        // <r> has children a, b, c.
        assert_eq!(p.nth_child(r, 1), p.first_child(r));
        assert_eq!(p.nth_child(r, 3), p.last_child(r));
        assert_eq!(p.nth_child(r, 0), None);
        assert_eq!(p.nth_child(r, 4), None);
        let a = p.first_child(r).unwrap();
        // <a> has children b, c, b.
        let bs = p.children_named(a, "b");
        assert_eq!(p.nth_child_named(a, "b", 1), Some(bs[0]));
        assert_eq!(p.nth_child_named(a, "b", 2), Some(bs[1]));
        assert_eq!(p.nth_child_named(a, "b", 3), None);
        assert_eq!(p.nth_child_named(a, "b", 0), None);
        assert_eq!(p.last_child_named(a, "b"), Some(bs[1]));
        assert_eq!(p.last_child_named(a, "nosuch"), None);
        assert_eq!(p.tag_count("b"), 4);
        assert_eq!(p.tag_count("nosuch"), 0);
    }

    #[test]
    fn position_tables() {
        let p = sample();
        let r = p.first_child(p.root()).unwrap();
        assert_eq!(p.sibling_position(p.root()), 0);
        assert_eq!(p.sibling_position(r), 1);
        assert_eq!(p.child_count(r), 3);
        let mut pos = 0;
        let mut c = p.first_child(r);
        while let Some(ch) = c {
            pos += 1;
            assert_eq!(p.sibling_position(ch), pos);
            c = p.next_sibling(ch);
        }
        // Attribute nodes are not children.
        let a = p.first_child(r).unwrap();
        let attr = p.attributes(a)[0];
        assert_eq!(p.sibling_position(attr), 0);
    }

    #[test]
    fn tag_ids_resolve_once_and_index_everything() {
        let p = sample();
        // Ids are dense, in first-occurrence (document) order: r, a, b, c.
        let names: Vec<&str> = p.tag_names().collect();
        assert_eq!(names, ["r", "a", "b", "c"]);
        assert_eq!(p.distinct_tag_count(), 4);
        for name in names {
            let id = p.tag_id(name).unwrap();
            assert_eq!(p.tag_name(id), name);
            assert_eq!(p.elements_by_tag(id), p.elements_named(name));
            assert_eq!(p.tag_count_by_id(id), p.tag_count(name));
            for n in p.document().all_nodes() {
                assert_eq!(p.children_by_tag(n, id), p.children_named(n, name));
                assert_eq!(p.descendants_by_tag(n, id), p.descendants_named(n, name));
            }
        }
        assert_eq!(p.tag_id("nosuch"), None);
    }

    #[test]
    fn deref_and_sharing() {
        let doc = Arc::new(parse_xml("<r><x/></r>").unwrap());
        let p = PreparedDocument::new(Arc::clone(&doc));
        // Deref exposes the full Document API.
        assert_eq!(p.len(), doc.len());
        assert!(Arc::ptr_eq(p.shared_document(), &doc));
    }

    #[test]
    fn content_hash_matches_iff_snapshots_are_interchangeable() {
        let xml = r#"<r><a k="1"><b/>text</a><b/></r>"#;
        let p1 = parse_xml(xml).unwrap().prepare();
        let p2 = parse_xml(xml).unwrap().prepare();
        assert_eq!(p1.content_hash(), p2.content_hash());
        // Repeated calls return the cached value; clones carry it along.
        assert_eq!(p1.content_hash(), p1.clone().content_hash());

        // Any difference in names, text, attributes or shape diverges.
        for other in [
            r#"<r><a k="1"><b/>text</a><c/></r>"#, // tag name
            r#"<r><a k="2"><b/>text</a><b/></r>"#, // attribute value
            r#"<r><a k="1"><b/>texx</a><b/></r>"#, // text content
            r#"<r><a k="1"><b/>text<b/></a></r>"#, // shape
        ] {
            let q = parse_xml(other).unwrap().prepare();
            assert_ne!(p1.content_hash(), q.content_hash(), "{other}");
        }
    }

    #[test]
    fn empty_document() {
        let p = DocumentBuilder::new().finish().prepare();
        assert_eq!(p.node_count(), 1);
        let (lo, hi) = p.pre_interval(p.root());
        assert_eq!(lo, p.pre(p.root()));
        assert_eq!(hi, p.post(p.root()) + 1);
        assert!(p.elements_named("a").is_empty());
        assert!(p.descendants_named(p.root(), "a").is_empty());
    }
}
