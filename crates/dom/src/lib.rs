//! # xpeval-dom — XML document tree substrate
//!
//! This crate implements the XPath 1.0 data model used throughout the
//! reproduction of *"The Complexity of XPath Query Evaluation"*
//! (Gottlob, Koch, Pichler; PODS 2003).
//!
//! A [`Document`] is an arena of nodes addressed by [`NodeId`].  The tree
//! supports:
//!
//! * the XPath node kinds needed by the paper's fragments: the conceptual
//!   root node, element nodes, text nodes and attribute nodes,
//! * all axes of Core XPath (`child`, `parent`, `descendant`,
//!   `descendant-or-self`, `ancestor`, `ancestor-or-self`, `following`,
//!   `following-sibling`, `preceding`, `preceding-sibling`, `self`) plus the
//!   `attribute` axis,
//! * document order (preorder numbering), postorder numbering and constant
//!   time ancestorship tests — the primitives the linear-time Core XPath
//!   evaluator and the context-value-table evaluator rely on,
//! * prepare-once axis indexes ([`PreparedDocument`]: tag-name lists,
//!   per-parent tag buckets, preorder subtree intervals and their
//!   following/preceding complements, sibling-position tables) behind the
//!   [`AxisSource`] trait that all evaluators consume,
//! * a programmatic [`DocumentBuilder`], a small well-formed XML parser
//!   ([`parse_xml`]) and a serializer.
//!
//! ## Example
//!
//! ```
//! use xpeval_dom::{DocumentBuilder, Axis, NodeTest};
//!
//! let mut b = DocumentBuilder::new();
//! b.open_element("library");
//! b.open_element("book");
//! b.attribute("year", "2003");
//! b.text("The Complexity of XPath Query Evaluation");
//! b.close_element();
//! b.close_element();
//! let doc = b.finish();
//!
//! let root = doc.root();
//! let books: Vec<_> = doc
//!     .axis_iter(root, Axis::Descendant)
//!     .filter(|&n| doc.matches(n, &NodeTest::Name("book".into())))
//!     .collect();
//! assert_eq!(books.len(), 1);
//! ```

pub mod axes;
pub mod build;
pub mod intern;
pub mod mutate;
pub mod node;
pub mod order;
pub mod parse;
pub mod prepared;
pub mod provider;
pub mod raw;
pub mod serialize;
pub mod source;

pub use axes::{Axis, NodeTest};
pub use build::DocumentBuilder;
pub use mutate::{EditOutcome, MutationError};
pub use node::{Document, NodeId, NodeKind, KEY_STRIDE};
pub use parse::{parse_xml, XmlParseError};
pub use prepared::{PreparedDocument, TagId};
pub use provider::{TreeBuildError, TreeBuilder, TreeProvider, XmlProvider};
pub use raw::{RawColumns, RawColumnsError, RAW_NONE};
pub use serialize::serialize;
pub use source::{
    AxisSource, CapabilityMask, PositionalPick, SourceCapabilities, TagResolution,
    CHILD_BUCKET_MIN_CHILDREN,
};
