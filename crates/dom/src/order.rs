//! Document order utilities.
//!
//! XPath node-set results are sets, but many operations (`position()`,
//! serializing results, the `following`/`preceding` axes) need document
//! order.  Document order is the preorder number assigned by the builder.

use crate::node::{Document, NodeId};
use std::cmp::Ordering;

impl Document {
    /// Compares two nodes by document order.
    #[inline]
    pub fn cmp_document_order(&self, a: NodeId, b: NodeId) -> Ordering {
        self.pre(a).cmp(&self.pre(b))
    }

    /// Sorts a node vector into document order and removes duplicates,
    /// turning an arbitrary node list into a canonical node-set
    /// representation.
    pub fn sort_document_order(&self, nodes: &mut Vec<NodeId>) {
        nodes.sort_by_key(|&n| self.pre(n));
        nodes.dedup();
    }

    /// Returns the nodes of `nodes` in document order without modifying the
    /// input.
    pub fn in_document_order(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut v = nodes.to_vec();
        self.sort_document_order(&mut v);
        v
    }

    /// The first node of a set in document order, if the set is non-empty.
    pub fn first_in_document_order(&self, nodes: &[NodeId]) -> Option<NodeId> {
        nodes.iter().copied().min_by_key(|&n| self.pre(n))
    }

    /// All nodes of the document in document order (root first).
    pub fn document_order(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.all_nodes().collect();
        v.sort_by_key(|&n| self.pre(n));
        v
    }

    /// The height of the document tree: length of the longest root-to-leaf
    /// path counted in edges.  The reductions of Theorem 3.2/Corollary 3.3
    /// produce documents of bounded height; tests assert this.
    pub fn height(&self) -> u32 {
        self.all_nodes().map(|n| self.depth(n)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocumentBuilder;

    fn sample() -> (Document, Vec<NodeId>) {
        let mut b = DocumentBuilder::new();
        let a = b.open_element("a");
        let x = b.leaf_element("x");
        let y = b.open_element("y");
        let z = b.leaf_element("z");
        b.close_element();
        b.close_element();
        let doc = b.finish();
        (doc, vec![a, x, y, z])
    }

    #[test]
    fn document_order_matches_builder_order() {
        let (doc, ids) = sample();
        let order = doc.document_order();
        assert_eq!(order[0], doc.root());
        assert_eq!(&order[1..], &[ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn cmp_and_sort() {
        let (doc, ids) = sample();
        let (a, x, _y, z) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(doc.cmp_document_order(a, z), Ordering::Less);
        assert_eq!(doc.cmp_document_order(z, x), Ordering::Greater);
        assert_eq!(doc.cmp_document_order(a, a), Ordering::Equal);

        let mut v = vec![z, a, z, x];
        doc.sort_document_order(&mut v);
        assert_eq!(v, vec![a, x, z]);
    }

    #[test]
    fn first_in_document_order() {
        let (doc, ids) = sample();
        assert_eq!(doc.first_in_document_order(&[ids[3], ids[1]]), Some(ids[1]));
        assert_eq!(doc.first_in_document_order(&[]), None);
    }

    #[test]
    fn in_document_order_is_pure() {
        let (doc, ids) = sample();
        let input = vec![ids[3], ids[0]];
        let sorted = doc.in_document_order(&input);
        assert_eq!(sorted, vec![ids[0], ids[3]]);
        assert_eq!(input, vec![ids[3], ids[0]]);
    }

    #[test]
    fn height_of_trees() {
        let (doc, _) = sample();
        assert_eq!(doc.height(), 3);
        let empty = DocumentBuilder::new().finish();
        assert_eq!(empty.height(), 0);
        let mut b = DocumentBuilder::new();
        for i in 0..10 {
            b.open_element(format!("e{i}"));
        }
        let deep = b.finish();
        assert_eq!(deep.height(), 10);
    }
}
