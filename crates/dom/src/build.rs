//! Programmatic construction of [`Document`]s.
//!
//! The builder appends nodes in preorder, which means arena order equals
//! document order; [`DocumentBuilder::finish`] then assigns pre/post ordering
//! keys and depths in a single traversal.  Keys are *gapped* (multiples of
//! [`KEY_STRIDE`]) so later in-place edits can key inserted nodes between
//! their neighbours without renumbering the document.

use crate::node::{Document, NodeData, NodeId, NodeKind, KEY_STRIDE};

/// Builds a [`Document`] by opening and closing elements like a SAX writer.
///
/// ```
/// use xpeval_dom::DocumentBuilder;
/// let mut b = DocumentBuilder::new();
/// b.open_element("a");
/// b.open_element("b");
/// b.close_element();
/// b.close_element();
/// let doc = b.finish();
/// assert_eq!(doc.element_count(), 2);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    /// Stack of currently open elements; the bottom entry is the root.
    open: Vec<NodeId>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates a builder with only the conceptual root node open.
    pub fn new() -> Self {
        let doc = Document::empty();
        let root = doc.root();
        DocumentBuilder {
            doc,
            open: vec![root],
        }
    }

    fn current(&self) -> NodeId {
        *self.open.last().expect("builder root is never popped")
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let parent = self.current();
        let mut data = NodeData::new(kind);
        data.parent = Some(parent);
        data.prev_sibling = self.doc.data(parent).last_child;
        let id = self.doc.append(data);
        if let Some(prev) = self.doc.data(id).prev_sibling {
            self.doc.data_mut(prev).next_sibling = Some(id);
        } else {
            self.doc.data_mut(parent).first_child = Some(id);
        }
        self.doc.data_mut(parent).last_child = Some(id);
        id
    }

    /// Opens a new element as a child of the currently open element.
    /// Returns the id of the new element.
    pub fn open_element(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeKind::Element {
            name: name.into().into(),
        });
        self.open.push(id);
        id
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is currently open.
    pub fn close_element(&mut self) {
        assert!(
            self.open.len() > 1,
            "close_element called with no open element"
        );
        self.open.pop();
    }

    /// Appends an empty element (open followed by close). Returns its id.
    pub fn leaf_element(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.open_element(name);
        self.close_element();
        id
    }

    /// Appends a text node to the currently open element.
    pub fn text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Text {
            text: text.into().into(),
        })
    }

    /// Adds an attribute to the currently open element.
    ///
    /// # Panics
    /// Panics if no element is open (attributes cannot be added to the root).
    pub fn attribute(&mut self, name: impl Into<String>, value: impl Into<String>) -> NodeId {
        assert!(self.open.len() > 1, "attribute called with no open element");
        let owner = self.current();
        let mut data = NodeData::new(NodeKind::Attribute {
            name: name.into().into(),
            value: value.into().into(),
        });
        data.parent = Some(owner);
        let id = self.doc.append(data);
        self.doc.data_mut(owner).push_attr(id);
        id
    }

    /// Number of nodes created so far (including the root).
    pub fn len(&self) -> usize {
        self.doc.nodes.len()
    }

    /// True if no node besides the root has been created.
    pub fn is_empty(&self) -> bool {
        self.doc.nodes.len() <= 1
    }

    /// Finishes the document: closes any still-open elements and assigns
    /// ordering keys (pre/post) and depth to every node.
    pub fn finish(mut self) -> Document {
        while self.open.len() > 1 {
            self.open.pop();
        }
        finalize(&mut self.doc);
        self.doc
    }
}

/// Assigns gapped pre/post ordering keys and depths to the whole document.
pub(crate) fn finalize(doc: &mut Document) {
    let root = doc.root();
    assign_subtree_keys(doc, root, 0, KEY_STRIDE, 0);
}

/// Number of ordering-key slots a subtree consumes: two per non-attribute
/// node (entry and exit) plus one per attribute.
pub(crate) fn subtree_key_slots(doc: &Document, top: NodeId) -> u64 {
    let mut slots = 0u64;
    let mut stack = vec![top];
    while let Some(node) = stack.pop() {
        slots += 2 + doc.data(node).attrs().len() as u64;
        let mut c = doc.data(node).first_child;
        while let Some(ch) = c {
            stack.push(ch);
            c = doc.data(ch).next_sibling;
        }
    }
    slots
}

/// Assigns pre/post ordering keys and depths to `top`'s entire subtree with
/// an explicit-stack DFS (documents in the benchmark harness can be deep
/// chains, so recursion is avoided).
///
/// Keys start at `start_key` and advance by `stride` per slot: a
/// non-attribute node takes an entry slot (its `pre`) and an exit slot (its
/// `post`, assigned after its attributes and children so subtrees nest and
/// children sort before parents); an attribute takes a single slot directly
/// after its owner's entry (XPath 1.0: attributes precede children in
/// document order) with `post == pre` — a degenerate interval, since
/// attributes have no subtree.  Returns the first key after the subtree,
/// i.e. `start_key + stride * subtree_key_slots(..)`.
pub(crate) fn assign_subtree_keys(
    doc: &mut Document,
    top: NodeId,
    start_key: u32,
    stride: u32,
    top_depth: u32,
) -> u32 {
    debug_assert!(stride >= 1, "key stride must be positive");
    let mut key = start_key;
    // (node, depth, entering?)
    let mut stack: Vec<(NodeId, u32, bool)> = vec![(top, top_depth, true)];
    while let Some((node, depth, entering)) = stack.pop() {
        if entering {
            {
                let k = doc.keys_mut(node);
                k.pre = key;
                k.depth = depth;
            }
            key += stride;
            let attrs: Vec<NodeId> = doc.data(node).attrs().to_vec();
            for a in attrs {
                let k = doc.keys_mut(a);
                k.pre = key;
                k.post = key;
                k.depth = depth + 1;
                key += stride;
            }
            stack.push((node, depth, false));
            // Push children in reverse so the first child is processed first.
            let mut children = Vec::new();
            let mut c = doc.data(node).first_child;
            while let Some(ch) = c {
                children.push(ch);
                c = doc.data(ch).next_sibling;
            }
            for &ch in children.iter().rev() {
                stack.push((ch, depth + 1, true));
            }
        } else {
            doc.keys_mut(node).post = key;
            key += stride;
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_keys_follow_document_order() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.open_element("b");
        b.close_element();
        b.open_element("c");
        b.open_element("d");
        b.close_element();
        b.close_element();
        b.close_element();
        let doc = b.finish();
        // Builder arena order is document order; pre keys must be strictly
        // increasing along it and gapped by the build stride.
        let pres: Vec<u32> = doc.all_nodes().map(|n| doc.pre(n)).collect();
        assert!(pres.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(doc.pre(doc.root()), 0);
        assert!(pres.iter().all(|p| p % KEY_STRIDE == 0));
    }

    #[test]
    fn postorder_is_children_before_parents() {
        let mut b = DocumentBuilder::new();
        let a = b.open_element("a");
        let bb = b.open_element("b");
        b.close_element();
        let c = b.open_element("c");
        b.close_element();
        b.close_element();
        let doc = b.finish();
        assert!(doc.post(bb) < doc.post(a));
        assert!(doc.post(c) < doc.post(a));
        assert!(doc.post(bb) < doc.post(c));
        // The root's exit key is the largest key in the document.
        assert!(doc.all_nodes().all(|n| doc.post(n) <= doc.post(doc.root())));
        // Subtree intervals nest: every node lies inside the root's.
        assert!(doc
            .all_nodes()
            .skip(1)
            .all(|n| doc.pre(n) > doc.pre(doc.root()) && doc.post(n) < doc.post(doc.root())));
    }

    #[test]
    fn unclosed_elements_are_closed_by_finish() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.open_element("b");
        // no close_element calls
        let doc = b.finish();
        assert_eq!(doc.element_count(), 2);
    }

    #[test]
    fn leaf_element_helper() {
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        let x = b.leaf_element("x");
        let y = b.leaf_element("y");
        b.close_element();
        let doc = b.finish();
        assert_eq!(doc.next_sibling(x), Some(y));
        assert_eq!(doc.name(x), Some("x"));
    }

    #[test]
    #[should_panic(expected = "close_element")]
    fn closing_root_panics() {
        let mut b = DocumentBuilder::new();
        b.close_element();
    }

    #[test]
    #[should_panic(expected = "attribute")]
    fn attribute_on_root_panics() {
        let mut b = DocumentBuilder::new();
        b.attribute("k", "v");
    }

    #[test]
    fn attribute_document_order_between_element_and_children() {
        let mut b = DocumentBuilder::new();
        let e = b.open_element("e");
        let a = b.attribute("k", "v");
        let c = b.open_element("c");
        b.close_element();
        b.close_element();
        let doc = b.finish();
        assert!(doc.pre(e) < doc.pre(a));
        assert!(doc.pre(a) < doc.pre(c));
    }

    #[test]
    fn builder_len_tracks_nodes() {
        let mut b = DocumentBuilder::new();
        assert!(b.is_empty());
        b.open_element("a");
        b.text("t");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
