//! Programmatic construction of [`Document`]s.
//!
//! The builder appends nodes in preorder, which means arena order equals
//! document order; [`DocumentBuilder::finish`] then assigns pre/post numbers
//! and depths in a single traversal.

use crate::node::{Document, NodeData, NodeId, NodeKind};

/// Builds a [`Document`] by opening and closing elements like a SAX writer.
///
/// ```
/// use xpeval_dom::DocumentBuilder;
/// let mut b = DocumentBuilder::new();
/// b.open_element("a");
/// b.open_element("b");
/// b.close_element();
/// b.close_element();
/// let doc = b.finish();
/// assert_eq!(doc.element_count(), 2);
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    /// Stack of currently open elements; the bottom entry is the root.
    open: Vec<NodeId>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates a builder with only the conceptual root node open.
    pub fn new() -> Self {
        let doc = Document::empty();
        let root = doc.root();
        DocumentBuilder {
            doc,
            open: vec![root],
        }
    }

    fn current(&self) -> NodeId {
        *self.open.last().expect("builder root is never popped")
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.doc.nodes.len() as u32);
        let parent = self.current();
        let mut data = NodeData::new(kind);
        data.parent = Some(parent);
        data.prev_sibling = self.doc.data(parent).last_child;
        self.doc.nodes.push(data);
        if let Some(prev) = self.doc.data(id).prev_sibling {
            self.doc.data_mut(prev).next_sibling = Some(id);
        } else {
            self.doc.data_mut(parent).first_child = Some(id);
        }
        self.doc.data_mut(parent).last_child = Some(id);
        id
    }

    /// Opens a new element as a child of the currently open element.
    /// Returns the id of the new element.
    pub fn open_element(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push_node(NodeKind::Element { name: name.into() });
        self.open.push(id);
        id
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is currently open.
    pub fn close_element(&mut self) {
        assert!(
            self.open.len() > 1,
            "close_element called with no open element"
        );
        self.open.pop();
    }

    /// Appends an empty element (open followed by close). Returns its id.
    pub fn leaf_element(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.open_element(name);
        self.close_element();
        id
    }

    /// Appends a text node to the currently open element.
    pub fn text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Text { text: text.into() })
    }

    /// Adds an attribute to the currently open element.
    ///
    /// # Panics
    /// Panics if no element is open (attributes cannot be added to the root).
    pub fn attribute(&mut self, name: impl Into<String>, value: impl Into<String>) -> NodeId {
        assert!(self.open.len() > 1, "attribute called with no open element");
        let owner = self.current();
        let id = NodeId(self.doc.nodes.len() as u32);
        let mut data = NodeData::new(NodeKind::Attribute {
            name: name.into(),
            value: value.into(),
        });
        data.parent = Some(owner);
        self.doc.nodes.push(data);
        self.doc.data_mut(owner).attributes.push(id);
        id
    }

    /// Number of nodes created so far (including the root).
    pub fn len(&self) -> usize {
        self.doc.nodes.len()
    }

    /// True if no node besides the root has been created.
    pub fn is_empty(&self) -> bool {
        self.doc.nodes.len() <= 1
    }

    /// Finishes the document: closes any still-open elements and assigns
    /// document order (pre), postorder (post) and depth to every node.
    pub fn finish(mut self) -> Document {
        while self.open.len() > 1 {
            self.open.pop();
        }
        finalize(&mut self.doc);
        self.doc
    }
}

/// Assigns pre/post/depth numbers with an explicit-stack DFS (documents in
/// the benchmark harness can be deep chains, so recursion is avoided).
fn finalize(doc: &mut Document) {
    let mut pre = 0u32;
    let mut post = 0u32;
    // (node, depth, entering?)
    let mut stack: Vec<(NodeId, u32, bool)> = vec![(doc.root(), 0, true)];
    while let Some((node, depth, entering)) = stack.pop() {
        if entering {
            {
                let d = doc.data_mut(node);
                d.pre = pre;
                d.depth = depth;
            }
            pre += 1;
            // Attribute nodes get document-order positions directly after
            // their owner element (XPath 1.0: attributes precede children in
            // document order).
            let attrs = doc.data(node).attributes.clone();
            for a in attrs {
                let d = doc.data_mut(a);
                d.pre = pre;
                d.depth = depth + 1;
                d.post = u32::MAX; // patched below: attributes are leaves
                pre += 1;
            }
            stack.push((node, depth, false));
            // Push children in reverse so the first child is processed first.
            let mut children = Vec::new();
            let mut c = doc.data(node).first_child;
            while let Some(ch) = c {
                children.push(ch);
                c = doc.data(ch).next_sibling;
            }
            for &ch in children.iter().rev() {
                stack.push((ch, depth + 1, true));
            }
        } else {
            let attrs = doc.data(node).attributes.clone();
            for a in attrs {
                doc.data_mut(a).post = post;
                post += 1;
            }
            doc.data_mut(node).post = post;
            post += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_numbers_follow_document_order() {
        let mut b = DocumentBuilder::new();
        b.open_element("a"); // pre 1
        b.open_element("b"); // pre 2
        b.close_element();
        b.open_element("c"); // pre 3
        b.open_element("d"); // pre 4
        b.close_element();
        b.close_element();
        b.close_element();
        let doc = b.finish();
        let pres: Vec<u32> = doc.all_nodes().map(|n| doc.pre(n)).collect();
        assert_eq!(pres, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn postorder_is_children_before_parents() {
        let mut b = DocumentBuilder::new();
        let a = b.open_element("a");
        let bb = b.open_element("b");
        b.close_element();
        let c = b.open_element("c");
        b.close_element();
        b.close_element();
        let doc = b.finish();
        assert!(doc.post(bb) < doc.post(a));
        assert!(doc.post(c) < doc.post(a));
        assert!(doc.post(bb) < doc.post(c));
        assert_eq!(doc.post(doc.root()), (doc.len() - 1) as u32);
    }

    #[test]
    fn unclosed_elements_are_closed_by_finish() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.open_element("b");
        // no close_element calls
        let doc = b.finish();
        assert_eq!(doc.element_count(), 2);
    }

    #[test]
    fn leaf_element_helper() {
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        let x = b.leaf_element("x");
        let y = b.leaf_element("y");
        b.close_element();
        let doc = b.finish();
        assert_eq!(doc.next_sibling(x), Some(y));
        assert_eq!(doc.name(x), Some("x"));
    }

    #[test]
    #[should_panic(expected = "close_element")]
    fn closing_root_panics() {
        let mut b = DocumentBuilder::new();
        b.close_element();
    }

    #[test]
    #[should_panic(expected = "attribute")]
    fn attribute_on_root_panics() {
        let mut b = DocumentBuilder::new();
        b.attribute("k", "v");
    }

    #[test]
    fn attribute_document_order_between_element_and_children() {
        let mut b = DocumentBuilder::new();
        let e = b.open_element("e");
        let a = b.attribute("k", "v");
        let c = b.open_element("c");
        b.close_element();
        b.close_element();
        let doc = b.finish();
        assert!(doc.pre(e) < doc.pre(a));
        assert!(doc.pre(a) < doc.pre(c));
    }

    #[test]
    fn builder_len_tracks_nodes() {
        let mut b = DocumentBuilder::new();
        assert!(b.is_empty());
        b.open_element("a");
        b.text("t");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
