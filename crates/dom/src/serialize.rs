//! Serialization of documents back to XML text.

use crate::node::{Document, NodeId, NodeKind};
use std::fmt::Write;

/// Serializes the whole document to an XML string (no declaration, no
/// pretty-printing).  Round-trips with [`crate::parse_xml`] for documents
/// without insignificant whitespace.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    let mut child = doc.first_child(doc.root());
    while let Some(c) = child {
        serialize_node(doc, c, &mut out);
        child = doc.next_sibling(c);
    }
    out
}

/// Serializes the subtree rooted at `node`.
pub fn serialize_subtree(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    serialize_node(doc, node, &mut out);
    out
}

fn serialize_node(doc: &Document, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Root => {
            let mut child = doc.first_child(node);
            while let Some(c) = child {
                serialize_node(doc, c, out);
                child = doc.next_sibling(c);
            }
        }
        NodeKind::Text { text } => out.push_str(&escape_text(text)),
        NodeKind::Attribute { name, value } => {
            let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
        }
        NodeKind::Element { name } => {
            let _ = write!(out, "<{name}");
            for &a in doc.attributes(node) {
                serialize_node(doc, a, out);
            }
            if doc.first_child(node).is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                let mut child = doc.first_child(node);
                while let Some(c) = child {
                    serialize_node(doc, c, out);
                    child = doc.next_sibling(c);
                }
                let _ = write!(out, "</{name}>");
            }
        }
    }
}

fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_xml, DocumentBuilder};

    #[test]
    fn serializes_built_document() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.attribute("k", "v");
        b.open_element("b");
        b.text("hi");
        b.close_element();
        b.leaf_element("c");
        b.close_element();
        let doc = b.finish();
        assert_eq!(serialize(&doc), r#"<a k="v"><b>hi</b><c/></a>"#);
    }

    #[test]
    fn roundtrip_through_parser() {
        let src = r#"<a k="v"><b>hi</b><c x="1"/><d>more text</d></a>"#;
        let doc = parse_xml(src).unwrap();
        assert_eq!(serialize(&doc), src);
    }

    #[test]
    fn escapes_special_characters() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.attribute("k", "a\"b<c");
        b.text("x & y < z");
        b.close_element();
        let doc = b.finish();
        let s = serialize(&doc);
        assert!(s.contains("&quot;"));
        assert!(s.contains("&amp;"));
        assert!(s.contains("&lt;"));
        // And the round trip preserves values.
        let doc2 = parse_xml(&s).unwrap();
        let a = doc2.first_child(doc2.root()).unwrap();
        assert_eq!(doc2.attribute_value(a, "k"), Some("a\"b<c"));
        assert_eq!(doc2.string_value(a), "x & y < z");
    }

    #[test]
    fn serialize_subtree_only() {
        let doc = parse_xml("<a><b><c/></b><d/></a>").unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        let b = doc.first_child(a).unwrap();
        assert_eq!(serialize_subtree(&doc, b), "<b><c/></b>");
    }

    #[test]
    fn empty_document_serializes_to_empty_string() {
        let doc = DocumentBuilder::new().finish();
        assert_eq!(serialize(&doc), "");
    }
}
