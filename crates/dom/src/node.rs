//! Arena-based document tree.
//!
//! Nodes live in a flat `Vec` inside [`Document`]; [`NodeId`] is an index
//! into that vector.  Sibling and parent/child relationships are stored as
//! explicit links so that every axis of the XPath data model can be walked
//! without allocation.

use std::fmt;

/// Identifier of a node within a [`Document`].
///
/// `NodeId`s are only meaningful relative to the document that created them.
/// The root node of every document is id `0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Numeric index of this node inside the document arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `NodeId` from a raw index.
    ///
    /// Intended for code that stores node sets as index-based bitsets (the
    /// linear-time Core XPath evaluator does this); passing an index that is
    /// out of bounds for the document will cause panics on use.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        NodeId(ix as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node in the XPath data model.
///
/// The paper (and Core XPath) only needs element nodes and the conceptual
/// root; text and attribute nodes are included so that the full-XPath string
/// functions and the `attribute` axis have something to operate on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The conceptual root node of the document (parent of the document
    /// element).  Exactly one per document, always [`Document::root`].
    Root,
    /// An element node with a tag name.
    Element { name: String },
    /// A text node.
    Text { text: String },
    /// An attribute node.  Attribute nodes have their owner element as
    /// parent but are not children of it (they are reached only through the
    /// `attribute` axis), exactly as in the XPath 1.0 data model.
    Attribute { name: String, value: String },
}

impl NodeKind {
    /// Returns the element tag name, if this is an element.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            NodeKind::Element { name } => Some(name),
            _ => None,
        }
    }

    /// True if this node is an element.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// True if this node is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text { .. })
    }

    /// True if this node is an attribute node.
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute { .. })
    }

    /// True if this node is the conceptual root.
    pub fn is_root(&self) -> bool {
        matches!(self, NodeKind::Root)
    }
}

/// Per-node record stored in the arena.
#[derive(Clone, Debug)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    /// Attribute nodes owned by this element (empty for non-elements).
    pub(crate) attributes: Vec<NodeId>,
    /// Preorder (document order) number, assigned by [`Document::finalize`].
    pub(crate) pre: u32,
    /// Postorder number, assigned by [`Document::finalize`].
    pub(crate) post: u32,
    /// Depth (root = 0).
    pub(crate) depth: u32,
}

impl NodeData {
    pub(crate) fn new(kind: NodeKind) -> Self {
        NodeData {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            attributes: Vec::new(),
            pre: 0,
            post: 0,
            depth: 0,
        }
    }
}

/// An XML document: an arena of nodes rooted at the conceptual root node.
///
/// Documents are immutable once built (via [`crate::DocumentBuilder`] or
/// [`crate::parse_xml`]); all evaluators in the workspace share `&Document`
/// references freely, including across threads.
#[derive(Clone, Debug)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
}

impl Document {
    /// Creates an empty document containing only the conceptual root node.
    pub(crate) fn empty() -> Self {
        Document {
            nodes: vec![NodeData::new(NodeKind::Root)],
        }
    }

    /// The conceptual root node of the document.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes (root + elements + text + attributes).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the conceptual root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Iterator over every node id in arena order (which equals document
    /// order after the builder's finalization pass since the builder
    /// appends in preorder).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over every element node id in document order.
    pub fn all_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes().filter(move |&n| self.kind(n).is_element())
    }

    #[inline]
    pub(crate) fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    pub(crate) fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.data(id).kind
    }

    /// Element name of a node, if it is an element.
    #[inline]
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Element { name } => Some(name),
            NodeKind::Attribute { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Parent of a node (`None` only for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// First child (in document order) of a node.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).first_child
    }

    /// Last child (in document order) of a node.
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).last_child
    }

    /// Next sibling in document order.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).next_sibling
    }

    /// Previous sibling in document order.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).prev_sibling
    }

    /// Attribute nodes of an element (empty slice for non-elements).
    #[inline]
    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).attributes
    }

    /// Looks up the value of the attribute named `name` on element `id`.
    pub fn attribute_value(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find_map(|&a| match self.kind(a) {
                NodeKind::Attribute { name: n, value } if n == name => Some(value.as_str()),
                _ => None,
            })
    }

    /// Depth of the node (the root has depth 0, the document element 1).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.data(id).depth
    }

    /// Preorder (document order) number of the node.
    #[inline]
    pub fn pre(&self, id: NodeId) -> u32 {
        self.data(id).pre
    }

    /// Postorder number of the node.
    #[inline]
    pub fn post(&self, id: NodeId) -> u32 {
        self.data(id).post
    }

    /// The *string value* of a node per the XPath 1.0 data model:
    /// concatenation of all descendant text for root/element nodes, the text
    /// itself for text nodes and the attribute value for attribute nodes.
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Text { text } => text.clone(),
            NodeKind::Attribute { value, .. } => value.clone(),
            NodeKind::Root | NodeKind::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let mut child = self.first_child(id);
        while let Some(c) = child {
            match self.kind(c) {
                NodeKind::Text { text } => out.push_str(text),
                _ => self.collect_text(c, out),
            }
            child = self.next_sibling(c);
        }
    }

    /// Number of element children of `id` with tag `name` (used in tests
    /// and by the reductions crate to sanity check constructions).
    pub fn count_children_named(&self, id: NodeId, name: &str) -> usize {
        let mut n = 0;
        let mut child = self.first_child(id);
        while let Some(c) = child {
            if self.name(c) == Some(name) {
                n += 1;
            }
            child = self.next_sibling(c);
        }
        n
    }

    /// The number of element nodes in the document (|D| in the paper's
    /// complexity statements; attribute and text nodes are counted too when
    /// reporting document sizes in EXPERIMENTS.md, but the element count is
    /// the measure the reductions reason about).
    pub fn element_count(&self) -> usize {
        self.all_elements().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocumentBuilder;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.open_element("b");
        b.text("hello ");
        b.close_element();
        b.open_element("c");
        b.attribute("k", "v");
        b.text("world");
        b.close_element();
        b.close_element();
        b.finish()
    }

    #[test]
    fn root_is_zero_and_rootkind() {
        let doc = sample();
        assert_eq!(doc.root(), NodeId(0));
        assert!(doc.kind(doc.root()).is_root());
        assert!(doc.parent(doc.root()).is_none());
    }

    #[test]
    fn structure_links() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.name(a), Some("a"));
        let b = doc.first_child(a).unwrap();
        assert_eq!(doc.name(b), Some("b"));
        let c = doc.next_sibling(b).unwrap();
        assert_eq!(doc.name(c), Some("c"));
        assert_eq!(doc.prev_sibling(c), Some(b));
        assert_eq!(doc.last_child(a), Some(c));
        assert_eq!(doc.parent(b), Some(a));
        assert_eq!(doc.parent(c), Some(a));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.string_value(a), "hello world");
        assert_eq!(doc.string_value(doc.root()), "hello world");
    }

    #[test]
    fn attribute_lookup() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        let c = doc.last_child(a).unwrap();
        assert_eq!(doc.attribute_value(c, "k"), Some("v"));
        assert_eq!(doc.attribute_value(c, "missing"), None);
        assert_eq!(doc.attributes(c).len(), 1);
        let attr = doc.attributes(c)[0];
        assert!(doc.kind(attr).is_attribute());
        assert_eq!(doc.parent(attr), Some(c));
        // Attribute nodes are not children.
        let mut kids = vec![];
        let mut ch = doc.first_child(c);
        while let Some(k) = ch {
            kids.push(k);
            ch = doc.next_sibling(k);
        }
        assert!(!kids.contains(&attr));
    }

    #[test]
    fn depth_and_counts() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        let b = doc.first_child(a).unwrap();
        assert_eq!(doc.depth(doc.root()), 0);
        assert_eq!(doc.depth(a), 1);
        assert_eq!(doc.depth(b), 2);
        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.count_children_named(a, "b"), 1);
        assert_eq!(doc.count_children_named(a, "c"), 1);
        assert_eq!(doc.count_children_named(a, "zzz"), 0);
    }

    #[test]
    fn string_value_of_text_and_attribute_nodes() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        let b = doc.first_child(a).unwrap();
        let t = doc.first_child(b).unwrap();
        assert!(doc.kind(t).is_text());
        assert_eq!(doc.string_value(t), "hello ");
        let c = doc.last_child(a).unwrap();
        let attr = doc.attributes(c)[0];
        assert_eq!(doc.string_value(attr), "v");
    }

    #[test]
    fn empty_document() {
        let doc = DocumentBuilder::new().finish();
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 1);
        assert_eq!(doc.element_count(), 0);
        assert_eq!(doc.string_value(doc.root()), "");
    }

    #[test]
    fn node_id_display_and_index_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }
}
